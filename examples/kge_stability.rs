//! Knowledge-graph embedding stability (paper Section 6.1): train TransE
//! on a synthetic knowledge graph and on a 95% subsample of its training
//! triplets, then watch link-prediction ranks destabilize as the
//! embeddings are compressed.
//!
//! Run with: `cargo run --release --example kge_stability`

use embedstab::core::disagreement;
use embedstab::kge::{
    link_prediction_ranks, make_negatives, mean_rank, quantize_transe_pair, train_transe,
    unstable_rank_at_10, KgSpec, TranseConfig, TripletClassifier,
};
use embedstab::quant::Precision;

fn main() {
    let kg = KgSpec {
        n_entities: 150,
        n_types: 6,
        n_relations: 10,
        triplets_per_relation: 120,
        ..Default::default()
    }
    .generate();
    let kg95 = kg.subsample_train(0.95, 7);
    println!(
        "knowledge graph: {} entities, {} relations, {}/{} train triplets",
        kg.n_entities,
        kg.n_relations,
        kg.train.len(),
        kg95.train.len()
    );

    let cfg = TranseConfig::default();
    let dim = 16;
    let full = train_transe(&kg, dim, &cfg, 0);
    let sub = train_transe(&kg95, dim, &cfg, 0);
    let valid_neg = make_negatives(&kg, &kg.valid, 0);
    let test_neg = make_negatives(&kg, &kg.test, 1);

    println!("\nbits  bits/vec  unstable-rank@10%  triplet-cls disagree%  mean rank");
    for bits in [1u8, 2, 4, 8, 32] {
        let (qf, qs) = quantize_transe_pair(&full, &sub, Precision::new(bits));
        let rf = link_prediction_ranks(&qf, kg.n_entities, &kg.test);
        let rs = link_prediction_ranks(&qs, kg.n_entities, &kg.test);
        let unstable = unstable_rank_at_10(&rf, &rs);
        let clf = TripletClassifier::fit(&qs, &kg.valid, &valid_neg, kg.n_relations);
        let mut pf = clf.predict(&qf, &kg.test);
        pf.extend(clf.predict(&qf, &test_neg));
        let mut ps = clf.predict(&qs, &kg.test);
        ps.extend(clf.predict(&qs, &test_neg));
        println!(
            "{bits:>4}  {:>8}  {:>17.1}  {:>21.1}  {:>9.1}",
            dim * bits as usize,
            100.0 * unstable,
            100.0 * disagreement(&pf, &ps),
            mean_rank(&rf)
        );
    }
    println!("\nThe 5% training-triplet change destabilizes ranks far more at low");
    println!("precision — the paper's Figure 3, in miniature.");
}
