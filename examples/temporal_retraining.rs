//! Month-over-month retraining: the paper's motivating production setting
//! (Section 1: "15% of predictions on a sentiment analysis task can
//! disagree due to training the embeddings on an accumulated dataset with
//! just 1% more data").
//!
//! Each "month" a fresh slice of documents arrives from a slightly
//! drifted world and is streamed into a [`ContinuousRetrainer`]: the
//! service applies the co-occurrence delta (bitwise identical to
//! recounting the accumulated corpus), refreshes PPMI, warm-starts the
//! retrain from last month's basis, and submits one candidate per tenant
//! to the serving layer. The `TenantRegistry` runs one tenant per serving
//! configuration: the stability gate aligns the retrain to the live
//! snapshot, quantizes it with the shared clip, scores it, and promotes
//! it — exactly the align/quantize/compare protocol the paper's offline
//! grids run, now as a service lifecycle. Downstream churn is then
//! measured on the very pair the gate scored (`GateEvaluation::quantized`
//! vs the previous live snapshot) with the same `SentimentTask` the
//! experiment grids use.
//!
//! Run with: `cargo run --release --example temporal_retraining`

use embedstab::corpus::{CoocConfig, CorpusConfig, DriftConfig, LatentModel, LatentModelConfig};
use embedstab::downstream::tasks::sentiment::SentimentSpec;
use embedstab::downstream::{PairSpec, SentimentTask, Task};
use embedstab::pipeline::cache::scratch_dir;
use embedstab::quant::Precision;
use embedstab::serve::{Slo, TenantRegistry};
use embedstab::stream::{ContinuousRetrainer, RetrainerConfig};
use std::sync::Arc;

fn main() {
    let vocab = 300usize;
    let months = 5usize;
    let base_tokens = 40_000usize;
    let monthly_tokens = 20_000usize;
    let mut model = LatentModel::new(&LatentModelConfig {
        vocab_size: vocab,
        n_topics: 8,
        ..Default::default()
    });
    let dataset = Arc::new(
        SentimentSpec {
            n_train: 350,
            n_valid: 50,
            n_test: 250,
            ..SentimentSpec::sst2()
        }
        .generate(&model),
    );
    // The downstream task, shared by every month and both tenants.
    let task = SentimentTask::new(dataset, 25);
    let spec = PairSpec::new(0);

    // Two serving configurations under comparison: 16 bits/word vs
    // 128 bits/word (same dimension, 1-bit vs 8-bit quantization — the
    // paper's compression axis). Unbounded SLOs: every retrain promotes,
    // so the table shows the raw month-over-month churn at each budget.
    // Both tenants share one warm retrain per month; only the gate's
    // quantization differs.
    let root = scratch_dir("temporal_retraining_example");
    let _ = std::fs::remove_dir_all(&root);
    let registry = TenantRegistry::new(&root);
    let config = RetrainerConfig {
        cooc: CoocConfig {
            window: 6,
            distance_weighting: false,
        },
        ..RetrainerConfig::default()
    };
    let mut svc = ContinuousRetrainer::new(vocab, config, registry).expect("retrainer");
    let configs = [
        ("budget-16", 16usize, Precision::new(1)),
        ("budget-128", 16usize, Precision::new(8)),
    ];
    for &(name, dim, prec) in &configs {
        let budget = dim as u64 * prec.bits() as u64;
        svc.registry_mut()
            .register_config(name, Slo::unbounded(budget), dim, prec)
            .expect("register tenant");
    }

    println!("month  tokens   [dim=16,b=1] churn%   [dim=16,b=8] churn%");
    for month in 0..months {
        // The world drifts a little every month, and a fresh slice of
        // documents arrives from the drifted distribution.
        if month > 0 {
            model = model.drifted(&DriftConfig {
                drifted_fraction: 0.25,
                drift_sigma: 0.5,
                seed: 100 + month as u64,
            });
        }
        let n_tokens = if month == 0 {
            base_tokens
        } else {
            monthly_tokens
        };
        let increment = model.generate_corpus(&CorpusConfig {
            n_tokens,
            seed: month as u64,
            ..Default::default()
        });

        // Last month's live snapshots, captured before the step promotes
        // this month's candidates over them.
        let previous: Vec<_> = configs
            .iter()
            .map(|&(name, _, _)| {
                svc.registry()
                    .tenant(name)
                    .expect("registered")
                    .live()
                    .map(|s| s.embedding().clone())
            })
            .collect();

        // One call: apply the delta, refresh statistics, warm-retrain one
        // candidate per distinct dimension, and submit to every tenant.
        let report = svc.step(increment.docs().to_vec()).expect("step");

        let mut cells = Vec::new();
        for (&(name, _, _), prev) in configs.iter().zip(&previous) {
            let outcome = report
                .outcomes
                .iter()
                .find(|o| o.tenant == name)
                .expect("outcome per tenant");
            // The task trains both months' models on the gated pair and
            // counts flipped predictions.
            let churn = match (prev, outcome.outcome.evaluation()) {
                (Some(prev), Some(eval)) => {
                    let o = task.train_eval(prev, &eval.quantized, &spec);
                    Some(100.0 * o.disagreement)
                }
                _ => None, // bootstrap month: nothing to compare against
            };
            cells.push(churn);
        }
        let fmt = |c: &Option<f64>| {
            c.map(|v| format!("{v:>5.1}"))
                .unwrap_or_else(|| "  n/a".into())
        };
        println!(
            "{month:>5}  {:>6}   {:>18}   {:>19}",
            svc.corpus().n_tokens(),
            fmt(&cells[0]),
            fmt(&cells[1])
        );
    }
    for &(name, _, _) in &configs {
        let store = svc.registry().tenant(name).expect("registered").store();
        println!(
            "[serve] tenant '{name}': {} snapshots promoted, live {}",
            store.len(),
            store.live().expect("live").meta().version
        );
    }
    println!("\nMonth-over-month churn is consistently lower at the larger memory");
    println!("budget — the paper's stability-memory tradeoff, operationalized.");
}
