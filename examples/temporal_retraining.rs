//! Month-over-month retraining: the paper's motivating production setting
//! (Section 1: "15% of predictions on a sentiment analysis task can
//! disagree due to training the embeddings on an accumulated dataset with
//! just 1% more data").
//!
//! Each "month" the corpus accumulates more documents and drifts a little;
//! the embedding is retrained and the downstream model retrained on top.
//! The example tracks prediction churn against the previous month at two
//! memory budgets, showing that the bigger embedding churns less.
//!
//! Run with: `cargo run --release --example temporal_retraining`

use embedstab::core::disagreement;
use embedstab::corpus::{CorpusConfig, DriftConfig, LatentModel, LatentModelConfig};
use embedstab::downstream::models::{BowSentimentModel, TrainSpec};
use embedstab::downstream::tasks::sentiment::SentimentSpec;
use embedstab::embeddings::{train_embedding, Algo, CorpusStats, Embedding};
use embedstab::quant::{quantize_pair, Precision};
use std::sync::Arc;

fn main() {
    let vocab = 300usize;
    let months = 5usize;
    let base_tokens = 40_000usize;
    let mut model = LatentModel::new(&LatentModelConfig {
        vocab_size: vocab,
        n_topics: 8,
        ..Default::default()
    });
    let dataset = SentimentSpec {
        n_train: 350,
        n_valid: 50,
        n_test: 250,
        ..SentimentSpec::sst2()
    }
    .generate(&model);
    let spec = TrainSpec {
        lr: 0.01,
        epochs: 25,
        ..Default::default()
    };

    // Two serving configurations under comparison: 16 bits/word vs
    // 128 bits/word.
    let configs = [(4usize, Precision::new(4)), (16usize, Precision::new(8))];
    let mut previous: Vec<Option<(Embedding, Vec<bool>)>> = vec![None, None];

    println!("month  tokens   [dim=4,b=4] churn%   [dim=16,b=8] churn%");
    for month in 0..months {
        // The world drifts a little every month, and data accumulates 4%.
        if month > 0 {
            model = model.drifted(&DriftConfig {
                drifted_fraction: 0.04,
                drift_sigma: 0.5,
                seed: 100 + month as u64,
            });
        }
        let tokens = (base_tokens as f64 * 1.04f64.powi(month as i32)) as usize;
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: tokens,
            seed: month as u64,
            ..Default::default()
        });
        let stats = CorpusStats::compute(Arc::new(corpus), vocab, 6);

        let mut cells = Vec::new();
        for (slot, &(dim, prec)) in configs.iter().enumerate() {
            let emb = train_embedding(Algo::Cbow, &stats, &model.vocab, dim, 0);
            // Align to last month's embedding (as the paper aligns pairs),
            // sharing the quantization clip.
            let (emb_q, preds) = match &previous[slot] {
                Some((prev_emb, _)) => {
                    let aligned = emb.align_to(prev_emb);
                    let (_, q_new) = quantize_pair(prev_emb, &aligned, prec);
                    let m = BowSentimentModel::train(&q_new.embedding, &dataset.train, &spec);
                    let p = m.predict(&q_new.embedding, &dataset.test);
                    (aligned, p)
                }
                None => {
                    let (q, _) = quantize_pair(&emb, &emb, prec);
                    let m = BowSentimentModel::train(&q.embedding, &dataset.train, &spec);
                    let p = m.predict(&q.embedding, &dataset.test);
                    (emb, p)
                }
            };
            let churn = previous[slot]
                .as_ref()
                .map(|(_, prev_preds)| 100.0 * disagreement(prev_preds, &preds));
            cells.push(churn);
            previous[slot] = Some((emb_q, preds));
        }
        let fmt = |c: &Option<f64>| {
            c.map(|v| format!("{v:>5.1}"))
                .unwrap_or_else(|| "  n/a".into())
        };
        println!(
            "{month:>5}  {tokens:>6}   {:>18}   {:>19}",
            fmt(&cells[0]),
            fmt(&cells[1])
        );
    }
    println!("\nMonth-over-month churn is consistently lower at the larger memory");
    println!("budget — the paper's stability-memory tradeoff, operationalized.");
}
