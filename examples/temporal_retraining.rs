//! Month-over-month retraining: the paper's motivating production setting
//! (Section 1: "15% of predictions on a sentiment analysis task can
//! disagree due to training the embeddings on an accumulated dataset with
//! just 1% more data").
//!
//! Each "month" the corpus accumulates more documents and drifts a little;
//! the embedding is retrained and submitted to the serving layer. The
//! `TenantRegistry` runs one tenant per serving configuration: the
//! stability gate aligns the retrain to the live snapshot, quantizes it
//! with the shared clip, scores it, and promotes it — exactly the
//! align/quantize/compare protocol the paper's offline grids run, now as
//! a service lifecycle. Downstream churn is then measured on the very
//! pair the gate scored (`GateEvaluation::quantized` vs the previous live
//! snapshot) with the same `SentimentTask` the experiment grids use.
//!
//! Run with: `cargo run --release --example temporal_retraining`

use embedstab::corpus::{CorpusConfig, DriftConfig, LatentModel, LatentModelConfig};
use embedstab::downstream::tasks::sentiment::SentimentSpec;
use embedstab::downstream::{PairSpec, SentimentTask, Task};
use embedstab::embeddings::{train_embedding, Algo, CorpusStats};
use embedstab::pipeline::cache::scratch_dir;
use embedstab::quant::Precision;
use embedstab::serve::{Slo, TenantRegistry};
use std::sync::Arc;

fn main() {
    let vocab = 300usize;
    let months = 5usize;
    let base_tokens = 40_000usize;
    let mut model = LatentModel::new(&LatentModelConfig {
        vocab_size: vocab,
        n_topics: 8,
        ..Default::default()
    });
    let dataset = Arc::new(
        SentimentSpec {
            n_train: 350,
            n_valid: 50,
            n_test: 250,
            ..SentimentSpec::sst2()
        }
        .generate(&model),
    );
    // The downstream task, shared by every month and both tenants.
    let task = SentimentTask::new(dataset, 25);
    let spec = PairSpec::new(0);

    // Two serving configurations under comparison: 16 bits/word vs
    // 128 bits/word. Unbounded SLOs: every retrain promotes, so the table
    // shows the raw month-over-month churn at each budget.
    let root = scratch_dir("temporal_retraining_example");
    let _ = std::fs::remove_dir_all(&root);
    let mut registry = TenantRegistry::new(&root);
    let configs = [
        ("budget-16", 4usize, Precision::new(4)),
        ("budget-128", 16usize, Precision::new(8)),
    ];
    for &(name, dim, prec) in &configs {
        let budget = dim as u64 * prec.bits() as u64;
        registry
            .register_config(name, Slo::unbounded(budget), dim, prec)
            .expect("register tenant");
    }

    println!("month  tokens   [dim=4,b=4] churn%   [dim=16,b=8] churn%");
    for month in 0..months {
        // The world drifts a little every month, and data accumulates 4%.
        if month > 0 {
            model = model.drifted(&DriftConfig {
                drifted_fraction: 0.04,
                drift_sigma: 0.5,
                seed: 100 + month as u64,
            });
        }
        let tokens = (base_tokens as f64 * 1.04f64.powi(month as i32)) as usize;
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: tokens,
            seed: month as u64,
            ..Default::default()
        });
        let stats = CorpusStats::compute(Arc::new(corpus), vocab, 6);

        let mut cells = Vec::new();
        for &(name, dim, _) in &configs {
            let emb = train_embedding(Algo::Cbow, &stats, &model.vocab, dim, 0);
            // The gate aligns the retrain to last month's live snapshot,
            // shares its quantization clip, and scores it; the task then
            // trains both months' models on the gated pair and counts
            // flipped predictions.
            let previous = registry
                .tenant(name)
                .expect("registered")
                .live()
                .map(|s| s.embedding().clone());
            let outcome = registry.submit(name, &emb).expect("submit");
            let churn = match (&previous, outcome.evaluation()) {
                (Some(prev), Some(eval)) => {
                    let o = task.train_eval(prev, &eval.quantized, &spec);
                    Some(100.0 * o.disagreement)
                }
                _ => None, // bootstrap month: nothing to compare against
            };
            cells.push(churn);
        }
        let fmt = |c: &Option<f64>| {
            c.map(|v| format!("{v:>5.1}"))
                .unwrap_or_else(|| "  n/a".into())
        };
        println!(
            "{month:>5}  {tokens:>6}   {:>18}   {:>19}",
            fmt(&cells[0]),
            fmt(&cells[1])
        );
    }
    for &(name, _, _) in &configs {
        let store = registry.tenant(name).expect("registered").store();
        println!(
            "[serve] tenant '{name}': {} snapshots promoted, live {}",
            store.len(),
            store.live().expect("live").meta().version
        );
    }
    println!("\nMonth-over-month churn is consistently lower at the larger memory");
    println!("budget — the paper's stability-memory tradeoff, operationalized.");
}
