//! Month-over-month retraining: the paper's motivating production setting
//! (Section 1: "15% of predictions on a sentiment analysis task can
//! disagree due to training the embeddings on an accumulated dataset with
//! just 1% more data").
//!
//! Each "month" the corpus accumulates more documents and drifts a little;
//! the embedding is retrained and the downstream model retrained on top.
//! The paired train-and-compare step is exactly what the pipeline's `Task`
//! trait abstracts, so this example reuses `SentimentTask` outside the
//! grid: each month's churn is one `train_eval` call on the
//! (previous, current) embedding pair — the same code path the `Experiment`
//! grids run.
//!
//! Run with: `cargo run --release --example temporal_retraining`

use embedstab::corpus::{CorpusConfig, DriftConfig, LatentModel, LatentModelConfig};
use embedstab::downstream::tasks::sentiment::SentimentSpec;
use embedstab::downstream::{PairSpec, SentimentTask, Task};
use embedstab::embeddings::{train_embedding, Algo, CorpusStats, Embedding};
use embedstab::quant::{quantize_pair, Precision};
use std::sync::Arc;

fn main() {
    let vocab = 300usize;
    let months = 5usize;
    let base_tokens = 40_000usize;
    let mut model = LatentModel::new(&LatentModelConfig {
        vocab_size: vocab,
        n_topics: 8,
        ..Default::default()
    });
    let dataset = Arc::new(
        SentimentSpec {
            n_train: 350,
            n_valid: 50,
            n_test: 250,
            ..SentimentSpec::sst2()
        }
        .generate(&model),
    );
    // The downstream task, shared by every month and both configurations.
    let task = SentimentTask::new(dataset, 25);
    let spec = PairSpec::new(0);

    // Two serving configurations under comparison: 16 bits/word vs
    // 128 bits/word.
    let configs = [(4usize, Precision::new(4)), (16usize, Precision::new(8))];
    let mut previous: Vec<Option<Embedding>> = vec![None, None];

    println!("month  tokens   [dim=4,b=4] churn%   [dim=16,b=8] churn%");
    for month in 0..months {
        // The world drifts a little every month, and data accumulates 4%.
        if month > 0 {
            model = model.drifted(&DriftConfig {
                drifted_fraction: 0.04,
                drift_sigma: 0.5,
                seed: 100 + month as u64,
            });
        }
        let tokens = (base_tokens as f64 * 1.04f64.powi(month as i32)) as usize;
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: tokens,
            seed: month as u64,
            ..Default::default()
        });
        let stats = CorpusStats::compute(Arc::new(corpus), vocab, 6);

        let mut cells = Vec::new();
        for (slot, &(dim, prec)) in configs.iter().enumerate() {
            let emb = train_embedding(Algo::Cbow, &stats, &model.vocab, dim, 0);
            // Align to last month's embedding (as the paper aligns pairs),
            // share the quantization clip from the older side, and let the
            // task train both months' models and count flipped predictions.
            let (aligned, churn) = match &previous[slot] {
                Some(prev) => {
                    let aligned = emb.align_to(prev);
                    let (q_prev, q_new) = quantize_pair(prev, &aligned, prec);
                    let outcome = task.train_eval(&q_prev.embedding, &q_new.embedding, &spec);
                    (aligned, Some(100.0 * outcome.disagreement))
                }
                None => (emb, None),
            };
            cells.push(churn);
            previous[slot] = Some(aligned);
        }
        let fmt = |c: &Option<f64>| {
            c.map(|v| format!("{v:>5.1}"))
                .unwrap_or_else(|| "  n/a".into())
        };
        println!(
            "{month:>5}  {tokens:>6}   {:>18}   {:>19}",
            fmt(&cells[0]),
            fmt(&cells[1])
        );
    }
    println!("\nMonth-over-month churn is consistently lower at the larger memory");
    println!("budget — the paper's stability-memory tradeoff, operationalized.");
}
