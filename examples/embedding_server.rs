//! The embedding-server scenario from the paper's introduction: one
//! embedding is shared by several downstream tasks, so a poor
//! dimension-precision choice amplifies instability across every consumer.
//!
//! Given a fixed memory budget, this example sweeps the candidate
//! (dimension, precision) combinations with the `Experiment` builder —
//! `.filter(...)` restricts the grid to the budget, `.with_measures(true)`
//! ranks candidates by the eigenspace instability measure (no downstream
//! training needed for the ranking!) — then hands the measured candidates
//! to the serving layer: `TenantRegistry::register` picks the tenant's
//! configuration on the budget line through the same
//! `core::selection` ranking path, and every subsequent retrain goes
//! through the `StabilityGate` before it can replace the live snapshot.
//!
//! Run with: `cargo run --release --example embedding_server`

use std::collections::BTreeMap;

use embedstab::core::selection::{pick_lowest_measure, pick_oracle, ConfigPoint};
use embedstab::embeddings::{train_embedding, Algo};
use embedstab::pipeline::cache::scratch_dir;
use embedstab::pipeline::{Experiment, Scale, World};
use embedstab::quant::Precision;
use embedstab::serve::{GateOutcome, Slo, TenantRegistry};

fn main() {
    let mut params = Scale::Tiny.params();
    params.dims = vec![4, 8, 16, 32];
    params.precisions = vec![
        Precision::new(1),
        Precision::new(2),
        Precision::new(4),
        Precision::new(8),
        Precision::FULL,
    ];
    params.seeds = vec![0];
    let world = World::build(&params, 0);

    // Candidates under a 32 bits/word budget: (32,1), (16,2), (8,4), (4,8).
    let budget = 32u64;
    println!("memory budget: {budget} bits/word\n");

    // One experiment serves all three tasks; the filter keeps only the
    // configurations on the budget line.
    let rows = Experiment::new(&world)
        .tasks(["sst2", "subj", "mpqa"])
        .algos([Algo::Cbow])
        .with_measures(true)
        .filter(move |_, dim, prec, _| dim as u64 * prec.bits() as u64 == budget)
        .run();

    // Aggregate the three served tasks per candidate: the EIS comes from
    // the embeddings alone, the mean disagreement from the downstream
    // models the measure is meant to replace.
    let mut by_config: BTreeMap<(usize, u8), (f64, Vec<f64>)> = BTreeMap::new();
    for r in &rows {
        let eis = r.measures.expect("measures requested").eis;
        let e = by_config
            .entry((r.dim, r.bits))
            .or_insert((eis, Vec::new()));
        e.1.push(r.disagreement);
    }
    let mut points = Vec::new();
    println!("dim  bits  EIS      mean disagreement% over 3 served tasks");
    for (&(dim, bits), &(eis, ref dis)) in &by_config {
        let mean_di = dis.iter().sum::<f64>() / dis.len() as f64;
        println!("{dim:>3}  {bits:>4}  {eis:.4}  {:>5.1}", 100.0 * mean_di);
        points.push(ConfigPoint {
            dim,
            bits,
            measure: eis,
            instability: mean_di,
        });
    }

    let picked = pick_lowest_measure(&points).expect("candidates");
    let oracle = pick_oracle(&points).expect("candidates");
    println!(
        "\nEIS picks (dim={}, b={}), oracle is (dim={}, b={}): gap {:.2}% absolute",
        picked.dim,
        picked.bits,
        oracle.dim,
        oracle.bits,
        100.0 * (picked.instability - oracle.instability)
    );

    // The serving layer makes the pick operational: registering the tenant
    // runs the same budget-line ranking, then the stability gate guards
    // every retrain. The SLO ceiling starts from the offline sweep with 2x
    // headroom: gate scores anchor EIS on the live snapshot itself (see
    // the `gate` module docs), so they track sweep values but sit on a
    // slightly different scale.
    let root = scratch_dir("embedding_server_example");
    let _ = std::fs::remove_dir_all(&root);
    let mut registry = TenantRegistry::new(&root);
    let slo = Slo {
        max_predicted_instability: 2.0 * picked.measure,
        memory_budget_bits: budget,
    };
    let tenant = registry
        .register("shared", slo, &points)
        .expect("a candidate sits on the budget line");
    println!(
        "[serve] tenant 'shared' registered: budget line {} bits/word -> (dim={}, b={}), \
         SLO EIS <= {:.4}",
        budget,
        tenant.dim(),
        tenant.precision().bits(),
        slo.max_predicted_instability
    );

    // Wiki'17 bootstraps the live snapshot; the Wiki'18 retrain must pass
    // the gate. Nothing downstream is retrained to make this decision.
    let dim = tenant.dim();
    let e17 = train_embedding(Algo::Cbow, &world.stats17, world.vocab(), dim, 0);
    let e18 = train_embedding(Algo::Cbow, &world.stats18, world.vocab(), dim, 0);
    let boot = registry.submit("shared", &e17).expect("bootstrap");
    println!(
        "[serve] Wiki'17 bootstrap published as {}",
        boot.version().expect("bootstrap is live")
    );
    match registry.submit("shared", &e18).expect("gate") {
        GateOutcome::Promoted {
            version,
            evaluation,
        } => println!(
            "[serve] Wiki'18 retrain scored EIS {:.4} <= SLO -> promoted as {version}",
            evaluation.predicted_instability
        ),
        GateOutcome::Held { evaluation } => println!(
            "[serve] Wiki'18 retrain scored EIS {:.4} > SLO -> held, previous snapshot stays live",
            evaluation.predicted_instability
        ),
        GateOutcome::Bootstrapped { .. } => unreachable!("store already has a live snapshot"),
    }

    // The served lookup path is batched: one blocked-GEMM call answers a
    // whole batch of nearest-neighbor queries against the live snapshot.
    let live = registry
        .tenant("shared")
        .expect("registered")
        .live()
        .expect("live snapshot");
    let query_ids = [0u32, 1, 2, 3];
    let neighbors = live.nearest_batch(&live.lookup_batch(&query_ids), 2);
    let shown: Vec<String> = query_ids
        .iter()
        .zip(&neighbors)
        .map(|(q, nn)| format!("{q}->{}", nn[1].0))
        .collect();
    println!(
        "[serve] batched 2-NN for {} queries via one GEMM: {}\n",
        query_ids.len(),
        shown.join(" ")
    );

    println!("The server operator chose hyperparameters without training a single");
    println!("downstream model (paper Section 4.2).");
}
