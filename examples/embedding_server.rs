//! The embedding-server scenario from the paper's introduction: one
//! embedding is shared by several downstream tasks, so a poor
//! dimension-precision choice amplifies instability across every consumer.
//!
//! Given a fixed memory budget, this example enumerates the candidate
//! (dimension, precision) combinations, ranks them with the eigenspace
//! instability measure (no downstream training!), then verifies the pick
//! against the true downstream disagreement of three tasks.
//!
//! Run with: `cargo run --release --example embedding_server`

use embedstab::core::disagreement;
use embedstab::core::measures::{DistanceMeasure, EisMeasure};
use embedstab::core::selection::ConfigPoint;
use embedstab::core::stats;
use embedstab::downstream::models::{BowSentimentModel, TrainSpec};
use embedstab::embeddings::Algo;
use embedstab::pipeline::{EmbeddingGrid, Scale, World};
use embedstab::quant::Precision;

fn main() {
    let mut params = Scale::Tiny.params();
    params.dims = vec![4, 8, 16, 32];
    params.precisions = vec![
        Precision::new(1),
        Precision::new(2),
        Precision::new(4),
        Precision::new(8),
        Precision::FULL,
    ];
    let world = World::build(&params, 0);
    let grid = EmbeddingGrid::build(&world, &[Algo::Cbow], &params.dims, &[0]);

    // Candidates under a 32 bits/word budget: (32,1), (16,2), (8,4), (4,8).
    let budget = 32u64;
    let candidates: Vec<(usize, Precision)> = params
        .dims
        .iter()
        .flat_map(|&d| params.precisions.iter().map(move |&p| (d, p)))
        .filter(|(d, p)| *d as u64 * p.bits() as u64 == budget)
        .collect();
    println!("memory budget: {budget} bits/word; candidates: {candidates:?}\n");

    // Rank candidates by EIS, computed from the embeddings alone.
    let (e17, e18) = grid.pair(Algo::Cbow, *params.dims.last().expect("dims"), 0);
    let eis = EisMeasure::new(e17, e18, 3.0);
    let spec = TrainSpec {
        lr: 0.01,
        epochs: 25,
        ..Default::default()
    };

    let mut points = Vec::new();
    println!("dim  bits  EIS      mean disagreement% over 3 served tasks");
    for &(dim, prec) in &candidates {
        let (q17, q18) = grid.quantized_pair(Algo::Cbow, dim, 0, prec);
        let measure = eis.distance(&q17, &q18);
        // The server serves three tasks; instability hits all of them.
        let mut dis = Vec::new();
        for task in ["sst2", "subj", "mpqa"] {
            let ds = world.sentiment_dataset(task);
            let m17 = BowSentimentModel::train(&q17, &ds.train, &spec);
            let m18 = BowSentimentModel::train(&q18, &ds.train, &spec);
            dis.push(disagreement(
                &m17.predict(&q17, &ds.test),
                &m18.predict(&q18, &ds.test),
            ));
        }
        let mean_di = stats::mean(&dis);
        println!(
            "{dim:>3}  {:>4}  {measure:.4}  {:>5.1}",
            prec.bits(),
            100.0 * mean_di
        );
        points.push(ConfigPoint {
            dim,
            bits: prec.bits(),
            measure,
            instability: mean_di,
        });
    }

    let picked = points
        .iter()
        .min_by(|a, b| a.measure.partial_cmp(&b.measure).expect("finite"))
        .expect("candidates");
    let oracle = points
        .iter()
        .min_by(|a, b| a.instability.partial_cmp(&b.instability).expect("finite"))
        .expect("candidates");
    println!(
        "\nEIS picks (dim={}, b={}), oracle is (dim={}, b={}): gap {:.2}% absolute",
        picked.dim,
        picked.bits,
        oracle.dim,
        oracle.bits,
        100.0 * (picked.instability - oracle.instability)
    );
    println!("The server operator chose hyperparameters without training a single");
    println!("downstream model (paper Section 4.2).");
}
