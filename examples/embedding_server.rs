//! The embedding-server scenario from the paper's introduction: one
//! embedding is shared by several downstream tasks, so a poor
//! dimension-precision choice amplifies instability across every consumer.
//!
//! Given a fixed memory budget, this example sweeps the candidate
//! (dimension, precision) combinations with the `Experiment` builder —
//! `.filter(...)` restricts the grid to the budget, `.with_measures(true)`
//! ranks candidates by the eigenspace instability measure (no downstream
//! training needed for the ranking!) — then verifies the pick against the
//! true downstream disagreement of the three served tasks.
//!
//! Run with: `cargo run --release --example embedding_server`

use std::collections::BTreeMap;

use embedstab::core::selection::ConfigPoint;
use embedstab::embeddings::Algo;
use embedstab::pipeline::{Experiment, Scale, World};
use embedstab::quant::Precision;

fn main() {
    let mut params = Scale::Tiny.params();
    params.dims = vec![4, 8, 16, 32];
    params.precisions = vec![
        Precision::new(1),
        Precision::new(2),
        Precision::new(4),
        Precision::new(8),
        Precision::FULL,
    ];
    params.seeds = vec![0];
    let world = World::build(&params, 0);

    // Candidates under a 32 bits/word budget: (32,1), (16,2), (8,4), (4,8).
    let budget = 32u64;
    println!("memory budget: {budget} bits/word\n");

    // One experiment serves all three tasks; the filter keeps only the
    // configurations on the budget line.
    let rows = Experiment::new(&world)
        .tasks(["sst2", "subj", "mpqa"])
        .algos([Algo::Cbow])
        .with_measures(true)
        .filter(move |_, dim, prec, _| dim as u64 * prec.bits() as u64 == budget)
        .run();

    // Aggregate the three served tasks per candidate: the EIS comes from
    // the embeddings alone, the mean disagreement from the downstream
    // models the measure is meant to replace.
    let mut by_config: BTreeMap<(usize, u8), (f64, Vec<f64>)> = BTreeMap::new();
    for r in &rows {
        let eis = r.measures.expect("measures requested").eis;
        let e = by_config
            .entry((r.dim, r.bits))
            .or_insert((eis, Vec::new()));
        e.1.push(r.disagreement);
    }
    let mut points = Vec::new();
    println!("dim  bits  EIS      mean disagreement% over 3 served tasks");
    for (&(dim, bits), &(eis, ref dis)) in &by_config {
        let mean_di = dis.iter().sum::<f64>() / dis.len() as f64;
        println!("{dim:>3}  {bits:>4}  {eis:.4}  {:>5.1}", 100.0 * mean_di);
        points.push(ConfigPoint {
            dim,
            bits,
            measure: eis,
            instability: mean_di,
        });
    }

    let picked = points
        .iter()
        .min_by(|a, b| a.measure.partial_cmp(&b.measure).expect("finite"))
        .expect("candidates");
    let oracle = points
        .iter()
        .min_by(|a, b| a.instability.partial_cmp(&b.instability).expect("finite"))
        .expect("candidates");
    println!(
        "\nEIS picks (dim={}, b={}), oracle is (dim={}, b={}): gap {:.2}% absolute",
        picked.dim,
        picked.bits,
        oracle.dim,
        oracle.bits,
        100.0 * (picked.instability - oracle.instability)
    );
    println!("The server operator chose hyperparameters without training a single");
    println!("downstream model (paper Section 4.2).");
}
