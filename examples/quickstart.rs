//! Quickstart: the paper's pipeline end to end on a tiny world.
//!
//! 1. Generate a "Wiki'17"/"Wiki'18" corpus pair with latent drift.
//! 2. Train CBOW embeddings on both, align, and compress them.
//! 3. Train paired sentiment models and measure prediction disagreement.
//! 4. Compare against the eigenspace instability measure — the paper's
//!    estimator of that disagreement that needs no downstream training.
//!
//! Run with: `cargo run --release --example quickstart`

use embedstab::core::disagreement;
use embedstab::core::measures::{DistanceMeasure, EisMeasure};
use embedstab::corpus::LatentModelConfig;
use embedstab::corpus::{CorpusConfig, DriftConfig, TemporalPair, TemporalPairConfig};
use embedstab::downstream::models::{BowSentimentModel, TrainSpec};
use embedstab::downstream::tasks::sentiment::SentimentSpec;
use embedstab::embeddings::{train_embedding, Algo, CorpusStats};
use embedstab::quant::{quantize_pair, Precision};
use std::sync::Arc;

fn main() {
    // 1. Two corpora a "year" apart: 10% of words drift in latent space,
    //    and the newer corpus has 2% more data.
    let pair = TemporalPair::build(&TemporalPairConfig {
        model: LatentModelConfig {
            vocab_size: 400,
            n_topics: 10,
            ..Default::default()
        },
        drift: DriftConfig {
            drifted_fraction: 0.1,
            ..Default::default()
        },
        corpus: CorpusConfig {
            n_tokens: 60_000,
            ..Default::default()
        },
        extra_token_frac: 0.02,
    });
    println!(
        "corpora: {} / {} tokens over {} words",
        pair.corpus17.n_tokens(),
        pair.corpus18.n_tokens(),
        pair.model17.vocab_size()
    );

    // 2. Train embeddings on each corpus, align '18 to '17, quantize.
    let stats17 = CorpusStats::compute(Arc::new(pair.corpus17.clone()), 400, 6);
    let stats18 = CorpusStats::compute(Arc::new(pair.corpus18.clone()), 400, 6);
    let dim = 16;
    let x17 = train_embedding(Algo::Cbow, &stats17, &pair.model17.vocab, dim, 0);
    let x18 = train_embedding(Algo::Cbow, &stats18, &pair.model17.vocab, dim, 0).align_to(&x17);

    // 3. For each precision: compress the pair, train paired downstream
    //    models with identical seeds, and measure disagreement.
    let dataset = SentimentSpec {
        n_train: 400,
        n_valid: 50,
        n_test: 300,
        ..SentimentSpec::sst2()
    }
    .generate(&pair.model17);
    let spec = TrainSpec {
        lr: 0.01,
        epochs: 30,
        ..Default::default()
    };
    // EIS references: the full-precision pair itself (the paper uses the
    // highest-dimensional full-precision embeddings).
    let eis = EisMeasure::new(&x17, &x18, 3.0);

    println!("\nbits  memory(bits/word)  disagreement%  EIS");
    for bits in [1u8, 2, 4, 8, 32] {
        let (q17, q18) = quantize_pair(&x17, &x18, Precision::new(bits));
        let m17 = BowSentimentModel::train(&q17.embedding, &dataset.train, &spec);
        let m18 = BowSentimentModel::train(&q18.embedding, &dataset.train, &spec);
        let di = disagreement(
            &m17.predict(&q17.embedding, &dataset.test),
            &m18.predict(&q18.embedding, &dataset.test),
        );
        let measure = eis.distance(&q17.embedding, &q18.embedding);
        println!(
            "{bits:>4}  {:>17}  {:>12.1}  {measure:.4}",
            dim * bits as usize,
            100.0 * di
        );
    }
    println!("\nBoth columns fall as precision grows: more memory, more stability,");
    println!("and the EIS tracks the downstream disagreement without ever training");
    println!("a downstream model.");
}
