//! Side-by-side comparison of the five embedding distance measures on
//! embedding pairs of increasing perturbation, plus a Proposition 1 check.
//!
//! Run with: `cargo run --release --example measure_comparison`

use embedstab::core::measures::{MeasureKind, MeasureSuite};
use embedstab::core::theory::{eis_dense, monte_carlo_disagreement, SigmaFactor};
use embedstab::embeddings::Embedding;
use embedstab::linalg::Mat;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let n = 300;
    let d = 16;
    let base = Mat::random_normal(n, d, &mut rng);
    let noise = Mat::random_normal(n, d, &mut rng);
    let x = Embedding::new(base.clone());
    let suite = MeasureSuite::new(&x, &x, 3.0, 0);

    println!("perturbation eps -> all five measures (higher = predicted less stable)\n");
    println!(
        "{:>6}  {:>8} {:>8} {:>8} {:>9} {:>9}",
        "eps", "EIS", "1-kNN", "SemDisp", "PIP", "1-ovl"
    );
    for eps in [0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0] {
        let mut y = base.clone();
        y.axpy(eps, &noise);
        let vals = suite.compute_all(&x, &Embedding::new(y));
        println!(
            "{eps:>6.2}  {:>8.4} {:>8.4} {:>8.4} {:>9.2} {:>9.4}",
            vals.get(MeasureKind::Eis),
            vals.get(MeasureKind::Knn),
            vals.get(MeasureKind::SemanticDisplacement),
            vals.get(MeasureKind::PipLoss),
            vals.get(MeasureKind::EigenspaceOverlap),
        );
    }

    // Proposition 1: the EIS is not just another heuristic — it *equals*
    // the expected disagreement of the paired OLS models.
    println!("\nProposition 1 spot check (eps = 0.5):");
    let mut y = base.clone();
    y.axpy(0.5, &noise);
    let sigma = SigmaFactor::from_references(&base, &y, 3.0);
    let exact = eis_dense(&base, &y, &sigma.dense());
    let mc = monte_carlo_disagreement(&base, &y, &sigma, 2000, 1);
    println!("  EIS (exact trace formula):     {exact:.4}");
    println!("  Monte-Carlo OLS disagreement:  {mc:.4}");
    println!("\nEvery measure grows with the perturbation; only the EIS carries the");
    println!("guarantee that it equals expected downstream (linear) disagreement.");
}
