//! Vendored minimal `serde` derive macros.
//!
//! Parses the input token stream by hand (no `syn`/`quote` available in
//! this offline environment) and supports exactly the shapes this
//! workspace derives on:
//!
//! - structs with named fields -> JSON objects,
//! - single-field tuple structs (newtypes) -> the inner value, and
//! - enums whose variants are all unit variants -> JSON strings.
//!
//! Generics, multi-field tuple structs, and data-carrying enum variants
//! are rejected with a compile error rather than silently mis-handled.
//! Note that newtype derives construct the struct directly, bypassing any
//! validating constructor — hand-write the impls for types with invariants
//! (see `Precision` in `embedstab_quant`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct name plus ordered named fields.
    Struct(String, Vec<String>),
    /// Single-field tuple struct name (serialized as the inner value).
    Newtype(String),
    /// Enum name plus ordered unit variant names.
    Enum(String, Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Extracts top-level named field idents (struct) from a brace group body:
/// the ident immediately preceding each top-level `:`.
fn named_fields(body: &TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut prev_ident: Option<String> = None;
    let mut depth_angle = 0i32;
    let mut in_path_sep = false; // just saw the first ':' of a `::`
    for tt in body.clone() {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth_angle += 1,
                '>' => depth_angle -= 1,
                ':' => {
                    if in_path_sep {
                        // second ':' of `::`
                        in_path_sep = false;
                    } else if p.spacing() == proc_macro::Spacing::Joint {
                        // first ':' of `::` — path separator, not a field
                        in_path_sep = true;
                        prev_ident = None;
                    } else if depth_angle == 0 {
                        if let Some(name) = prev_ident.take() {
                            fields.push(name);
                        }
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s != "pub" {
                    prev_ident = Some(s);
                } else {
                    prev_ident = None;
                }
            }
            _ => prev_ident = None,
        }
    }
    if fields.is_empty() {
        return Err("derive target has no named fields".into());
    }
    Ok(fields)
}

/// Extracts unit variant names from an enum body, rejecting data variants.
fn unit_variants(body: &TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut after_hash = false; // the bracket group of a `#[...]` attribute
    let mut after_ident = false;
    for tt in body.clone() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                after_hash = true;
                after_ident = false;
            }
            TokenTree::Group(g) => {
                if after_hash && g.delimiter() == Delimiter::Bracket {
                    after_hash = false; // skip attribute / doc comment
                } else if after_ident {
                    return Err("only unit enum variants are supported".into());
                }
                after_ident = false;
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                after_ident = true;
                after_hash = false;
            }
            _ => {
                after_hash = false;
                after_ident = false;
            }
        }
    }
    if variants.is_empty() {
        return Err("enum has no variants".into());
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (#[...]) and visibility/doc tokens until struct/enum.
    let mut kind: Option<String> = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kind = Some(s);
                break;
            }
        }
    }
    let kind = kind.ok_or("expected struct or enum")?;
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    // Reject generics: the workspace derives only on concrete types.
    let (delim, body) = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break (Delimiter::Brace, g.stream());
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
            {
                break (Delimiter::Parenthesis, g.stream());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("generic derive targets are not supported".into());
            }
            Some(_) => continue,
            None => return Err("expected struct or enum body".into()),
        }
    };
    if kind == "struct" {
        if delim == Delimiter::Parenthesis {
            if tuple_field_count(&body) != 1 {
                return Err("only single-field tuple structs (newtypes) are supported".into());
            }
            return Ok(Shape::Newtype(name));
        }
        Ok(Shape::Struct(name, named_fields(&body)?))
    } else {
        Ok(Shape::Enum(name, unit_variants(&body)?))
    }
}

/// Counts the fields of a tuple-struct body: one more than the number of
/// top-level commas (ignoring a trailing comma), zero for an empty body.
fn tuple_field_count(body: &TokenStream) -> usize {
    let mut fields = 0usize;
    let mut depth_angle = 0i32;
    let mut pending = false; // tokens seen since the last top-level comma
    for tt in body.clone() {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth_angle += 1,
                '>' => depth_angle -= 1,
                ',' if depth_angle == 0 => {
                    if pending {
                        fields += 1;
                    }
                    pending = false;
                    continue;
                }
                _ => {}
            },
            _ => {}
        }
        pending = true;
    }
    if pending {
        fields += 1;
    }
    fields
}

/// Derives `serde::Serialize` for named-field structs and unit enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let out = match shape {
        Shape::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\
                     fn to_value(&self) -> serde::Value {{\
                         let mut fields: Vec<(String, serde::Value)> = Vec::new();\
                         {pushes}\
                         serde::Value::Object(fields)\
                     }}\
                 }}"
            )
        }
        Shape::Newtype(name) => format!(
            "impl serde::Serialize for {name} {{\
                 fn to_value(&self) -> serde::Value {{\
                     serde::Serialize::to_value(&self.0)\
                 }}\
             }}"
        ),
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\
                     fn to_value(&self) -> serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}

/// Derives `serde::Deserialize` for named-field structs and unit enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let out = match shape {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(\
                             v.get({f:?}).unwrap_or(&serde::Value::Null)\
                         )?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\
                         if !matches!(v, serde::Value::Object(_)) {{\
                             return Err(serde::Error::msg(concat!(\"expected object for \", stringify!({name}))));\
                         }}\
                         Ok({name} {{ {inits} }})\
                     }}\
                 }}"
            )
        }
        Shape::Newtype(name) => format!(
            "impl serde::Deserialize for {name} {{\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\
                     Ok({name}(serde::Deserialize::from_value(v)?))\
                 }}\
             }}"
        ),
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\
                         match v {{\
                             serde::Value::Str(s) => match s.as_str() {{\
                                 {arms}\
                                 other => Err(serde::Error::msg(format!(\"unknown variant {{other}}\"))),\
                             }},\
                             _ => Err(serde::Error::msg(concat!(\"expected string for \", stringify!({name})))),\
                         }}\
                     }}\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}
