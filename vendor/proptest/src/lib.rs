//! Vendored minimal stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: range and
//! tuple strategies, `prop_map` / `prop_flat_map`, `collection::vec`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (deterministic across runs), and failing inputs are
//! reported without shrinking.

use rand::rngs::StdRng;
use rand::RngExt;

/// Generates values of an output type from a random source.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A size specification: exact, or uniform within a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case outcomes and configuration.

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another input.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure outcome.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection outcome.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; only the case count is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config requiring `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs one proptest-defined test body over generated cases.
///
/// # Panics
///
/// Panics when a case fails or when too many cases are rejected.
pub fn run_cases(
    name: &str,
    config: &test_runner::ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(50).max(1000);
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest {name}: too many rejected cases ({attempts} attempts for {passed} passes)"
        );
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => continue,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest {name} failed on case {passed}: {msg}")
            }
        }
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (assertion: {})",
                format!($($fmt)+),
                stringify!($cond)
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Rejects the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

pub mod prelude {
    //! The usual glob import for proptest users.

    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (2usize..6)
            .prop_flat_map(|n| collection::vec(-1.0f64..1.0, n * 2).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn flat_map_couples_sizes((n, v) in pair_strategy()) {
            prop_assert_eq!(v.len(), n * 2);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
