//! Vendored minimal stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: non-poisoning
//! `lock()` that returns the guard directly (a panicked holder just
//! releases the lock).

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
