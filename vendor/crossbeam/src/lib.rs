//! Vendored minimal stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope`.
//!
//! One behavioral difference from real crossbeam: a panicking worker
//! propagates the panic out of [`scope`] directly (std semantics) instead
//! of surfacing it as `Err`, so callers' `.expect(...)` on the result
//! still aborts the test/binary with a clear message, just via the
//! original panic.

use std::any::Any;

/// A scope handle; workers spawned through it may borrow from the
/// environment of the [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker thread. The closure receives the scope handle,
    /// mirroring crossbeam's signature (commonly ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-environment threads can be
/// spawned; all workers are joined before this returns.
///
/// # Errors
///
/// Never returns `Err` in this vendored version (worker panics propagate
/// as panics); the `Result` shape is kept for crossbeam compatibility.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut partial = vec![0u64; 2];
        super::scope(|scope| {
            let (a, b) = partial.split_at_mut(1);
            scope.spawn(|_| a[0] = data[..2].iter().sum());
            scope.spawn(|_| b[0] = data[2..].iter().sum());
        })
        .unwrap();
        assert_eq!(partial[0] + partial[1], 10);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let flag = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    flag.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(flag.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
