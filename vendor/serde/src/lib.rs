//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the tiny serialization surface the workspace uses: value-tree based
//! [`Serialize`] / [`Deserialize`] traits, derive macros for plain structs
//! and unit-variant enums (re-exported from `serde_derive`), and primitive
//! implementations. `serde_json` renders [`Value`] trees to JSON text and
//! parses them back.

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON-like value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (preserves u64 values above `i64::MAX`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key-value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as an `i128` if it is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match *self {
            Value::I64(x) => Some(x as i128),
            Value::U64(x) => Some(x as i128),
            Value::F64(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(x as i128),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Builds an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

macro_rules! serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_int().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(x).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
serde_signed!(i8, i16, i32, i64, isize);

macro_rules! serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_int().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(x).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|x| x as $t).ok_or_else(|| Error::msg("expected number"))
            }
        }
    )*};
}
serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
