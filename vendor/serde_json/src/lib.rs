//! Vendored minimal stand-in for `serde_json`: renders the vendored
//! `serde::Value` tree to JSON text and parses JSON text back.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Returns an error if a float is non-finite (JSON has no NaN/Inf).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error if a float is non-finite (JSON has no NaN/Inf).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(
    v: &Value,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) -> Result<(), Error> {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::msg("cannot serialize non-finite float"));
            }
            // Shortest round-trip formatting; force a decimal point so the
            // value re-parses as a float.
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, indent, level + 1, out)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, level + 1, out)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg("expected ',' or '}' in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let mut code = self.parse_hex4()?;
                            // UTF-16 surrogate pair: a high surrogate must
                            // be followed by `\uDC00..\uDFFF`.
                            if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(Error::msg("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() {
            return Err(Error::msg("expected a JSON value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("emb \"q\"".to_string())),
            // I64, not U64: small integers re-parse as I64, so only that
            // spelling round-trips exactly.
            ("dim".to_string(), Value::I64(25)),
            ("di".to_string(), Value::F64(0.125)),
            ("ok".to_string(), Value::Bool(true)),
            ("opt".to_string(), Value::Null),
            (
                "xs".to_string(),
                Value::Array(vec![Value::I64(-3), Value::F64(2.5)]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let compact = to_string(&v).unwrap();
        let back2: Value = from_str(&compact).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_keep_point() {
        let s = to_string(&Value::F64(3.0)).unwrap();
        assert_eq!(s, "3.0");
        assert!(to_string(&Value::F64(f64::NAN)).is_err());
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let s: String = from_str("\"\\ud83d\\ude00 ok\"").unwrap();
        assert_eq!(s, "\u{1F600} ok");
        let raw: String = from_str("\"😀\"").unwrap();
        assert_eq!(raw, "😀");
        assert!(
            from_str::<String>(r#""\ud83d""#).is_err(),
            "unpaired high surrogate"
        );
        assert!(
            from_str::<String>(r#""\ud83dA""#).is_err(),
            "bad low surrogate"
        );
    }

    #[test]
    fn typed_roundtrip() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![-0.25]];
        let text = to_string(&rows).unwrap();
        let back: Vec<Vec<f64>> = from_str(&text).unwrap();
        assert_eq!(back, rows);
    }
}
