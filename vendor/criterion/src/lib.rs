//! Vendored minimal stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros and a
//! wall-clock benchmark runner good enough for relative comparisons in an
//! offline environment: per benchmark it warms up briefly, then reports
//! the median and spread of `sample_size` timed batches.

use std::time::{Duration, Instant};

/// Re-export so generated code can use it; prefer `std::hint::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark: warm-up, batch-size calibration, then
    /// `sample_size` timed batches; prints median and spread.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up and calibration: how many iterations fit in ~1 ms?
        let mut bench = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up {
            bench.elapsed = Duration::ZERO;
            f(&mut bench);
            per_iter = bench.elapsed.max(Duration::from_nanos(1));
        }
        let budget = self.measurement / self.sample_size as u32;
        let iters_per_sample =
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bench.iters = iters_per_sample;
            bench.elapsed = Duration::ZERO;
            f(&mut bench);
            samples.push(bench.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
        write_estimates(id, lo, median, hi);
        self
    }
}

/// Persists per-benchmark estimates to `target/criterion/<id>/estimates.json`
/// (mirroring real criterion's layout closely enough for CI artifact
/// upload and cross-run comparison). Point estimates are in nanoseconds.
/// Failures are ignored: estimates are a best-effort side channel.
fn write_estimates(id: &str, lo: f64, median: f64, hi: f64) {
    let safe_id: String = id
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let dir = criterion_dir().join(safe_id);
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let json = format!(
        concat!(
            "{{\"median\":{{\"point_estimate\":{:.1},",
            "\"confidence_interval\":{{\"lower_bound\":{:.1},\"upper_bound\":{:.1}}}}}}}\n"
        ),
        median * 1e9,
        lo * 1e9,
        hi * 1e9
    );
    let _ = std::fs::write(dir.join("estimates.json"), json);
}

/// The criterion output root: `$CARGO_TARGET_DIR/criterion` when set,
/// otherwise the nearest ancestor `target/` directory (benches run with
/// the package directory as cwd, not the workspace root).
fn criterion_dir() -> std::path::PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            let mut d = std::env::current_dir().unwrap_or_default();
            loop {
                let t = d.join("target");
                if t.is_dir() {
                    return t;
                }
                if !d.pop() {
                    return std::path::PathBuf::from("target");
                }
            }
        });
    target.join("criterion")
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Times closures for one sample batch.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the batch's iteration count, accumulating wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
