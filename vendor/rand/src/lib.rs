//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors the small slice of the `rand` API that the
//! reproduction actually uses: a seedable, high-quality deterministic
//! generator ([`rngs::StdRng`], xoshiro256++ seeded via SplitMix64) plus
//! the [`Rng`] / [`RngExt`] / [`SeedableRng`] traits with `random()` and
//! `random_range()`.
//!
//! Determinism contract: for a fixed seed, the stream of values is stable
//! across runs and platforms — the paper's instability experiments depend
//! on seed-paired runs seeing identical randomness.

/// A source of random bits.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly "at standard" by [`RngExt::random`].
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution for the type
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift mapping of a uniform u64 onto `[0, span)`.
///
/// Bias is at most `span / 2^64` per value — negligible for every span in
/// this workspace (all are far below 2^32).
#[inline]
fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        ((rng.next_u64() as u128 * span) >> 64) as u128
    } else {
        // Spans above 2^64 only arise from full-width i128/u128 ranges,
        // which this workspace never uses; fall back to rejection-free
        // composition of two words.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        ((hi << 64) | lo) % span
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = rng.next_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        let n = 64_000;
        for _ in 0..n {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            let expected = n / 8;
            assert!(
                (c as i64 - expected as i64).abs() < (expected / 10) as i64,
                "count {c} vs expected {expected}"
            );
        }
    }
}
