//! # embedstab
//!
//! A full-system Rust reproduction of *Understanding the Downstream
//! Instability of Word Embeddings* (Leszczynski et al., MLSys 2020).
//!
//! This facade crate re-exports every subsystem in the workspace so that
//! examples, integration tests, and downstream users can depend on a single
//! crate:
//!
//! - [`linalg`] — dense matrices, GEMM, QR, Jacobi SVD, Procrustes.
//! - [`corpus`] — synthetic latent-topic corpora with temporal drift,
//!   co-occurrence counting, PPMI.
//! - [`embeddings`] — CBOW, GloVe, matrix completion, and fastText trainers.
//! - [`quant`] — uniform quantization with MSE-optimal clipping.
//! - [`core`] — the paper's contribution: the eigenspace instability measure,
//!   baseline distance measures, selection algorithms, and statistics.
//! - [`downstream`] — synthetic sentiment/NER tasks behind the pluggable
//!   [`Task`](downstream::Task) trait, and from-scratch
//!   logistic-regression, CNN, and BiLSTM(+CRF) models.
//! - [`kge`] — TransE knowledge-graph embeddings and their evaluation.
//! - [`ctx`] — a mini-BERT transformer encoder for contextual embeddings.
//! - [`serve`] — the serving layer: versioned quantized embedding
//!   snapshots ([`serve::SnapshotStore`]), stability-gated promotion
//!   against per-tenant SLOs ([`serve::StabilityGate`],
//!   [`serve::TenantRegistry`]), and batched GEMM-backed query paths.
//! - [`fleet`] — machine-spanning shard fleets: a TCP coordinator/worker
//!   pair with content-addressed cache shipping
//!   ([`pipeline::CacheStore`]), lease-based work-queue retry
//!   ([`fleet::WorkQueue`]), and bitwise-reproducible fan-in.
//! - [`stream`] — incremental worlds: streaming co-occurrence deltas
//!   ([`stream::CoocDelta`]) that keep the table bitwise identical to a
//!   one-shot count, incremental PPMI refresh, warm-started retrains,
//!   and a continuous-retraining service
//!   ([`stream::ContinuousRetrainer`]) that submits gated candidates to
//!   the serving layer.
//! - [`pipeline`] — the end-to-end experiment harness used by the
//!   table/figure reproduction binaries: the
//!   [`Experiment`](pipeline::Experiment) builder sweeps tasks over the
//!   `algo x dim x precision x seed` grid with deterministic process
//!   sharding, a versioned on-disk cache of trained embedding pairs, and
//!   streaming row sinks.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end tour: generate a drifted
//! corpus pair, train embeddings, compress them, measure downstream
//! prediction disagreement, and compare it against the eigenspace
//! instability measure.

pub use embedstab_core as core;
pub use embedstab_corpus as corpus;
pub use embedstab_ctx as ctx;
pub use embedstab_downstream as downstream;
pub use embedstab_embeddings as embeddings;
pub use embedstab_fleet as fleet;
pub use embedstab_kge as kge;
pub use embedstab_linalg as linalg;
pub use embedstab_pipeline as pipeline;
pub use embedstab_quant as quant;
pub use embedstab_serve as serve;
pub use embedstab_stream as stream;
