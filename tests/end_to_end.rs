//! End-to-end integration tests: the paper's headline shapes must hold on
//! a tiny world, across crates.

use embedstab::core::measures::MeasureKind;
use embedstab::core::selection::{pairwise_selection, ConfigPoint};
use embedstab::core::stats;
use embedstab::embeddings::Algo;
use embedstab::pipeline::{EmbeddingGrid, Experiment, Row, Scale, World};
use embedstab::quant::Precision;

fn tiny_world() -> (World, EmbeddingGrid) {
    let params = Scale::Tiny.params();
    let world = World::build(&params, 0);
    let grid = EmbeddingGrid::build(&world, &[Algo::Cbow, Algo::Mc], &params.dims, &params.seeds);
    (world, grid)
}

/// The stability-memory tradeoff (paper Figures 1-2): the lowest-memory
/// configurations must be less stable than the highest-memory ones.
#[test]
fn stability_memory_tradeoff_holds() {
    let (world, grid) = tiny_world();
    let rows = Experiment::new(&world)
        .grid(&grid)
        .tasks(["sst2"])
        .algos([Algo::Cbow, Algo::Mc])
        .run();
    let lo = mean_di_at_memory_extreme(&rows, true);
    let hi = mean_di_at_memory_extreme(&rows, false);
    assert!(
        lo > hi,
        "low-memory configs should disagree more (low {lo:.3} vs high {hi:.3})"
    );
    // Downstream quality at full precision must be non-degenerate on
    // average for the comparison to mean anything (individual tiny-scale
    // configurations can sit near chance).
    let q: Vec<f64> = rows
        .iter()
        .filter(|r| r.bits == 32)
        .map(|r| r.quality17)
        .collect();
    assert!(
        stats::mean(&q) > 0.55,
        "degenerate full-precision models (mean quality {:.3})",
        stats::mean(&q)
    );
}

fn mean_di_at_memory_extreme(rows: &[Row], lowest: bool) -> f64 {
    let target = if lowest {
        rows.iter().map(|r| r.memory).min()
    } else {
        rows.iter().map(|r| r.memory).max()
    }
    .expect("rows");
    let dis: Vec<f64> = rows
        .iter()
        .filter(|r| r.memory == target)
        .map(|r| r.disagreement)
        .collect();
    stats::mean(&dis)
}

/// The NER task shows the same direction of effect over precision.
#[test]
fn ner_precision_effect() {
    let (world, grid) = tiny_world();
    let rows = Experiment::new(&world)
        .grid(&grid)
        .tasks(["ner"])
        .algos([Algo::Cbow])
        .precisions([Precision::new(1), Precision::FULL])
        .run();
    let one_bit: Vec<f64> = rows
        .iter()
        .filter(|r| r.bits == 1)
        .map(|r| r.disagreement)
        .collect();
    let full: Vec<f64> = rows
        .iter()
        .filter(|r| r.bits == 32)
        .map(|r| r.disagreement)
        .collect();
    assert!(
        stats::mean(&one_bit) > stats::mean(&full),
        "1-bit NER should be less stable than full precision"
    );
}

/// The eigenspace instability measure must correlate positively with
/// downstream disagreement across the grid (paper Table 1), and beat a
/// coin flip as a pairwise selector (paper Table 2).
#[test]
fn eis_predicts_downstream_instability() {
    let (world, grid) = tiny_world();
    let rows = Experiment::new(&world)
        .grid(&grid)
        .tasks(["sst2"])
        .algos([Algo::Cbow])
        .with_measures(true)
        .run();
    let xs: Vec<f64> = rows
        .iter()
        .map(|r| r.measures.expect("measures").get(MeasureKind::Eis))
        .collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.disagreement).collect();
    let rho = stats::spearman(&xs, &ys);
    assert!(
        rho > 0.2,
        "EIS should correlate with disagreement, rho = {rho:.2}"
    );

    let points: Vec<ConfigPoint> = rows
        .iter()
        .map(|r| ConfigPoint {
            dim: r.dim,
            bits: r.bits,
            measure: r.measures.expect("measures").get(MeasureKind::Eis),
            instability: r.disagreement,
        })
        .collect();
    let report = pairwise_selection(&points);
    assert!(
        report.error_rate < 0.5,
        "EIS should beat random pairwise selection, error {:.2}",
        report.error_rate
    );
}

/// Same seeds, same world => bit-identical rows (full-pipeline
/// determinism, which the paper's seed-matching protocol depends on).
#[test]
fn pipeline_is_deterministic() {
    let (world, grid) = tiny_world();
    let run = || {
        Experiment::new(&world)
            .grid(&grid)
            .tasks(["subj"])
            .algos([Algo::Mc])
            .dims([8])
            .run()
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.disagreement, y.disagreement);
        assert_eq!(x.quality17, y.quality17);
    }
}

/// Quantization at full precision must be a no-op end to end: identical
/// predictions, zero extra disagreement relative to the unquantized pair.
#[test]
fn full_precision_quantization_is_identity() {
    let (_world, grid) = tiny_world();
    let (x17, x18) = grid.pair(Algo::Cbow, 8, 0);
    let (q17, q18) = grid.quantized_pair(Algo::Cbow, 8, 0, Precision::FULL);
    assert_eq!(&q17, x17.as_ref());
    assert_eq!(&q18, x18.as_ref());
}
