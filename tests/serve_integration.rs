//! Integration tests for the serving layer on real trained embeddings:
//!
//! (a) the tenant registry's budget-line configuration pick agrees with
//!     `core::selection::budget_selection`'s oracle-gap evaluation,
//! (b) the stability gate holds an SLO-violating candidate while
//!     promoting a compliant one, and
//! (c) the batched lookup path equals per-row lookups bitwise.

use embedstab::core::measures::SvdMethod;
use embedstab::core::selection::{
    budget_selection, candidates_in_budget, pick_lowest_measure, pick_oracle, ConfigPoint,
};
use embedstab::embeddings::{train_embedding, Algo};
use embedstab::pipeline::cache::scratch_dir;
use embedstab::pipeline::{Experiment, Scale, World};
use embedstab::quant::Precision;
use embedstab::serve::{GateOutcome, Slo, StabilityGate, TenantRegistry, Version};
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(&Scale::Tiny.params(), 0))
}

/// Tiny-scale grid rows for one task with measures, seed 0 only (the
/// sweep an operator would run offline before registering tenants).
fn measured_points() -> Vec<ConfigPoint> {
    let rows = Experiment::new(world())
        .tasks(["sst2"])
        .algos([Algo::Cbow])
        .with_measures(true)
        .filter(|_, _, _, seed| seed == 0)
        .run();
    rows.iter()
        .map(|r| ConfigPoint {
            dim: r.dim,
            bits: r.bits,
            measure: r.measures.expect("measures requested").eis,
            instability: r.disagreement,
        })
        .collect()
}

/// (a) Registering a tenant runs the same candidate-ranking path
/// `budget_selection` evaluates: the pick's instability gap over the
/// budget-line oracle is exactly the report's single-budget mean gap.
#[test]
fn tenant_pick_agrees_with_budget_selection_oracle_gap() {
    let points = measured_points();
    // Tiny's grid (dims 4/8/16, bits 1/4/32) has one contested budget
    // line: 16 bits/word holds (dim=4, b=4) and (dim=16, b=1).
    let budget = 16u64;
    let on_line = candidates_in_budget(&points, budget);
    assert!(
        on_line.len() >= 2,
        "budget line must be contested, got {} candidates",
        on_line.len()
    );

    let root = scratch_dir("serve_integration_pick");
    std::fs::remove_dir_all(&root).ok();
    let mut registry = TenantRegistry::new(&root);
    let tenant = registry
        .register("shared", Slo::unbounded(budget), &points)
        .expect("register");

    // The registry's pick is the lowest-measure candidate on the line...
    let picked = pick_lowest_measure(&on_line).expect("candidates");
    assert_eq!(
        (tenant.dim(), tenant.precision().bits()),
        (picked.dim, picked.bits),
        "registry must pick through the shared selection path"
    );
    // ...and its oracle gap is exactly what budget_selection reports for
    // this budget (one contested line -> mean gap == the pick's gap).
    let oracle = pick_oracle(&on_line).expect("candidates");
    let report = budget_selection(&on_line);
    assert_eq!(report.budgets, 1);
    assert!(
        (report.mean_gap - (picked.instability - oracle.instability)).abs() < 1e-12,
        "gate pick gap {} must equal budget_selection mean gap {}",
        picked.instability - oracle.instability,
        report.mean_gap
    );
    std::fs::remove_dir_all(&root).ok();
}

/// (b) A candidate violating the SLO is held while a compliant one is
/// promoted, on real trained embeddings: the Wiki'18 retrain and an
/// independent-seed retrain score differently against the same live
/// snapshot, and an SLO between the two scores separates them.
#[test]
fn slo_holds_violating_candidate_and_promotes_compliant_one() {
    let w = world();
    let dim = 8usize;
    let e17 = train_embedding(Algo::Cbow, &w.stats17, w.vocab(), dim, 0);
    let e18_same = train_embedding(Algo::Cbow, &w.stats18, w.vocab(), dim, 0);
    let e18_reseeded = train_embedding(Algo::Cbow, &w.stats18, w.vocab(), dim, 7);

    // Score both candidates against the same bootstrap snapshot to place
    // the SLO between them (an explicit SVD backend, as production pins
    // one).
    let gate = StabilityGate::new().with_svd_method(SvdMethod::Exact);
    let root = scratch_dir("serve_integration_slo");
    std::fs::remove_dir_all(&root).ok();
    let precision = Precision::new(4);
    let mut probe = embedstab::serve::SnapshotStore::open(root.join("probe")).expect("open");
    probe.publish(&e17, precision, None).expect("bootstrap");
    let live = probe.live().expect("live");
    let score_same = gate
        .score(live, &e18_same)
        .expect("score")
        .predicted_instability;
    let score_reseeded = gate
        .score(live, &e18_reseeded)
        .expect("score")
        .predicted_instability;
    assert!(
        score_same != score_reseeded,
        "the two retrains must be distinguishable"
    );
    let (compliant, violating) = if score_same < score_reseeded {
        (&e18_same, &e18_reseeded)
    } else {
        (&e18_reseeded, &e18_same)
    };

    let slo = Slo {
        max_predicted_instability: (score_same + score_reseeded) / 2.0,
        memory_budget_bits: dim as u64 * 4,
    };
    let mut registry = TenantRegistry::new(root.join("gated")).with_gate(gate);
    registry
        .register_config("t", slo, dim, precision)
        .expect("register");
    registry.submit("t", &e17).expect("bootstrap");

    // The SLO-violating candidate is held: live stays at v1.
    let held = registry.submit("t", violating).expect("submit");
    assert!(matches!(held, GateOutcome::Held { .. }));
    let tenant = registry.tenant("t").expect("tenant");
    assert_eq!(tenant.live().expect("live").meta().version, Version(1));
    assert_eq!(tenant.store().len(), 1, "held candidates are not published");

    // The compliant candidate is promoted and records its gate score.
    let promoted = registry.submit("t", compliant).expect("submit");
    assert!(matches!(promoted, GateOutcome::Promoted { .. }));
    let tenant = registry.tenant("t").expect("tenant");
    let live = tenant.live().expect("live");
    assert_eq!(live.meta().version, Version(2));
    let recorded = live
        .meta()
        .predicted_instability
        .expect("promotion records its score");
    assert!(recorded <= slo.max_predicted_instability);
    std::fs::remove_dir_all(&root).ok();
}

/// (c) `lookup_batch` equals per-row lookups bitwise, and the batched
/// GEMM nearest-neighbor path ranks a word's own vector first.
#[test]
fn batched_lookups_equal_per_row_lookups_bitwise() {
    let w = world();
    let dim = 8usize;
    let emb = train_embedding(Algo::Cbow, &w.stats17, w.vocab(), dim, 0);
    let root = scratch_dir("serve_integration_batch");
    std::fs::remove_dir_all(&root).ok();
    let mut registry = TenantRegistry::new(&root);
    registry
        .register_config("t", Slo::unbounded(dim as u64 * 4), dim, Precision::new(4))
        .expect("register");
    registry.submit("t", &emb).expect("bootstrap");
    let live = registry.tenant("t").expect("tenant").live().expect("live");

    let ids: Vec<u32> = (0..live.meta().vocab_size as u32).step_by(3).collect();
    let batch = live.lookup_batch(&ids);
    assert_eq!(batch.shape(), (ids.len(), dim));
    for (row, &id) in ids.iter().enumerate() {
        let single = live.lookup(id);
        assert_eq!(batch.row(row).len(), single.len());
        for (a, b) in batch.row(row).iter().zip(single) {
            assert_eq!(a.to_bits(), b.to_bits(), "word {id} row {row} differs");
        }
    }

    // The batched similarity path agrees with itself run one query at a
    // time (same GEMM kernel, different blocking) and is self-consistent.
    let queries = live.lookup_batch(&[5, 40]);
    let batched = live.nearest_batch(&queries, 3);
    for (qi, &id) in [5u32, 40].iter().enumerate() {
        assert_eq!(batched[qi][0].0, id, "a word is its own nearest neighbor");
        let solo = live.nearest_batch(&live.lookup_batch(&[id]), 3);
        assert_eq!(solo[0], batched[qi]);
    }
    std::fs::remove_dir_all(&root).ok();
}
