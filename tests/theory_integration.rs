//! Cross-crate validation of Proposition 1 and the measure suite on
//! *trained* embeddings (not just random matrices).

use embedstab::core::measures::{DistanceMeasure, EisMeasure, MeasureKind, MeasureSuite};
use embedstab::core::theory::{eis_dense, monte_carlo_disagreement, SigmaFactor};
use embedstab::embeddings::Algo;
use embedstab::pipeline::{EmbeddingGrid, Scale, World};

fn trained_pairs() -> (World, EmbeddingGrid) {
    let params = Scale::Tiny.params();
    let world = World::build(&params, 0);
    let grid = EmbeddingGrid::build(&world, &[Algo::Mc], &params.dims, &[0]);
    (world, grid)
}

/// Proposition 1 on trained embeddings: the efficient EIS implementation,
/// the dense trace formula, and the Monte-Carlo OLS estimate all agree.
#[test]
fn proposition_1_on_trained_embeddings() {
    let (world, grid) = trained_pairs();
    let max_dim = world.params.max_dim();
    let (e17, e18) = grid.pair(Algo::Mc, max_dim, 0);
    let sigma = SigmaFactor::from_references(e17.mat(), e18.mat(), 3.0);
    let eis = EisMeasure::new(e17, e18, 3.0);
    for &dim in &world.params.dims {
        let (x17, x18) = grid.pair(Algo::Mc, dim, 0);
        let fast = eis.distance(x17, x18);
        let dense = eis_dense(x17.mat(), x18.mat(), &sigma.dense());
        assert!(
            (fast - dense).abs() < 1e-8,
            "d={dim}: efficient {fast} vs dense {dense}"
        );
        let mc = monte_carlo_disagreement(x17.mat(), x18.mat(), &sigma, 3000, 5);
        assert!(
            (fast - mc).abs() < 0.02,
            "d={dim}: EIS {fast:.4} vs Monte-Carlo {mc:.4}"
        );
    }
}

/// The EIS of trained pairs falls as precision grows at a fixed dimension
/// (the measure-level stability-memory trend that drives the paper's
/// selection results; see EXPERIMENTS.md for why the precision axis is the
/// robust one at laptop scale).
#[test]
fn eis_decreases_with_precision_on_trained_pairs() {
    use embedstab::quant::{quantize_pair, Precision};
    let (world, grid) = trained_pairs();
    let max_dim = world.params.max_dim();
    let (e17, e18) = grid.pair(Algo::Mc, max_dim, 0);
    let eis = EisMeasure::new(e17, e18, 3.0);
    let mid_dim = world.params.dims[world.params.dims.len() / 2];
    let (x17, x18) = grid.pair(Algo::Mc, mid_dim, 0);
    let values: Vec<f64> = [Precision::new(1), Precision::new(4), Precision::FULL]
        .iter()
        .map(|&p| {
            let (q17, q18) = quantize_pair(x17, x18, p);
            eis.distance(&q17.embedding, &q18.embedding)
        })
        .collect();
    assert!(
        values[0] > values[2],
        "EIS should fall from 1-bit to full precision: {values:?}"
    );
    assert!(
        values[1] <= values[0],
        "4-bit EIS should not exceed 1-bit EIS: {values:?}"
    );
}

/// All five measures agree that identical embeddings are identical and
/// that trained '17/'18 pairs are not.
#[test]
fn measure_suite_sanity_on_trained_pairs() {
    let (world, grid) = trained_pairs();
    let (x17, x18) = grid.pair(Algo::Mc, world.params.max_dim(), 0);
    let suite = MeasureSuite::new(x17, x18, 3.0, 0);
    let same = suite.compute_all(x17, x17);
    let diff = suite.compute_all(x17, x18);
    for kind in MeasureKind::ALL {
        assert!(same.get(kind).abs() < 1e-6, "{kind} on identical pair");
        assert!(
            diff.get(kind) > same.get(kind),
            "{kind} must detect the corpus change"
        );
    }
}
