//! Cross-crate property-based tests on the core invariants of the
//! reproduction.

use embedstab::core::measures::{
    DistanceMeasure, EigenspaceOverlap, EisMeasure, KnnMeasure, PipLoss,
};
use embedstab::core::selection::{budget_selection, pairwise_selection, ConfigPoint};
use embedstab::core::stats;
use embedstab::embeddings::Embedding;
use embedstab::linalg::Mat;
use embedstab::linalg::{RandomizedSvd, SvdMethod};
use embedstab::quant::{bits_per_word, quantize, Precision};
use proptest::prelude::*;

fn embedding_strategy(n: usize, d: usize) -> impl Strategy<Value = Embedding> {
    proptest::collection::vec(-3.0f64..3.0, n * d)
        .prop_map(move |data| Embedding::new(Mat::from_vec(n, d, data)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// EIS is always in [0, 1], zero on identical pairs, and symmetric.
    #[test]
    fn eis_bounds_and_symmetry(
        x in embedding_strategy(20, 4),
        y in embedding_strategy(20, 4),
    ) {
        prop_assume!(x.mat().frobenius_norm() > 1e-6);
        prop_assume!(y.mat().frobenius_norm() > 1e-6);
        let eis = EisMeasure::new(&x, &y, 2.0);
        let d_xy = eis.distance(&x, &y);
        let d_yx = eis.distance(&y, &x);
        prop_assert!((0.0..=1.0).contains(&d_xy));
        prop_assert!((d_xy - d_yx).abs() < 1e-8, "EIS must be symmetric");
        prop_assert!(eis.distance(&x, &x) < 1e-8);
    }

    /// Quantization error is monotone in precision, and memory accounting
    /// is exact.
    #[test]
    fn quantization_monotone_and_memory_exact(
        emb in embedding_strategy(15, 6),
        bits_lo in 1u8..4,
    ) {
        let bits_hi = bits_lo + 2;
        let q_lo = quantize(&emb, Precision::new(bits_lo), None);
        let q_hi = quantize(&emb, Precision::new(bits_hi), None);
        prop_assert!(q_hi.mse <= q_lo.mse + 1e-12);
        prop_assert_eq!(
            bits_per_word(emb.dim(), Precision::new(bits_lo)),
            (emb.dim() as u64) * bits_lo as u64
        );
    }

    /// A measure that equals the instability exactly makes zero selection
    /// errors; one that equals its negation errs on every decidable pair.
    #[test]
    fn selection_consistency(
        instabilities in proptest::collection::vec(0.01f64..0.5, 4..10),
    ) {
        let perfect: Vec<ConfigPoint> = instabilities
            .iter()
            .enumerate()
            .map(|(i, &di)| ConfigPoint { dim: 4 << i, bits: 32, measure: di, instability: di })
            .collect();
        prop_assert_eq!(pairwise_selection(&perfect).error_rate, 0.0);
        let inverted: Vec<ConfigPoint> = perfect
            .iter()
            .map(|p| ConfigPoint { measure: -p.measure, ..*p })
            .collect();
        let distinct = instabilities
            .iter()
            .any(|a| instabilities.iter().any(|b| a != b));
        if distinct {
            prop_assert!(pairwise_selection(&inverted).error_rate > 0.99);
        }
        // Budget selection gap is non-negative and bounded by the spread.
        let rep = budget_selection(&perfect);
        prop_assert!(rep.mean_gap >= 0.0);
    }

    /// Spearman is invariant under strictly monotone transformations of
    /// either argument — the property that justifies comparing measures on
    /// different scales (PIP vs EIS) by rank correlation.
    #[test]
    fn spearman_scale_free(values in proptest::collection::vec(0.0f64..1.0, 5..20)) {
        let others: Vec<f64> = values.iter().map(|v| (v * 3.7).exp()).collect();
        let rho = stats::spearman(&values, &others);
        prop_assert!((rho - 1.0).abs() < 1e-9);
    }

    /// The SVD-backed measures are invariant under the kernel swap: the
    /// eigenspace overlap, PIP loss, and EIS distances agree to 1e-8
    /// whether the singular bases come from exact Jacobi or the
    /// randomized range finder on the same embedding pair.
    #[test]
    fn measures_invariant_under_svd_backend(
        x in embedding_strategy(40, 5),
        y in embedding_strategy(40, 5),
    ) {
        prop_assume!(x.mat().frobenius_norm() > 1e-6);
        prop_assume!(y.mat().frobenius_norm() > 1e-6);
        let exact = SvdMethod::Exact;
        let rsvd = SvdMethod::Randomized(RandomizedSvd::full());

        let ov_e = EigenspaceOverlap.distance_with_svd(&x, &y, exact);
        let ov_r = EigenspaceOverlap.distance_with_svd(&x, &y, rsvd);
        prop_assert!((ov_e - ov_r).abs() < 1e-8, "overlap: {ov_e} vs {ov_r}");

        let eis = EisMeasure::new(&x, &y, 2.0);
        let eis_e = eis.distance_with_svd(&x, &y, exact);
        let eis_r = eis.distance_with_svd(&x, &y, rsvd);
        prop_assert!((eis_e - eis_r).abs() < 1e-8, "EIS: {eis_e} vs {eis_r}");

        // PIP is unnormalized, so compare at its own scale; the SVD paths
        // must also agree with the Gram-product implementation.
        let pip_scale = x.mat().gram().frobenius_norm().max(1.0);
        let pip_direct = PipLoss.distance(&x, &y);
        let pip_e = PipLoss.distance_via_svd(&x, &y, exact);
        let pip_r = PipLoss.distance_via_svd(&x, &y, rsvd);
        prop_assert!((pip_e - pip_r).abs() < 1e-8 * pip_scale, "PIP: {pip_e} vs {pip_r}");
        prop_assert!((pip_e - pip_direct).abs() < 1e-6 * pip_scale, "PIP svd vs gram: {pip_e} vs {pip_direct}");
    }

    /// k-NN distance and PIP loss are invariant under orthogonal rotation
    /// of one embedding (rotations do not change geometry), while EIS with
    /// fixed references is too.
    #[test]
    fn rotation_invariance(emb in embedding_strategy(18, 4), seed in 0u64..500) {
        use rand::SeedableRng;
        prop_assume!(emb.mat().frobenius_norm() > 1e-6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (q, _) = Mat::random_normal(4, 4, &mut rng).qr();
        let rotated = Embedding::new(emb.mat().matmul(&q));
        let knn = KnnMeasure::new(3, 18, 0);
        prop_assert!(knn.distance(&emb, &rotated) < 1e-9);
        let pip_scale = emb.mat().gram().frobenius_norm().sqrt().max(1.0);
        prop_assert!(PipLoss.distance(&emb, &rotated) < 1e-5 * pip_scale);
        let eis = EisMeasure::new(&emb, &emb, 1.0);
        prop_assert!(eis.distance(&emb, &rotated) < 1e-8);
    }
}
