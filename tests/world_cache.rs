//! Integration contract of the on-disk `WorldCache`: a loaded world is
//! interchangeable with a freshly built one — the full experiment grid
//! (downstream disagreement, quality, and all five distance measures)
//! reproduces **bitwise**, across master seeds, and the `Experiment`
//! builder's `.world_cache(dir)` warms the cache for sibling processes.

use embedstab::embeddings::Algo;
use embedstab::pipeline::{Experiment, Row, Scale, ScaleParams, World, WorldCache};
use embedstab::quant::Precision;
use proptest::prelude::*;

fn tiny_params() -> ScaleParams {
    let mut params = Scale::Tiny.params();
    params.dims = vec![4, 8];
    params.precisions = vec![Precision::new(2), Precision::FULL];
    params.seeds = vec![0];
    params.corpus_tokens = 6000;
    params.sentiment_train = 80;
    params.sentiment_test = 50;
    params.ner_train = 40;
    params.ner_test = 25;
    params
}

fn scratch(label: &str) -> std::path::PathBuf {
    let dir = embedstab::pipeline::cache::scratch_dir(label);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Rows keyed bitwise: every float as raw bits, measures included.
fn bitwise_keys(rows: &[Row]) -> Vec<(String, String, usize, u8, u64, [u64; 3], Vec<u64>)> {
    rows.iter()
        .map(|r| {
            (
                r.task.clone(),
                r.algo.clone(),
                r.dim,
                r.bits,
                r.seed,
                [
                    r.disagreement.to_bits(),
                    r.quality17.to_bits(),
                    r.quality18.to_bits(),
                ],
                r.measures
                    .map(|m| {
                        vec![
                            m.eis.to_bits(),
                            m.knn_dist.to_bits(),
                            m.semantic_displacement.to_bits(),
                            m.pip_loss.to_bits(),
                            m.overlap_dist.to_bits(),
                        ]
                    })
                    .unwrap_or_default(),
            )
        })
        .collect()
}

fn grid_rows(world: &World) -> Vec<Row> {
    Experiment::new(world)
        .tasks(["sst2", "ner"])
        .algos([Algo::Mc])
        .with_measures(true)
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The acceptance contract: for any master seed, a world loaded from
    /// the cache produces grid rows bitwise identical to the freshly
    /// built world it was stored from — disagreement, quality, and all
    /// five measures.
    #[test]
    fn loaded_world_reproduces_built_world_rows_bitwise(master_seed in 0u64..1000) {
        let dir = scratch("world_cache_rows");
        let params = tiny_params();
        let built = World::build(&params, master_seed);
        let cache = WorldCache::open(&dir).expect("open");
        cache.store(&built).expect("store");
        let loaded = cache.load(&params, master_seed).expect("hit");
        prop_assert_eq!(bitwise_keys(&grid_rows(&loaded)), bitwise_keys(&grid_rows(&built)));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// `Experiment::world_cache(dir)` persists the world at run start (so a
/// run doubles as the fleet's cache warmer), and leaves an existing cached
/// world untouched on later runs.
#[test]
fn experiment_builder_warms_the_world_cache() {
    let dir = scratch("world_cache_builder");
    let params = tiny_params();
    let world = World::build(&params, 0);
    let cache = WorldCache::open(&dir).expect("open");
    assert!(!cache.contains(&params, 0));
    let rows = Experiment::new(&world)
        .tasks(["sst2"])
        .algos([Algo::Mc])
        .world_cache(&dir)
        .run();
    assert_eq!(rows.len(), 4);
    assert!(cache.contains(&params, 0), "run must store the world");
    let stored = std::fs::metadata(cache.path(&params, 0)).expect("stat");
    let first_len = stored.len();
    // A second run against the same cache leaves the stored file alone
    // (store-if-absent, not rewrite-every-run).
    let modified = stored.modified().expect("mtime");
    let _ = Experiment::new(&world)
        .tasks(["sst2"])
        .algos([Algo::Mc])
        .world_cache(&dir)
        .run();
    let restat = std::fs::metadata(cache.path(&params, 0)).expect("stat");
    assert_eq!(restat.len(), first_len);
    assert_eq!(restat.modified().expect("mtime"), modified);
    // And the stored world round-trips into the same rows.
    let loaded = cache.load(&params, 0).expect("hit");
    assert_eq!(
        bitwise_keys(&grid_rows(&loaded)),
        bitwise_keys(&grid_rows(&world))
    );
    std::fs::remove_dir_all(&dir).ok();
}
