//! Facade smoke test: every subsystem re-exported by `embedstab`'s
//! `src/lib.rs` must resolve, and a representative symbol from each must
//! be usable — so a facade/workspace wiring regression fails here first,
//! before any heavier integration test.

use embedstab::embeddings::Embedding;
use embedstab::linalg::Mat;

/// One load-bearing path per re-exported subsystem.
#[test]
fn all_reexported_subsystems_resolve() {
    // linalg
    let m = Mat::identity(3);
    assert_eq!(m.trace(), 3.0);

    // corpus
    let model = embedstab::corpus::LatentModel::new(&embedstab::corpus::LatentModelConfig {
        vocab_size: 60,
        ..Default::default()
    });
    let corpus = model.generate_corpus(&embedstab::corpus::CorpusConfig {
        n_tokens: 500,
        ..Default::default()
    });
    assert!(corpus.n_tokens() >= 500);

    // embeddings
    let emb = Embedding::new(Mat::identity(4));
    assert_eq!(emb.dim(), 4);
    assert_eq!(embedstab::embeddings::Algo::MAIN.len(), 3);

    // quant
    let q = embedstab::quant::quantize(&emb, embedstab::quant::Precision::new(1), None);
    assert!(q.mse >= 0.0);
    assert_eq!(
        embedstab::quant::bits_per_word(4, embedstab::quant::Precision::FULL),
        128
    );

    // core
    assert_eq!(
        embedstab::core::disagreement(&[true, false], &[true, true]),
        0.5
    );
    assert_eq!(embedstab::core::measures::MeasureKind::ALL.len(), 5);

    // downstream
    assert!(embedstab::downstream::N_TAGS >= 2);

    // kge
    let kg = embedstab::kge::KgSpec {
        n_entities: 20,
        n_types: 3,
        n_relations: 4,
        triplets_per_relation: 30,
        ..Default::default()
    }
    .generate();
    assert_eq!(kg.n_entities, 20);

    // ctx
    let cfg = embedstab::ctx::BertConfig {
        vocab_size: 30,
        dim: 8,
        heads: 2,
        layers: 1,
        ..Default::default()
    };
    let bert = embedstab::ctx::MiniBert::new(&cfg);
    assert_eq!(bert.sentence_embedding(&[1, 2, 3]).len(), 8);

    // pipeline
    let params = embedstab::pipeline::Scale::Tiny.params();
    assert!(!params.dims.is_empty());
    assert!(
        params.seeds.len() >= 3,
        "tiny scale must keep the 3-seed protocol"
    );
}
