//! Integration tests for the paper's Section 6 extensions: knowledge-graph
//! embeddings and contextual (mini-BERT) embeddings.

use embedstab::core::disagreement;
use embedstab::corpus::{CorpusConfig, LatentModel, LatentModelConfig};
use embedstab::ctx::{BertConfig, MiniBert, MlmTrainConfig};
use embedstab::downstream::models::{LogReg, TrainSpec};
use embedstab::downstream::tasks::sentiment::SentimentSpec;
use embedstab::kge::{
    link_prediction_ranks, mean_rank, quantize_transe_pair, train_transe, unstable_rank_at_10,
    KgSpec, TranseConfig,
};
use embedstab::linalg::Mat;
use embedstab::quant::Precision;

/// Section 6.1, in miniature: the 5%-subsample TransE pair is less stable
/// at 1 bit than at full precision, and training genuinely beats random
/// ranks.
#[test]
fn kge_stability_memory_tradeoff() {
    let kg = KgSpec {
        n_entities: 100,
        n_types: 5,
        n_relations: 6,
        triplets_per_relation: 100,
        ..Default::default()
    }
    .generate();
    let kg95 = kg.subsample_train(0.95, 3);
    let cfg = TranseConfig {
        epochs: 60,
        patience: 0,
        ..Default::default()
    };
    let a = train_transe(&kg, 16, &cfg, 0);
    let b = train_transe(&kg95, 16, &cfg, 0);

    let ra = link_prediction_ranks(&a, kg.n_entities, &kg.test);
    assert!(
        mean_rank(&ra) < 30.0,
        "training failed: mean rank {}",
        mean_rank(&ra)
    );

    let rb = link_prediction_ranks(&b, kg.n_entities, &kg.test);
    let full_instability = unstable_rank_at_10(&ra, &rb);
    let (qa, qb) = quantize_transe_pair(&a, &b, Precision::new(1));
    let rqa = link_prediction_ranks(&qa, kg.n_entities, &kg.test);
    let rqb = link_prediction_ranks(&qb, kg.n_entities, &kg.test);
    let one_bit_instability = unstable_rank_at_10(&rqa, &rqb);
    assert!(
        one_bit_instability >= full_instability,
        "1-bit ({one_bit_instability:.3}) should be at least as unstable as \
         full precision ({full_instability:.3})"
    );
}

/// Section 6.2, in miniature: two mini-BERTs pre-trained on drifted
/// corpora act as fixed feature extractors; the downstream linear models
/// are usable and disagree on some but not most predictions.
#[test]
fn contextual_embeddings_pipeline() {
    let model = LatentModel::new(&LatentModelConfig {
        vocab_size: 120,
        n_topics: 6,
        ..Default::default()
    });
    let drifted = model.drifted(&Default::default());
    let c17 = model.generate_corpus(&CorpusConfig {
        n_tokens: 8_000,
        seed: 0,
        ..Default::default()
    });
    let c18 = drifted.generate_corpus(&CorpusConfig {
        n_tokens: 8_000,
        seed: 1,
        ..Default::default()
    });
    let bert_cfg = BertConfig {
        vocab_size: 120,
        dim: 16,
        heads: 2,
        layers: 2,
        max_len: 16,
        ffn_mult: 2,
        seed: 0,
    };
    let mut b17 = MiniBert::new(&bert_cfg);
    let mut b18 = MiniBert::new(&bert_cfg);
    let tcfg = MlmTrainConfig {
        epochs: 2,
        ..Default::default()
    };
    b17.train_mlm(&c17, &tcfg);
    b18.train_mlm(&c18, &tcfg);

    let ds = SentimentSpec {
        n_train: 200,
        n_valid: 30,
        n_test: 150,
        ..SentimentSpec::sst2()
    }
    .generate(&model);
    let feats = |bert: &MiniBert, exs: &[embedstab::downstream::SentimentExample]| -> Mat {
        let mut out = Mat::zeros(exs.len(), 16);
        for (i, ex) in exs.iter().enumerate() {
            let toks = &ex.tokens[..ex.tokens.len().min(16)];
            out.row_mut(i)
                .copy_from_slice(&bert.sentence_embedding(toks));
        }
        out
    };
    let labels: Vec<bool> = ds.train.iter().map(|e| e.label).collect();
    let spec = TrainSpec {
        lr: 0.01,
        epochs: 25,
        ..Default::default()
    };
    let m17 = LogReg::train(&feats(&b17, &ds.train), &labels, &spec);
    let m18 = LogReg::train(&feats(&b18, &ds.train), &labels, &spec);
    let p17 = m17.predict_all(&feats(&b17, &ds.test));
    let p18 = m18.predict_all(&feats(&b18, &ds.test));
    let test_labels: Vec<bool> = ds.test.iter().map(|e| e.label).collect();
    let acc17 = p17.iter().zip(&test_labels).filter(|(a, b)| a == b).count() as f64
        / test_labels.len() as f64;
    assert!(
        acc17 > 0.55,
        "BERT features should be learnable, acc {acc17}"
    );
    let di = disagreement(&p17, &p18);
    assert!(
        di > 0.0 && di < 0.5,
        "drifted pre-training should cause bounded disagreement, got {di}"
    );
}
