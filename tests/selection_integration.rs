//! Integration tests for the dimension-precision selection pipeline
//! (paper Section 4.2) on real trained embeddings.

use embedstab::core::measures::MeasureKind;
use embedstab::core::selection::{
    budget_baseline, budget_selection, pairwise_selection, BudgetBaseline, ConfigPoint,
};
use embedstab::core::stats;
use embedstab::core::trend::{fit_rule_of_thumb, Observation};
use embedstab::embeddings::Algo;
use embedstab::pipeline::{Experiment, Scale, World};

fn grid_rows() -> Vec<embedstab::pipeline::Row> {
    let params = Scale::Tiny.params();
    let world = World::build(&params, 0);
    Experiment::new(&world)
        .tasks(["sst2"])
        .algos([Algo::Cbow])
        .with_measures(true)
        .run()
}

/// The full selection stack runs end to end on trained embeddings and the
/// measures beat the worst possible selector.
#[test]
fn selection_stack_on_trained_embeddings() {
    let rows = grid_rows();
    for kind in [MeasureKind::Eis, MeasureKind::Knn] {
        let points: Vec<ConfigPoint> = rows
            .iter()
            .map(|r| ConfigPoint {
                dim: r.dim,
                bits: r.bits,
                measure: r.measures.expect("measures").get(kind),
                instability: r.disagreement,
            })
            .collect();
        let pairwise = pairwise_selection(&points);
        assert!(pairwise.pairs > 0, "there must be decidable pairs");
        assert!(
            pairwise.error_rate <= 0.5,
            "{kind}: selection must beat coin flips, error {}",
            pairwise.error_rate
        );
        let budget = budget_selection(&points);
        // Oracle gaps are bounded by the spread of instabilities.
        let spread = points
            .iter()
            .map(|p| p.instability)
            .fold(f64::NEG_INFINITY, f64::max)
            - points
                .iter()
                .map(|p| p.instability)
                .fold(f64::INFINITY, f64::min);
        assert!(budget.mean_gap <= spread + 1e-12);
        assert!(budget.worst_gap >= budget.mean_gap - 1e-12);
        // Baselines run on the same points.
        let hi = budget_baseline(&points, BudgetBaseline::HighPrecision);
        let lo = budget_baseline(&points, BudgetBaseline::LowPrecision);
        assert_eq!(hi.budgets, budget.budgets);
        assert_eq!(lo.budgets, budget.budgets);
    }
}

/// The rule-of-thumb fit on real rows has a positive drop-per-doubling
/// (instability falls as memory grows) and predicts within the observed
/// range.
#[test]
fn rule_of_thumb_on_trained_rows() {
    let rows = grid_rows();
    let obs: Vec<Observation> = rows
        .iter()
        .map(|r| Observation {
            group: format!("{}/{}", r.task, r.algo),
            memory_bits: r.memory as f64,
            disagreement_pct: 100.0 * r.disagreement,
        })
        .collect();
    let fit = fit_rule_of_thumb(&obs, f64::INFINITY).expect("fit");
    assert!(
        fit.drop_per_doubling > 0.0,
        "instability must fall with memory, slope {}",
        fit.drop_per_doubling
    );
    let lo_mem = rows.iter().map(|r| r.memory).min().expect("rows") as f64;
    let hi_mem = rows.iter().map(|r| r.memory).max().expect("rows") as f64;
    let pred_lo = fit.predict("sst2/CBOW", lo_mem);
    let pred_hi = fit.predict("sst2/CBOW", hi_mem);
    assert!(pred_lo > pred_hi, "prediction must decrease with memory");
}

/// Seed-averaged Spearman: aggregating DI across seeds (the paper's Table 1
/// protocol) must not flip the sign of a strong correlation.
#[test]
fn seed_aggregation_preserves_correlation_sign() {
    let rows = grid_rows();
    let xs: Vec<f64> = rows
        .iter()
        .map(|r| r.measures.expect("measures").get(MeasureKind::Eis))
        .collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.disagreement).collect();
    let rho_all = stats::spearman(&xs, &ys);
    // Average per config over seeds, then correlate.
    use std::collections::BTreeMap;
    let mut grouped: BTreeMap<(usize, u8), (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for r in &rows {
        let e = grouped.entry((r.dim, r.bits)).or_default();
        e.0.push(r.measures.expect("measures").get(MeasureKind::Eis));
        e.1.push(r.disagreement);
    }
    let (mx, my): (Vec<f64>, Vec<f64>) = grouped
        .values()
        .map(|(a, b)| (stats::mean(a), stats::mean(b)))
        .unzip();
    let rho_mean = stats::spearman(&mx, &my);
    if rho_all.abs() > 0.3 {
        assert_eq!(
            rho_all.signum(),
            rho_mean.signum(),
            "aggregation flipped the correlation: {rho_all:.2} vs {rho_mean:.2}"
        );
    }
}
