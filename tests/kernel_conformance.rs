//! Kernel-conformance suite: pins the accuracy of the packed blocked GEMM
//! and the randomized range-finder SVD against their reference
//! implementations (`Mat::matmul_naive`, `Mat::svd_exact`), so the hot
//! paths can keep changing underneath without the figures drifting.
//!
//! Rettenmeier (2020) shows stability estimates are sensitive to numerical
//! noise in the factorization itself; these bounds are the contract every
//! kernel rewrite must keep.

use embedstab::linalg::{Mat, RandomizedSvd, SvdMethod};
use proptest::prelude::*;

/// Relative Frobenius error bound for GEMM vs the naive triple loop.
const GEMM_TOL: f64 = 1e-10;

fn rel_err(got: &Mat, want: &Mat) -> f64 {
    got.sub(want).frobenius_norm() / want.frobenius_norm().max(1.0)
}

/// Adversarial GEMM shapes: degenerate vectors, micro/cache-block
/// boundaries and off-by-one neighbors, and the packed-vs-small threshold.
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 40, 1),    // outer product of row/column vectors
    (1, 1, 40),    // 1xN
    (40, 1, 1),    // Nx1
    (3, 5, 7),     // tiny, under the packing threshold
    (6, 8, 6),     // exactly one register tile
    (7, 9, 9),     // one tile plus ragged edges
    (32, 32, 32),  // exactly at the packing threshold
    (33, 31, 35),  // just across it
    (120, 40, 8),  // exactly MC rows
    (121, 40, 9),  // MC + 1 rows, NR + 1 cols
    (48, 256, 16), // exactly KC deep
    (48, 257, 16), // KC + 1 deep
    (16, 40, 512), // exactly NC wide
    (17, 40, 513), // NC + 1 wide
];

/// Strategy: one adversarial shape plus random operand data, with roughly
/// a quarter of A's rows zeroed (the packed kernel and the naive loop take
/// different shortcuts on zeros).
fn gemm_case() -> impl Strategy<Value = (Mat, Mat)> {
    (0usize..GEMM_SHAPES.len()).prop_flat_map(|idx| {
        let (m, k, n) = GEMM_SHAPES[idx];
        (
            proptest::collection::vec(-2.0f64..2.0, m * k),
            proptest::collection::vec(-2.0f64..2.0, k * n),
            proptest::collection::vec(0u8..4, m),
        )
            .prop_map(move |(da, db, zero_marks)| {
                let mut a = Mat::from_vec(m, k, da);
                for (i, &z) in zero_marks.iter().enumerate() {
                    if z == 0 {
                        a.row_mut(i).iter_mut().for_each(|v| *v = 0.0);
                    }
                }
                (a, Mat::from_vec(k, n, db))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked GEMM (all orientations) matches the naive triple loop to
    /// 1e-10 relative Frobenius error on adversarial shapes with planted
    /// zero rows.
    #[test]
    fn gemm_matches_naive_random_shapes((a, b) in gemm_case()) {
        let want = a.matmul_naive(&b);
        prop_assert!(rel_err(&a.matmul(&b), &want) < GEMM_TOL);
        let at = a.transpose();
        prop_assert!(rel_err(&at.matmul_tn(&b), &want) < GEMM_TOL);
        let bt = b.transpose();
        prop_assert!(rel_err(&a.matmul_nt(&bt), &want) < GEMM_TOL);
    }

    /// Randomized SVD on random tall matrices: `A ~= U S V^T` with
    /// orthonormal factors and singular values matching exact Jacobi.
    #[test]
    fn randomized_svd_matches_exact_random(
        data in proptest::collection::vec(-2.0f64..2.0, 60 * 6),
        wide in 0u8..2,
    ) {
        let a = if wide == 0 {
            Mat::from_vec(60, 6, data)
        } else {
            Mat::from_vec(6, 60, data)
        };
        prop_assume!(a.frobenius_norm() > 1e-6);
        let exact = a.svd_exact();
        let rsvd = a.svd_randomized(RandomizedSvd::full());
        let scale = exact.s[0].max(1.0);
        for (se, sr) in exact.s.iter().zip(&rsvd.s) {
            prop_assert!((se - sr).abs() < 1e-8 * scale);
        }
        let rel = rsvd.reconstruct().sub(&a).frobenius_norm() / a.frobenius_norm();
        prop_assert!(rel < 1e-9, "reconstruction error {rel}");
        let r = rsvd.rank(1e-10);
        let ur = rsvd.u_rank(1e-10);
        prop_assert!(ur.gram().sub(&Mat::identity(r)).frobenius_norm() < 1e-8);
        let vr = rsvd.v_rank(1e-10);
        prop_assert!(vr.gram().sub(&Mat::identity(r)).frobenius_norm() < 1e-8);
    }
}

#[test]
fn gemm_all_variants_match_naive_on_adversarial_shapes() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0);
    for &(m, k, n) in GEMM_SHAPES {
        let mut a = Mat::random_normal(m, k, &mut rng);
        let mut b = Mat::random_normal(k, n, &mut rng);
        // Plant zero rows/columns to hit the zero-skip shortcuts.
        if m > 2 {
            a.row_mut(m / 2).iter_mut().for_each(|v| *v = 0.0);
        }
        if k > 2 {
            b.row_mut(k / 2).iter_mut().for_each(|v| *v = 0.0);
        }
        let want = a.matmul_naive(&b);
        assert!(
            rel_err(&a.matmul(&b), &want) < GEMM_TOL,
            "matmul {m}x{k}x{n}"
        );
        // Transposed variants against explicitly transposed naive products.
        let at = a.transpose();
        assert!(
            rel_err(&at.matmul_tn(&b), &want) < GEMM_TOL,
            "matmul_tn {m}x{k}x{n}"
        );
        let bt = b.transpose();
        assert!(
            rel_err(&a.matmul_nt(&bt), &want) < GEMM_TOL,
            "matmul_nt {m}x{k}x{n}"
        );
    }
}

#[test]
fn gram_matches_naive_transpose_product() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC1);
    for &(m, k) in &[(1usize, 7usize), (7, 1), (40, 40), (257, 33), (1000, 64)] {
        let a = Mat::random_normal(m, k, &mut rng);
        let want = a.transpose().matmul_naive(&a);
        assert!(rel_err(&a.gram(), &want) < GEMM_TOL, "gram {m}x{k}");
    }
}

/// Checks every SVD contract: reconstruction, orthonormal factors, ordered
/// non-negative singular values, and agreement with exact Jacobi.
fn check_randomized_svd(a: &Mat, cfg: RandomizedSvd) {
    let exact = a.svd_exact();
    let rsvd = a.svd_randomized(cfg);
    let scale = exact.s.first().copied().unwrap_or(0.0).max(1.0);
    // Singular values match exact Jacobi.
    for (j, (se, sr)) in exact.s.iter().zip(&rsvd.s).enumerate() {
        assert!(
            (se - sr).abs() < 1e-8 * scale,
            "{}x{} sigma_{j}: exact {se} vs randomized {sr}",
            a.rows(),
            a.cols()
        );
    }
    // Full-width sketches must reconstruct A.
    if rsvd.s.len() == a.rows().min(a.cols()) {
        let recon = rsvd.reconstruct();
        let rel = recon.sub(a).frobenius_norm() / a.frobenius_norm().max(1.0);
        assert!(rel < 1e-9, "{}x{} reconstruction {rel}", a.rows(), a.cols());
    }
    // Orthonormal factors (restricted to the numerical rank for U).
    let r = rsvd.rank(1e-10);
    let ur = rsvd.u_rank(1e-10);
    assert!(
        ur.gram().sub(&Mat::identity(r)).frobenius_norm() < 1e-8,
        "U columns must be orthonormal"
    );
    let vr = rsvd.v_rank(1e-10);
    assert!(
        vr.gram().sub(&Mat::identity(r)).frobenius_norm() < 1e-8,
        "V columns must be orthonormal"
    );
    // Ordered, non-negative.
    for w in rsvd.s.windows(2) {
        assert!(w[0] >= w[1] - 1e-12, "singular values not sorted");
    }
    assert!(rsvd.s.iter().all(|&x| x >= 0.0));
}

#[test]
fn randomized_svd_conforms_on_adversarial_shapes() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC2);
    for &(m, n) in &[
        (1usize, 1usize),
        (40, 1),
        (1, 40),
        (50, 7),
        (7, 50),
        (300, 20),
        (257, 33),
    ] {
        let a = Mat::random_normal(m, n, &mut rng);
        check_randomized_svd(&a, RandomizedSvd::full());
    }
}

#[test]
fn randomized_svd_conforms_on_rank_deficient_inputs() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC3);
    // Rank-3 matrix embedded in 120x12, plus a zero matrix.
    let left = Mat::random_normal(120, 3, &mut rng);
    let right = Mat::random_normal(3, 12, &mut rng);
    let low_rank = left.matmul(&right);
    check_randomized_svd(&low_rank, RandomizedSvd::full());
    let svd = low_rank.svd_randomized(RandomizedSvd::full());
    assert_eq!(svd.rank(1e-9), 3);

    let zero = Mat::zeros(30, 5);
    let zsvd = zero.svd_randomized(RandomizedSvd::full());
    assert!(zsvd.s.iter().all(|&s| s == 0.0));
    assert_eq!(zsvd.rank(1e-9), 0);
}

#[test]
fn randomized_svd_truncated_tracks_leading_triplets() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC4);
    // Planted geometric spectrum (sigma_j = 2^-j): the leading triplets
    // are well separated, so the truncated sketch must nail them.
    let u = Mat::random_normal(400, 24, &mut rng).orthonormalize();
    let v = Mat::random_normal(24, 24, &mut rng).orthonormalize();
    let mut us = u.clone();
    for j in 0..24 {
        let sigma = 0.5f64.powi(j as i32);
        for i in 0..us.rows() {
            us[(i, j)] *= sigma;
        }
    }
    let a = us.matmul_nt(&v);
    let exact = a.svd_exact();
    let k = 6;
    let trunc = a.svd_randomized(RandomizedSvd::truncated(k));
    assert_eq!(trunc.s.len(), k);
    assert_eq!(trunc.u.shape(), (400, k));
    assert_eq!(trunc.v.shape(), (24, k));
    for j in 0..k {
        let rel = (trunc.s[j] - exact.s[j]).abs() / exact.s[0];
        assert!(rel < 1e-8, "sigma_{j} rel err {rel}");
    }
    // The truncated factors reproduce the best rank-k approximation error.
    let best: f64 = exact.s[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
    let got = trunc.reconstruct().sub(&a).frobenius_norm();
    assert!(
        got < best * (1.0 + 1e-6) + 1e-9,
        "rank-{k} error {got} vs optimal {best}"
    );
}

#[test]
fn randomized_svd_truncated_is_quasi_optimal_on_flat_spectra() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC6);
    // A Gaussian matrix has a flat (Marchenko-Pastur) spectrum — the
    // adversarial case for sketched truncation, where exact value-tracking
    // is not achievable. The HMT guarantee that *is* the contract: the
    // rank-k reconstruction error stays within a small factor of optimal.
    let a = Mat::random_normal(400, 24, &mut rng);
    let exact = a.svd_exact();
    let k = 6;
    let trunc = a.svd_randomized(RandomizedSvd::truncated(k));
    let best: f64 = exact.s[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
    let got = trunc.reconstruct().sub(&a).frobenius_norm();
    assert!(got < 1.5 * best, "rank-{k} error {got} vs optimal {best}");
    // Leading values are still captured to within a few percent.
    for j in 0..k {
        let rel = (trunc.s[j] - exact.s[j]).abs() / exact.s[j];
        assert!(rel < 0.05, "sigma_{j} rel err {rel}");
    }
}

#[test]
fn auto_dispatch_agrees_with_exact_across_the_threshold() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC5);
    // One shape on each side of the randomized-dispatch heuristic.
    for &(m, n) in &[(255usize, 16usize), (256, 64), (1024, 32)] {
        let a = Mat::random_normal(m, n, &mut rng);
        let auto = a.svd_with(SvdMethod::Auto);
        let exact = a.svd_with(SvdMethod::Exact);
        for (sa, se) in auto.s.iter().zip(&exact.s) {
            assert!(
                (sa - se).abs() < 1e-8 * exact.s[0].max(1.0),
                "{m}x{n}: auto {sa} vs exact {se}"
            );
        }
    }
}
