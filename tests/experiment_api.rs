//! Integration tests for the `Experiment` builder: sharding determinism,
//! on-disk pair-cache transparency, row streaming, and task pluggability.

use std::sync::{Arc, Mutex, OnceLock};

use embedstab::downstream::{PairSpec, Task, TaskOutcome};
use embedstab::embeddings::{Algo, Embedding};
use embedstab::pipeline::{
    run_sentiment_grid, Experiment, GridOptions, JsonlSink, Row, Scale, World,
};
use embedstab::quant::Precision;
use proptest::prelude::*;

/// A reduced tiny world shared by every test in this file (2 dims x
/// 2 precisions x 2 seeds = 8 configurations per task).
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut params = Scale::Tiny.params();
        params.dims = vec![4, 8];
        params.precisions = vec![Precision::new(1), Precision::FULL];
        params.seeds = vec![0, 1];
        World::build(&params, 0)
    })
}

fn experiment() -> Experiment<'static> {
    Experiment::new(world()).tasks(["sst2"]).algos([Algo::Mc])
}

/// The unsharded reference rows, computed once.
fn reference_rows() -> &'static Vec<Row> {
    static ROWS: OnceLock<Vec<Row>> = OnceLock::new();
    ROWS.get_or_init(|| experiment().run())
}

/// A sortable, bitwise-exact key for one row.
fn key(r: &Row) -> (String, String, usize, u8, u64, u64, u64, u64) {
    (
        r.task.clone(),
        r.algo.clone(),
        r.dim,
        r.bits,
        r.seed,
        r.disagreement.to_bits(),
        r.quality17.to_bits(),
        r.quality18.to_bits(),
    )
}

fn sorted_keys(rows: &[Row]) -> Vec<(String, String, usize, u8, u64, u64, u64, u64)> {
    let mut keys: Vec<_> = rows.iter().map(key).collect();
    keys.sort();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Sharding is a partition: for every shard count, the union of rows
    /// from shards `0..n` is bitwise identical to the unsharded run.
    #[test]
    fn shard_union_equals_unsharded_run(n in 1usize..=4) {
        let mut union: Vec<Row> = Vec::new();
        for index in 0..n {
            union.extend(experiment().shard(index, n).run());
        }
        prop_assert_eq!(sorted_keys(&union), sorted_keys(reference_rows()));
    }
}

/// A warm cache directory reproduces the cold run bitwise, and the second
/// run actually hits the cache (every pair file already exists).
#[test]
fn warm_cache_reproduces_cold_run_bitwise() {
    let dir = std::env::temp_dir().join(format!("embedstab_expapi_cache_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cold = experiment().cache_dir(&dir).run();
    let n_files = std::fs::read_dir(&dir).expect("cache dir").count();
    assert!(n_files >= 4, "expected cached pair files, found {n_files}");
    let warm = experiment().cache_dir(&dir).run();
    assert_eq!(sorted_keys(&cold), sorted_keys(&warm));
    // And both match the cache-less reference run.
    assert_eq!(sorted_keys(&cold), sorted_keys(reference_rows()));
    std::fs::remove_dir_all(&dir).ok();
}

/// Sharding and caching compose: two shards against a shared warm cache
/// still reproduce the reference rows.
#[test]
fn sharded_runs_share_a_cache() {
    let dir = std::env::temp_dir().join(format!("embedstab_expapi_shard_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut union = experiment().shard(0, 2).cache_dir(&dir).run();
    union.extend(experiment().shard(1, 2).cache_dir(&dir).run());
    assert_eq!(sorted_keys(&union), sorted_keys(reference_rows()));
    std::fs::remove_dir_all(&dir).ok();
}

/// The legacy entry points are wrappers over the builder: same rows, same
/// order.
#[test]
fn legacy_wrappers_match_builder() {
    let w = world();
    let grid =
        embedstab::pipeline::EmbeddingGrid::build(w, &[Algo::Mc], &w.params.dims, &w.params.seeds);
    let legacy = run_sentiment_grid(
        w,
        &grid,
        "sst2",
        &GridOptions {
            algos: vec![Algo::Mc],
            ..Default::default()
        },
    );
    assert_eq!(sorted_keys(&legacy), sorted_keys(reference_rows()));
}

/// Sinks observe every row exactly once; JSONL rows round-trip through
/// the file.
#[test]
fn sinks_stream_all_rows() {
    let dir = std::env::temp_dir().join(format!("embedstab_expapi_sink_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let jsonl = dir.join("rows.jsonl");
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let seen_in_sink = seen.clone();
    let rows = experiment()
        .sink(JsonlSink::new(&jsonl))
        .sink(move |r: &Row| seen_in_sink.lock().unwrap().push(r.task.clone()))
        .run();
    assert_eq!(seen.lock().unwrap().len(), rows.len());
    let from_disk = JsonlSink::load(&jsonl).expect("jsonl readable");
    assert_eq!(sorted_keys(&from_disk), sorted_keys(&rows));
    std::fs::remove_dir_all(&dir).ok();
}

/// A custom `Task` implementation plugs into the same grid loop as the
/// built-ins.
#[test]
fn custom_task_plugs_in() {
    struct NormGapTask;
    impl Task for NormGapTask {
        fn name(&self) -> &str {
            "norm_gap"
        }
        fn train_eval(&self, q17: &Embedding, q18: &Embedding, spec: &PairSpec) -> TaskOutcome {
            let gap = (q17.mean_sq_entry() - q18.mean_sq_entry()).abs();
            TaskOutcome {
                disagreement: gap.min(1.0),
                quality17: spec.seed as f64,
                quality18: 1.0,
            }
        }
    }
    let rows = Experiment::new(world())
        .task(Arc::new(NormGapTask))
        .algos([Algo::Mc])
        .run();
    assert_eq!(rows.len(), 8);
    for r in &rows {
        assert_eq!(r.task, "norm_gap");
        assert_eq!(r.quality17, r.seed as f64, "spec threads through");
    }
}
