//! The paper's core contribution, as a library.
//!
//! *Understanding the Downstream Instability of Word Embeddings*
//! (Leszczynski et al., MLSys 2020) introduces:
//!
//! - **Downstream instability** (Definition 1): the fraction of test
//!   predictions that disagree between models trained on two embeddings —
//!   [`instability`].
//! - The **eigenspace instability measure** (Definition 2, Proposition 1): a
//!   pairwise embedding distance that provably equals the expected
//!   disagreement of linear regression models trained on the two embeddings
//!   — [`measures::EisMeasure`], with the theory in [`theory`].
//! - Four baseline embedding distance measures from the literature
//!   (Section 2.4): the k-NN measure, semantic displacement, the PIP loss,
//!   and the eigenspace overlap score — [`measures`].
//! - **Dimension-precision selection** (Section 4.2, Tables 2-3): using a
//!   measure to pick embedding hyperparameters that minimize downstream
//!   instability without training downstream models — [`selection`].
//! - The **stability-memory rule of thumb** (Section 3.3):
//!   `DI ≈ C_T - 1.3 log2(bits/word)` — [`trend`], fit with [`stats`].
//!
//! # Example
//!
//! ```
//! use embedstab_core::measures::{MeasureSuite, MeasureKind};
//! use embedstab_embeddings::Embedding;
//! use embedstab_linalg::Mat;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let e = Embedding::new(Mat::random_normal(60, 8, &mut rng));
//! let suite = MeasureSuite::new(&e, &e, 3.0, 42);
//! let vals = suite.compute_all(&e, &e);
//! // Identical embeddings: EIS is zero.
//! assert!(vals.get(MeasureKind::Eis) < 1e-9);
//! ```

pub mod instability;
pub mod measures;
pub mod selection;
pub mod stats;
pub mod theory;
pub mod trend;

pub use instability::{disagreement, masked_disagreement};
pub use measures::{MeasureKind, MeasureSuite, MeasureValues};
