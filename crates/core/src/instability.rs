//! Downstream instability (paper Definition 1).

/// Fraction of positions where two prediction sequences disagree
/// (Definition 1 with the zero-one loss). Returns a value in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// use embedstab_core::disagreement;
/// assert_eq!(disagreement(&[1, 2, 3, 4], &[1, 0, 3, 0]), 0.5);
/// ```
pub fn disagreement<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "prediction sequences must have equal length"
    );
    assert!(
        !a.is_empty(),
        "cannot measure disagreement of empty predictions"
    );
    let differing = a.iter().zip(b).filter(|(x, y)| x != y).count();
    differing as f64 / a.len() as f64
}

/// Disagreement restricted to positions where `mask` is true.
///
/// The paper measures NER instability "only over the tokens for which the
/// true value is an entity"; the mask encodes that restriction.
///
/// Returns 0 if the mask selects no positions.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn masked_disagreement<T: PartialEq>(a: &[T], b: &[T], mask: &[bool]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "prediction sequences must have equal length"
    );
    assert_eq!(a.len(), mask.len(), "mask must match prediction length");
    let mut total = 0usize;
    let mut differing = 0usize;
    for ((x, y), &m) in a.iter().zip(b).zip(mask) {
        if m {
            total += 1;
            if x != y {
                differing += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        differing as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_predictions_agree() {
        assert_eq!(disagreement(&[true, false], &[true, false]), 0.0);
    }

    #[test]
    fn fully_different() {
        assert_eq!(disagreement(&[0, 0], &[1, 1]), 1.0);
    }

    #[test]
    fn masked_counts_only_selected() {
        let a = [1, 2, 3, 4];
        let b = [9, 2, 9, 4];
        assert_eq!(
            masked_disagreement(&a, &b, &[true, true, false, false]),
            0.5
        );
        assert_eq!(
            masked_disagreement(&a, &b, &[false, true, false, true]),
            0.0
        );
        assert_eq!(masked_disagreement(&a, &b, &[false; 4]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = disagreement(&[1], &[1, 2]);
    }
}
