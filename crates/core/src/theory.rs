//! Proposition 1 machinery: the exact link between the eigenspace
//! instability measure and expected downstream disagreement of linear
//! regression models.
//!
//! Proposition 1 (paper Appendix B): for full-rank embeddings `X`, `X~` and
//! a random label vector `y` with mean zero and covariance `Sigma`,
//!
//! ```text
//! E_y[ sum_i (f_y(x_i) - f~_y(x~_i))^2 ] / E_y[ ||y||^2 ] = EI_Sigma(X, X~)
//! ```
//!
//! where `f_y` / `f~_y` are the least-squares linear models trained on
//! `(X, y)` / `(X~, y)`. This module provides the dense reference
//! implementation of the measure, OLS training-point predictions, and a
//! Monte-Carlo estimator of the left-hand side, so the identity can be
//! verified numerically (see `prop1_validation` in the bench crate and the
//! integration tests).

use embedstab_linalg::Mat;
use rand::SeedableRng;

/// The projector `U U^T` onto the column space of `m` (dense `n x n`;
/// reference implementation for tests and small inputs).
pub fn projector(m: &Mat) -> Mat {
    let u = m.svd().u_rank(1e-10);
    u.matmul_nt(&u)
}

/// Dense `Sigma = (E E^T)^alpha + (E~ E~^T)^alpha` (reference
/// implementation; forms `n x n` matrices).
pub fn sigma_dense(e17: &Mat, e18: &Mat, alpha: f64) -> Mat {
    gram_power(e17, alpha).add(&gram_power(e18, alpha))
}

/// `(M M^T)^alpha` via the SVD of `M`.
fn gram_power(m: &Mat, alpha: f64) -> Mat {
    let svd = m.svd();
    let rank = svd.rank(1e-10);
    let mut uw = svd.u.truncate_cols(rank);
    for j in 0..rank {
        let w = svd.s[j].powf(alpha); // eigenvalue s^2 raised to alpha/... see below
                                      // (M M^T)^alpha has eigenvalues (s_i^2)^alpha = s_i^{2 alpha}; we
                                      // split as (s^alpha) * (s^alpha) across the two factors.
        for i in 0..uw.rows() {
            uw[(i, j)] *= w;
        }
    }
    uw.matmul_nt(&uw)
}

/// The dense Definition-2 eigenspace instability
/// `tr((P + P~ - 2 P~ P) Sigma) / tr(Sigma)` with explicit projectors.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `tr(Sigma) <= 0`.
pub fn eis_dense(x: &Mat, y: &Mat, sigma: &Mat) -> f64 {
    assert_eq!(x.rows(), y.rows(), "embeddings must share a vocabulary");
    assert_eq!(sigma.rows(), x.rows(), "Sigma must be n x n");
    let p = projector(x);
    let pt = projector(y);
    let combo = p.add(&pt).sub(&pt.matmul(&p).scale(2.0));
    let ts = sigma.trace();
    assert!(ts > 0.0, "Sigma must have positive trace");
    combo.matmul(sigma).trace() / ts
}

/// Predictions of the least-squares linear model trained on `(x, y)`,
/// evaluated at the training points: `X w* = U U^T y` (paper footnote 7).
///
/// # Panics
///
/// Panics if `y.len() != x.rows()`.
pub fn ols_train_predictions(x: &Mat, y: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), x.rows(), "label vector length must equal rows");
    let u = x.svd().u_rank(1e-10);
    let uty = u.matvec_t(y);
    u.matvec(&uty)
}

/// A factored label covariance `Sigma = Z Z^T`, supporting exact sampling
/// of `y ~ (0, Sigma)` without a Cholesky factorization (which would fail
/// for the rank-deficient `Sigma` arising from low-rank references).
#[derive(Clone, Debug)]
pub struct SigmaFactor {
    z: Mat,
}

impl SigmaFactor {
    /// Builds the factor for `Sigma = (E E^T)^alpha + (E~ E~^T)^alpha`:
    /// `Z = [U diag(s^alpha) | U~ diag(s~^alpha)]`.
    pub fn from_references(e17: &Mat, e18: &Mat, alpha: f64) -> Self {
        let a = weighted_u(e17, alpha);
        let b = weighted_u(e18, alpha);
        let mut z = Mat::zeros(a.rows(), a.cols() + b.cols());
        for i in 0..a.rows() {
            z.row_mut(i)[..a.cols()].copy_from_slice(a.row(i));
            z.row_mut(i)[a.cols()..].copy_from_slice(b.row(i));
        }
        SigmaFactor { z }
    }

    /// The dense `Sigma` (tests only).
    pub fn dense(&self) -> Mat {
        self.z.matmul_nt(&self.z)
    }

    /// `tr(Sigma)`.
    pub fn trace(&self) -> f64 {
        self.z.frobenius_norm_sq()
    }

    /// Samples one label vector `y = Z g`, `g ~ N(0, I)`.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> Vec<f64> {
        let g = Mat::random_normal(self.z.cols(), 1, rng);
        self.z.matvec(g.col(0).as_slice())
    }
}

fn weighted_u(m: &Mat, alpha: f64) -> Mat {
    let svd = m.svd();
    let rank = svd.rank(1e-10);
    let mut u = svd.u.truncate_cols(rank);
    for j in 0..rank {
        let w = svd.s[j].powf(alpha);
        for i in 0..u.rows() {
            u[(i, j)] *= w;
        }
    }
    u
}

/// Monte-Carlo estimate of the left-hand side of Proposition 1:
/// draws `samples` label vectors `y ~ (0, Sigma)`, trains the two OLS
/// models, and returns
/// `sum_t ||P y_t - P~ y_t||^2 / sum_t ||y_t||^2`.
///
/// By Proposition 1 this converges to `EI_Sigma(X, X~)` as `samples` grows.
///
/// # Panics
///
/// Panics if `samples` is zero or shapes are inconsistent.
pub fn monte_carlo_disagreement(
    x: &Mat,
    y_emb: &Mat,
    sigma: &SigmaFactor,
    samples: usize,
    seed: u64,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    assert_eq!(x.rows(), y_emb.rows(), "embeddings must share a vocabulary");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let ux = x.svd().u_rank(1e-10);
    let uy = y_emb.svd().u_rank(1e-10);
    let mut num = 0.0;
    let mut den = 0.0;
    for _ in 0..samples {
        let label = sigma.sample(&mut rng);
        let px = ux.matvec(&ux.matvec_t(&label));
        let py = uy.matvec(&uy.matvec_t(&label));
        num += px
            .iter()
            .zip(&py)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>();
        den += label.iter().map(|v| v * v).sum::<f64>();
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(n: usize, d: usize, seed: u64) -> Mat {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Mat::random_normal(n, d, &mut rng)
    }

    #[test]
    fn projector_is_idempotent_and_symmetric() {
        let x = rand_mat(15, 4, 0);
        let p = projector(&x);
        assert!(p.matmul(&p).sub(&p).frobenius_norm() < 1e-8);
        assert!(p.sub(&p.transpose()).frobenius_norm() < 1e-9);
        assert!((p.trace() - 4.0).abs() < 1e-8, "trace = rank");
    }

    #[test]
    fn ols_predictions_match_normal_equations() {
        let x = rand_mat(20, 5, 1);
        let y = rand_mat(20, 1, 2).into_vec();
        let via_proj = ols_train_predictions(&x, &y);
        let w =
            embedstab_linalg::lstsq(&x, &Mat::from_vec(20, 1, y.clone()), 0.0).expect("full rank");
        let via_w = x.matmul(&w);
        for i in 0..20 {
            assert!((via_proj[i] - via_w[(i, 0)]).abs() < 1e-7);
        }
    }

    #[test]
    fn sigma_factor_matches_dense() {
        let e17 = rand_mat(18, 4, 3);
        let e18 = rand_mat(18, 3, 4);
        let f = SigmaFactor::from_references(&e17, &e18, 2.0);
        let dense = sigma_dense(&e17, &e18, 2.0);
        assert!(f.dense().sub(&dense).frobenius_norm() / dense.frobenius_norm() < 1e-9);
        assert!((f.trace() - dense.trace()).abs() < 1e-7);
    }

    #[test]
    fn gram_power_one_is_gram() {
        let e = rand_mat(12, 3, 5);
        let g = e.matmul_nt(&e);
        assert!(gram_power(&e, 1.0).sub(&g).frobenius_norm() / g.frobenius_norm() < 1e-9);
    }

    /// Proposition 1, numerically: the Monte-Carlo expected disagreement of
    /// OLS model pairs equals the eigenspace instability measure.
    #[test]
    fn proposition_1_holds() {
        let x = rand_mat(30, 5, 6);
        let y = rand_mat(30, 7, 7);
        let e17 = rand_mat(30, 8, 8);
        let e18 = rand_mat(30, 8, 9);
        let alpha = 1.5;
        let sigma = SigmaFactor::from_references(&e17, &e18, alpha);
        let exact = eis_dense(&x, &y, &sigma.dense());
        let mc = monte_carlo_disagreement(&x, &y, &sigma, 4000, 0);
        assert!(
            (exact - mc).abs() < 0.02,
            "Proposition 1 violated: EIS {exact:.4} vs Monte-Carlo {mc:.4}"
        );
    }
}
