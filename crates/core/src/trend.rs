//! The stability-memory rule of thumb (paper Section 3.3, Appendix C.4).
//!
//! The paper fits `DI_T ≈ C_T - 1.3 * log2(M)` across tasks and algorithms
//! for memory budgets below 10^3 bits/word, and reports that doubling
//! memory cuts disagreement by ~1.3% absolute (5-37% relative). This module
//! packages that fit over experiment observations.

use crate::stats::{linear_log_fit, LinearLogFit, TrendPoint};

/// One experiment observation feeding the rule-of-thumb fit.
#[derive(Clone, Debug)]
pub struct Observation {
    /// A `(task, algorithm)` group label; each distinct label gets its own
    /// intercept, as in Appendix C.4.
    pub group: String,
    /// Memory in bits/word.
    pub memory_bits: f64,
    /// Downstream disagreement, in percent.
    pub disagreement_pct: f64,
}

/// The fitted rule of thumb.
#[derive(Clone, Debug)]
pub struct RuleOfThumb {
    /// Absolute drop in percent disagreement per doubling of memory
    /// (the paper reports ≈ 1.3).
    pub drop_per_doubling: f64,
    /// Group labels, in intercept order.
    pub groups: Vec<String>,
    /// Per-group intercepts `C_T`.
    pub intercepts: Vec<f64>,
    /// Number of observations used.
    pub n_points: usize,
}

impl RuleOfThumb {
    /// Predicted disagreement (percent) for a group at a given memory.
    ///
    /// # Panics
    ///
    /// Panics if the group is unknown or memory is not positive.
    pub fn predict(&self, group: &str, memory_bits: f64) -> f64 {
        assert!(memory_bits > 0.0, "memory must be positive");
        let idx = self
            .groups
            .iter()
            .position(|g| g == group)
            .expect("unknown group label");
        self.intercepts[idx] - self.drop_per_doubling * memory_bits.log2()
    }

    /// The relative reduction range implied by a 1-doubling drop, at the
    /// given extreme instability values (the paper computes 5%-37% from
    /// 25.9% and 3.5%).
    pub fn relative_reduction(&self, instability_pct: f64) -> f64 {
        self.drop_per_doubling / instability_pct
    }
}

/// Fits the rule of thumb over observations, keeping only points with
/// `memory_bits <= max_memory_bits` (the paper uses 10^3, after which the
/// instability plateaus).
///
/// Returns `None` if no observations survive the filter.
pub fn fit_rule_of_thumb(
    observations: &[Observation],
    max_memory_bits: f64,
) -> Option<RuleOfThumb> {
    let kept: Vec<&Observation> = observations
        .iter()
        .filter(|o| o.memory_bits <= max_memory_bits)
        .collect();
    if kept.is_empty() {
        return None;
    }
    let mut groups: Vec<String> = Vec::new();
    let mut points: Vec<TrendPoint> = Vec::with_capacity(kept.len());
    for o in &kept {
        let task = match groups.iter().position(|g| g == &o.group) {
            Some(i) => i,
            None => {
                groups.push(o.group.clone());
                groups.len() - 1
            }
        };
        points.push(TrendPoint {
            task,
            x: o.memory_bits,
            y: o.disagreement_pct,
        });
    }
    let LinearLogFit { slope, intercepts } = linear_log_fit(&points, groups.len())?;
    Some(RuleOfThumb {
        drop_per_doubling: slope,
        groups,
        intercepts,
        n_points: kept.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(group: &str, memory: f64, di: f64) -> Observation {
        Observation {
            group: group.to_string(),
            memory_bits: memory,
            disagreement_pct: di,
        }
    }

    #[test]
    fn recovers_paper_style_trend() {
        // Two task groups obeying DI = C - 1.3 log2(M).
        let mut data = Vec::new();
        for &m in &[25.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
            data.push(obs("sst2/cbow", m, 20.0 - 1.3 * m.log2()));
            data.push(obs("ner/mc", m, 14.0 - 1.3 * m.log2()));
        }
        let fit = fit_rule_of_thumb(&data, 1000.0).expect("fit");
        assert!((fit.drop_per_doubling - 1.3).abs() < 1e-6);
        assert!((fit.predict("sst2/cbow", 100.0) - (20.0 - 1.3 * 100.0f64.log2())).abs() < 1e-6);
        assert_eq!(fit.n_points, 12);
    }

    #[test]
    fn memory_filter_applies() {
        let mut data = Vec::new();
        for &m in &[100.0, 200.0, 400.0] {
            data.push(obs("t", m, 10.0 - m.log2()));
        }
        // Plateau points beyond the cutoff would bias the slope; exclude.
        data.push(obs("t", 4000.0, 10.0 - 400.0f64.log2()));
        let fit = fit_rule_of_thumb(&data, 1000.0).expect("fit");
        assert_eq!(fit.n_points, 3);
        assert!((fit.drop_per_doubling - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relative_reduction_matches_paper_arithmetic() {
        let fit = RuleOfThumb {
            drop_per_doubling: 1.3,
            groups: vec!["g".into()],
            intercepts: vec![0.0],
            n_points: 1,
        };
        // Paper: 1.3/3.5 ~ 0.37 and 1.3/25.9 ~ 0.05.
        assert!((fit.relative_reduction(3.5) - 0.37).abs() < 0.005);
        assert!((fit.relative_reduction(25.9) - 0.05).abs() < 0.001);
    }

    #[test]
    fn empty_after_filter_is_none() {
        assert!(fit_rule_of_thumb(&[obs("t", 2000.0, 1.0)], 1000.0).is_none());
    }
}
