//! Dimension-precision selection (paper Section 4.2, Tables 2, 3, 10, 11).
//!
//! Given per-configuration measure values and ground-truth downstream
//! instabilities, these routines score how well a measure *selects* stable
//! configurations:
//!
//! - [`pairwise_selection`] — Table 2 / Table 10: among all pairs of
//!   configurations, how often does picking the lower-measure one pick the
//!   lower-instability one?
//! - [`budget_selection`] — Table 3 / Table 11: within each fixed memory
//!   budget, how close is the measure's pick to the oracle's?
//! - [`budget_baseline`] — the naive high-precision / low-precision
//!   baselines of Table 3.

/// One embedding-pair configuration: its hyperparameters, the measure value
/// predicted from the embeddings alone, and the observed downstream
/// instability.
#[derive(Clone, Copy, Debug)]
pub struct ConfigPoint {
    /// Embedding dimension.
    pub dim: usize,
    /// Precision in bits.
    pub bits: u8,
    /// The embedding distance measure value (higher = predicted less
    /// stable).
    pub measure: f64,
    /// Ground-truth downstream instability (e.g. fraction disagreement).
    pub instability: f64,
}

impl ConfigPoint {
    /// Memory footprint in bits/word.
    pub fn memory(&self) -> u64 {
        self.dim as u64 * self.bits as u64
    }
}

/// Result of the pairwise selection evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairwiseReport {
    /// Fraction of configuration pairs where the measure picked the less
    /// stable configuration (Table 2).
    pub error_rate: f64,
    /// Worst absolute instability increase incurred by a wrong pick
    /// (Table 10); same units as `ConfigPoint::instability`.
    pub worst_case_increase: f64,
    /// Number of pairs evaluated.
    pub pairs: usize,
}

/// Evaluates a measure as a pairwise selector (paper Section 5.2, first
/// setting): over all unordered pairs of distinct configurations, pick the
/// one with the lower measure and check it has the lower instability.
///
/// Ties: equal instabilities cannot be picked wrongly and are skipped;
/// equal measure values count as half an error.
///
/// Returns a zeroed report if fewer than two configurations are given.
pub fn pairwise_selection(points: &[ConfigPoint]) -> PairwiseReport {
    let mut errors = 0.0;
    let mut pairs = 0usize;
    let mut worst: f64 = 0.0;
    for (a_idx, a) in points.iter().enumerate() {
        for b in &points[a_idx + 1..] {
            if a.instability == b.instability {
                continue;
            }
            pairs += 1;
            let (chosen, other) = if a.measure < b.measure {
                (a, b)
            } else if b.measure < a.measure {
                (b, a)
            } else {
                errors += 0.5;
                worst = worst.max((a.instability - b.instability).abs() * 0.5);
                continue;
            };
            if chosen.instability > other.instability {
                errors += 1.0;
                worst = worst.max(chosen.instability - other.instability);
            }
        }
    }
    if pairs == 0 {
        return PairwiseReport {
            error_rate: 0.0,
            worst_case_increase: 0.0,
            pairs: 0,
        };
    }
    PairwiseReport {
        error_rate: errors / pairs as f64,
        worst_case_increase: worst,
        pairs,
    }
}

/// The candidates of `points` that sit exactly on the `budget` bits/word
/// line (`dim * bits == budget`), in input order.
///
/// This is the candidate set both the Table 3 evaluation and the serving
/// layer's per-tenant configuration pick rank — one shared definition, so
/// an operator picking a configuration and the offline evaluation of that
/// pick can never disagree about which configurations were eligible.
pub fn candidates_in_budget(points: &[ConfigPoint], budget: u64) -> Vec<ConfigPoint> {
    points
        .iter()
        .filter(|p| p.memory() == budget)
        .copied()
        .collect()
}

/// The candidate a measure ranks most stable: the one with the lowest
/// measure value. Returns `None` for an empty candidate set.
///
/// This is the single candidate-ranking path shared by
/// [`budget_selection`], the reproduction binaries, and the serving
/// layer's tenant registry.
///
/// NaN-valued measures order last ([`crate::stats::cmp_nan_last`]), so a
/// candidate with a NaN measure is only picked when every candidate's
/// measure is NaN — one degenerate configuration must not panic (or win)
/// a selection sweep.
pub fn pick_lowest_measure<'a>(
    points: impl IntoIterator<Item = &'a ConfigPoint>,
) -> Option<&'a ConfigPoint> {
    points
        .into_iter()
        .min_by(|a, b| crate::stats::cmp_nan_last(a.measure, b.measure))
}

/// The oracle pick: the candidate with the lowest *observed* downstream
/// instability. Returns `None` for an empty candidate set. NaN
/// instabilities order last, as in [`pick_lowest_measure`].
pub fn pick_oracle<'a>(
    points: impl IntoIterator<Item = &'a ConfigPoint>,
) -> Option<&'a ConfigPoint> {
    points
        .into_iter()
        .min_by(|a, b| crate::stats::cmp_nan_last(a.instability, b.instability))
}

/// Result of the memory-budget selection evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BudgetReport {
    /// Mean absolute instability gap to the per-budget oracle (Table 3).
    pub mean_gap: f64,
    /// Worst per-budget gap (Table 11).
    pub worst_gap: f64,
    /// Number of budgets with at least two candidate configurations.
    pub budgets: usize,
}

/// Naive budget baselines from Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetBaseline {
    /// Pick the candidate with the highest precision in the budget.
    HighPrecision,
    /// Pick the candidate with the lowest precision in the budget.
    LowPrecision,
}

/// Evaluates a measure under fixed memory budgets (paper Section 5.2,
/// second setting): group configurations by `dim * bits`, and within each
/// group of two or more candidates pick the one with the lowest measure;
/// the score is the instability gap to the group's oracle (most stable)
/// candidate, averaged (and maxed) over budgets.
pub fn budget_selection(points: &[ConfigPoint]) -> BudgetReport {
    budget_eval(points, |group| {
        pick_lowest_measure(group.iter().copied()).expect("group is non-empty")
    })
}

/// Evaluates a naive baseline under fixed memory budgets.
pub fn budget_baseline(points: &[ConfigPoint], baseline: BudgetBaseline) -> BudgetReport {
    budget_eval(points, move |group| match baseline {
        BudgetBaseline::HighPrecision => group
            .iter()
            .max_by_key(|p| p.bits)
            .expect("group is non-empty"),
        BudgetBaseline::LowPrecision => group
            .iter()
            .min_by_key(|p| p.bits)
            .expect("group is non-empty"),
    })
}

fn budget_eval<'a, F>(points: &'a [ConfigPoint], pick: F) -> BudgetReport
where
    F: Fn(&[&'a ConfigPoint]) -> &'a ConfigPoint,
{
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<u64, Vec<&ConfigPoint>> = BTreeMap::new();
    for p in points {
        groups.entry(p.memory()).or_default().push(p);
    }
    let mut gaps = Vec::new();
    for (_, group) in groups {
        if group.len() < 2 {
            continue;
        }
        let oracle = group
            .iter()
            .map(|p| p.instability)
            .fold(f64::INFINITY, f64::min);
        let chosen = pick(&group);
        gaps.push(chosen.instability - oracle);
    }
    if gaps.is_empty() {
        return BudgetReport {
            mean_gap: 0.0,
            worst_gap: 0.0,
            budgets: 0,
        };
    }
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let worst_gap = gaps.iter().cloned().fold(0.0f64, f64::max);
    BudgetReport {
        mean_gap,
        worst_gap,
        budgets: gaps.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(dim: usize, bits: u8, measure: f64, instability: f64) -> ConfigPoint {
        ConfigPoint {
            dim,
            bits,
            measure,
            instability,
        }
    }

    #[test]
    fn perfect_measure_has_zero_error() {
        // Measure ordered exactly like instability.
        let points = vec![
            pt(25, 32, 0.1, 0.05),
            pt(50, 16, 0.2, 0.07),
            pt(100, 8, 0.3, 0.09),
            pt(200, 4, 0.4, 0.11),
        ];
        let rep = pairwise_selection(&points);
        assert_eq!(rep.error_rate, 0.0);
        assert_eq!(rep.worst_case_increase, 0.0);
        assert_eq!(rep.pairs, 6);
    }

    #[test]
    fn inverted_measure_has_full_error() {
        let points = vec![pt(25, 32, 0.9, 0.05), pt(50, 16, 0.1, 0.30)];
        let rep = pairwise_selection(&points);
        assert_eq!(rep.error_rate, 1.0);
        assert!((rep.worst_case_increase - 0.25).abs() < 1e-12);
    }

    #[test]
    fn nan_candidates_never_win_a_pick() {
        // A runtime NaN is a *negative* NaN on x86-64, which total_cmp
        // orders before -inf — the picks must still prefer any finite
        // candidate (and must not panic, as the old partial_cmp did).
        let runtime_nan: f64 = 0.0f64 / 0.0;
        let points = vec![
            pt(25, 32, runtime_nan, runtime_nan),
            pt(50, 16, 0.4, 0.11),
            pt(100, 8, 0.2, 0.07),
        ];
        assert_eq!(pick_lowest_measure(&points).expect("non-empty").dim, 100);
        assert_eq!(pick_oracle(&points).expect("non-empty").dim, 100);
        // All-NaN still returns a candidate rather than panicking.
        let all_nan = vec![pt(25, 32, runtime_nan, runtime_nan)];
        assert_eq!(pick_lowest_measure(&all_nan).expect("non-empty").dim, 25);
    }

    #[test]
    fn measure_ties_count_half() {
        let points = vec![pt(25, 32, 0.5, 0.05), pt(50, 16, 0.5, 0.10)];
        let rep = pairwise_selection(&points);
        assert_eq!(rep.error_rate, 0.5);
    }

    #[test]
    fn equal_instability_pairs_skipped() {
        let points = vec![pt(25, 32, 0.1, 0.05), pt(50, 16, 0.9, 0.05)];
        let rep = pairwise_selection(&points);
        assert_eq!(rep.pairs, 0);
        assert_eq!(rep.error_rate, 0.0);
    }

    #[test]
    fn budget_selection_oracle_gap() {
        // Budget 800: (100, 8) vs (25, 32) vs (200, 4); oracle instability
        // 0.04; a measure that picks (100,8) incurs gap 0.02.
        let points = vec![
            pt(100, 8, 0.2, 0.06),
            pt(25, 32, 0.5, 0.04),
            pt(200, 4, 0.9, 0.10),
            // Budget 1600 group.
            pt(100, 16, 0.1, 0.03),
            pt(50, 32, 0.3, 0.05),
            // Singleton budget: ignored.
            pt(400, 1, 0.7, 0.20),
        ];
        let rep = budget_selection(&points);
        assert_eq!(rep.budgets, 2);
        // Budget 800 gap 0.02; budget 1600 gap 0 (picked oracle).
        assert!((rep.mean_gap - 0.01).abs() < 1e-12);
        assert!((rep.worst_gap - 0.02).abs() < 1e-12);
    }

    #[test]
    fn budget_baselines() {
        let points = vec![
            pt(100, 8, 0.0, 0.06),
            pt(25, 32, 0.0, 0.04),
            pt(200, 4, 0.0, 0.10),
        ];
        let high = budget_baseline(&points, BudgetBaseline::HighPrecision);
        assert!(
            (high.mean_gap - 0.0).abs() < 1e-12,
            "32-bit pick is the oracle here"
        );
        let low = budget_baseline(&points, BudgetBaseline::LowPrecision);
        assert!((low.mean_gap - 0.06).abs() < 1e-12);
    }

    #[test]
    fn budget_candidates_and_picks() {
        let points = vec![
            pt(100, 8, 0.2, 0.06),
            pt(25, 32, 0.5, 0.04),
            pt(200, 4, 0.9, 0.10),
            pt(100, 16, 0.1, 0.03), // off the 800-bit line
        ];
        let cands = candidates_in_budget(&points, 800);
        assert_eq!(cands.len(), 3);
        let picked = pick_lowest_measure(&cands).expect("non-empty");
        assert_eq!((picked.dim, picked.bits), (100, 8));
        let oracle = pick_oracle(&cands).expect("non-empty");
        assert_eq!((oracle.dim, oracle.bits), (25, 32));
        // The shared ranking path is exactly what budget_selection scores:
        // the gap of the pick above equals the single-budget mean gap.
        let rep = budget_selection(&cands);
        assert_eq!(rep.budgets, 1);
        assert!((rep.mean_gap - (picked.instability - oracle.instability)).abs() < 1e-15);
        assert!(pick_lowest_measure(&[]).is_none());
        assert!(pick_oracle(&[]).is_none());
    }

    #[test]
    fn empty_input_is_zeroed() {
        let rep = pairwise_selection(&[]);
        assert_eq!(rep.pairs, 0);
        let b = budget_selection(&[]);
        assert_eq!(b.budgets, 0);
    }
}
