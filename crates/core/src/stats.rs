//! Statistics used throughout the evaluation: correlations, summary
//! statistics, and multi-task linear-log regression (paper Appendix C.4).

use embedstab_linalg::{lstsq, Mat};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Pearson correlation coefficient; 0 if either input is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal lengths");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let (dx, dy) = (x - mx, y - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// A total order over `f64` that places **every** NaN after every number.
///
/// `f64::total_cmp` alone is not enough for "lowest value wins" scans:
/// runtime-computed NaNs (`0.0 / 0.0`, `inf - inf`) carry the sign bit on
/// x86-64, and `total_cmp` orders negative NaNs *before* `-inf` — so a
/// degenerate value would silently win a `min_by`. Here NaNs of either
/// sign compare greater than all numbers (and equal to each other).
pub fn cmp_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// The descending companion of [`cmp_nan_last`]: larger numbers first,
/// NaNs of either sign still last (a plain reversed comparison would move
/// them to the front).
pub fn cmp_desc_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Average ranks (1-based), with ties receiving the mean of their rank
/// range — the standard tie handling for Spearman correlation.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    // One NaN observation must not panic a whole analysis run; NaNs sort
    // last (by explicit construction — see cmp_nan_last on why total_cmp
    // alone would put runtime NaNs first) and form no tie group, so the
    // finite values' ranks are unchanged.
    order.sort_by(|&i, &j| cmp_nan_last(xs[i], xs[j]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j are tied; average rank is the midpoint (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation (tie-aware), used by the paper to score how
/// well each embedding distance measure predicts downstream disagreement
/// (Table 1).
///
/// # Panics
///
/// Panics if the slices have different lengths or contain NaN.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman requires equal lengths");
    pearson(&average_ranks(xs), &average_ranks(ys))
}

/// One observation for the multi-task linear-log fit: a task id, a memory
/// (or dimension/precision) value, and an observed instability.
#[derive(Clone, Copy, Debug)]
pub struct TrendPoint {
    /// Which task (or task-group) this point belongss to; each task gets
    /// its own intercept.
    pub task: usize,
    /// The x value whose log2 is regressed on (e.g. bits/word).
    pub x: f64,
    /// The observed instability (e.g. percent disagreement).
    pub y: f64,
}

/// Result of the linear-log fit `y ≈ intercept_task - slope * log2(x)`.
#[derive(Clone, Debug)]
pub struct LinearLogFit {
    /// The shared slope; positive when `y` decreases as `x` doubles.
    /// Doubling `x` reduces `y` by `slope` (the paper reports 1.3% for
    /// memory).
    pub slope: f64,
    /// Per-task intercepts `C_T`.
    pub intercepts: Vec<f64>,
}

/// Fits the paper's rule-of-thumb model (Appendix C.4): one shared
/// coefficient on `log2(x)` plus a per-task intercept, by least squares.
///
/// Returns `None` if there are no points or the design is degenerate.
///
/// # Panics
///
/// Panics if any `x` is not strictly positive or a task id is out of range.
pub fn linear_log_fit(points: &[TrendPoint], n_tasks: usize) -> Option<LinearLogFit> {
    if points.is_empty() || n_tasks == 0 {
        return None;
    }
    let rows = points.len();
    let cols = 1 + n_tasks;
    let mut design = Mat::zeros(rows, cols);
    let mut target = Mat::zeros(rows, 1);
    for (r, p) in points.iter().enumerate() {
        assert!(p.x > 0.0, "x values must be positive for log2");
        assert!(p.task < n_tasks, "task id out of range");
        design[(r, 0)] = p.x.log2();
        design[(r, 1 + p.task)] = 1.0;
        target[(r, 0)] = p.y;
    }
    let beta = lstsq(&design, &target, 1e-9)?;
    let slope = -beta[(0, 0)];
    let intercepts = (0..n_tasks).map(|t| beta[(1 + t, 0)]).collect();
    Some(LinearLogFit { slope, intercepts })
}

/// A deterministic log-linear latency histogram for serving benchmarks:
/// microsecond-scale values land in buckets whose width doubles every
/// [`LatencyHistogram::SUB_BUCKETS`] steps, giving a bounded relative
/// quantile error (~1/SUB_BUCKETS) with a few hundred fixed buckets and
/// no allocation per record.
///
/// Unlike a sorted-sample quantile, recording order never changes any
/// reported quantile, and two histograms [`merge`](Self::merge) by bucket
/// addition — so per-thread load-generator histograms combine into one
/// process-wide summary without sharing state on the hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Buckets per power of two; bounds the relative quantile error.
    pub const SUB_BUCKETS: u64 = 16;
    /// log2 of the largest distinguishable value (~64-bit range).
    const MAX_EXP: u64 = 40;

    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        let buckets = (Self::SUB_BUCKETS * Self::MAX_EXP + 1) as usize;
        LatencyHistogram {
            counts: vec![0; buckets],
            total: 0,
        }
    }

    fn bucket_of(value_us: u64) -> usize {
        // Values below SUB_BUCKETS get exact buckets; above, the bucket is
        // (exponent, mantissa-prefix), log-linear like HDR histograms.
        if value_us < Self::SUB_BUCKETS {
            return value_us as usize;
        }
        let exp = 63 - value_us.leading_zeros() as u64;
        let exp = exp.min(Self::MAX_EXP - 1);
        let sub = (value_us >> (exp.saturating_sub(4))) - Self::SUB_BUCKETS;
        let idx = exp * Self::SUB_BUCKETS + sub.min(Self::SUB_BUCKETS - 1);
        (idx as usize).min(Self::SUB_BUCKETS as usize * Self::MAX_EXP as usize)
    }

    /// The lower edge (µs) of the bucket holding index `idx` — what the
    /// quantiles report, so reported values are always achievable inputs.
    fn bucket_floor(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < Self::SUB_BUCKETS {
            return idx;
        }
        let exp = idx / Self::SUB_BUCKETS;
        let sub = idx % Self::SUB_BUCKETS;
        (Self::SUB_BUCKETS + sub) << exp.saturating_sub(4)
    }

    /// Records one latency in microseconds.
    pub fn record(&mut self, value_us: u64) {
        self.counts[Self::bucket_of(value_us)] += 1;
        self.total += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Adds every recorded value of `other` into `self` (bucket-wise, so
    /// merge order is irrelevant to every quantile).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// The value (µs, bucket lower edge) at quantile `q` in `[0, 1]`:
    /// the smallest bucket such that at least `ceil(q * count)` recorded
    /// values are at or below it. Returns `None` for an empty histogram
    /// or a `q` outside `[0, 1]` (including NaN).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(idx));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 0.01);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&x, &[2.0, 4.0, 6.0, 8.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[8.0, 6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn nan_orderings_put_every_nan_last() {
        // Runtime NaNs carry the sign bit on x86-64, and total_cmp alone
        // would order them before -inf; the helpers must not.
        let runtime_nan: f64 = f64::INFINITY - f64::INFINITY;
        assert!(runtime_nan.is_nan());
        for nan in [runtime_nan, f64::NAN, -f64::NAN] {
            assert_eq!(cmp_nan_last(nan, -1.0), std::cmp::Ordering::Greater);
            assert_eq!(cmp_nan_last(-1.0, nan), std::cmp::Ordering::Less);
            assert_eq!(cmp_desc_nan_last(nan, 1.0), std::cmp::Ordering::Greater);
            assert_eq!(cmp_desc_nan_last(1.0, nan), std::cmp::Ordering::Less);
            assert_eq!(cmp_nan_last(nan, runtime_nan), std::cmp::Ordering::Equal);
        }
        assert_eq!(cmp_nan_last(1.0, 2.0), std::cmp::Ordering::Less);
        assert_eq!(cmp_desc_nan_last(1.0, 2.0), std::cmp::Ordering::Greater);
    }

    #[test]
    fn ranks_tolerate_a_nan_without_moving_finite_ranks() {
        let runtime_nan: f64 = 0.0f64 / 0.0;
        let r = average_ranks(&[10.0, runtime_nan, 20.0, 20.0, 30.0]);
        // Finite values keep exactly the ranks they'd have alone; the NaN
        // takes the last rank.
        assert_eq!(r[0], 1.0);
        assert_eq!(r[2], 2.5);
        assert_eq!(r[3], 2.5);
        assert_eq!(r[4], 4.0);
        assert_eq!(r[1], 5.0);
    }

    #[test]
    fn spearman_invariant_under_monotone_transform() {
        let x = [0.1, 0.5, 0.2, 0.9, 0.3];
        let y = [1.0, 25.0, 4.0, 81.0, 9.0]; // y = (10x)^2, monotone
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((spearman(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_known_value() {
        // Classic example with one swapped pair.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 2.0, 3.0, 5.0, 4.0];
        assert!((spearman(&x, &y) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn linear_log_fit_recovers_planted_trend() {
        // y = C_t - 1.3 log2(x) with two tasks.
        let mut points = Vec::new();
        for (task, c) in [(0usize, 10.0), (1usize, 20.0)] {
            for &x in &[32.0, 64.0, 128.0, 256.0, 512.0] {
                points.push(TrendPoint {
                    task,
                    x,
                    y: c - 1.3 * x.log2(),
                });
            }
        }
        let fit = linear_log_fit(&points, 2).expect("solvable");
        assert!((fit.slope - 1.3).abs() < 1e-6, "slope {}", fit.slope);
        assert!((fit.intercepts[0] - 10.0).abs() < 1e-6);
        assert!((fit.intercepts[1] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn linear_log_fit_with_noise_is_close() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut points = Vec::new();
        for &x in &[16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0] {
            for _ in 0..5 {
                let noise: f64 = rng.random_range(-0.3..0.3);
                points.push(TrendPoint {
                    task: 0,
                    x,
                    y: 15.0 - 2.0 * x.log2() + noise,
                });
            }
        }
        let fit = linear_log_fit(&points, 1).expect("solvable");
        assert!((fit.slope - 2.0).abs() < 0.15, "slope {}", fit.slope);
    }

    #[test]
    fn degenerate_fit_is_none() {
        assert!(linear_log_fit(&[], 1).is_none());
    }

    #[test]
    fn histogram_quantiles_are_order_independent_and_bounded() {
        let mut fwd = LatencyHistogram::new();
        let mut rev = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            fwd.record(v);
        }
        for v in (1..=10_000u64).rev() {
            rev.record(v);
        }
        assert_eq!(fwd, rev, "recording order must not matter");
        assert_eq!(fwd.count(), 10_000);
        // Uniform 1..=10_000: each quantile lands within the log-linear
        // relative error (~1/SUB_BUCKETS, doubled for bucket-edge slack).
        for (q, expected) in [(0.5, 5_000.0), (0.99, 9_900.0), (0.999, 9_990.0)] {
            let got = fwd.quantile(q).expect("non-empty") as f64;
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.15, "q={q}: got {got}, expected ~{expected}");
        }
        // Extremes are exact bucket floors.
        assert_eq!(fwd.quantile(0.0), Some(1));
        assert!(fwd.quantile(1.0).expect("max") >= 9_216);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 15, 15, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
        assert_eq!(h.quantile(0.5), Some(3));
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for v in [3u64, 90, 1_000, 77_777] {
            a.record(v);
            combined.record(v);
        }
        for v in [5u64, 42, 123_456_789] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.count(), 7);
    }

    #[test]
    fn histogram_empty_and_bad_quantiles_are_none() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile(0.5), None);
        let mut h = LatencyHistogram::new();
        h.record(7);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(f64::NAN), None);
        // Huge values clamp into the top bucket instead of overflowing.
        h.record(u64::MAX);
        assert!(h.quantile(1.0).is_some());
    }
}
