//! Semantic displacement (Hamilton et al., 2016).

use embedstab_embeddings::Embedding;
use embedstab_linalg::{orthogonal_procrustes, vecops};

use super::DistanceMeasure;

/// Semantic displacement: the mean cosine distance between corresponding
/// rows after optimally rotating `y` onto `x` with orthogonal Procrustes,
/// `1/n * sum_i cos-dist(X_i, (Y Omega)_i)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SemanticDisplacement;

impl DistanceMeasure for SemanticDisplacement {
    fn name(&self) -> &'static str {
        "Semantic Displacement"
    }

    /// # Panics
    ///
    /// Panics if the embeddings have different shapes.
    fn distance(&self, x: &Embedding, y: &Embedding) -> f64 {
        assert_eq!(
            x.shape(),
            y.shape(),
            "semantic displacement requires equal shapes"
        );
        let omega = orthogonal_procrustes(x.mat(), y.mat());
        let aligned = y.mat().matmul(&omega);
        let n = x.vocab_size();
        let mut total = 0.0;
        for i in 0..n {
            total += vecops::cosine_distance(x.mat().row(i), aligned.row(i));
        }
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_linalg::Mat;
    use rand::SeedableRng;

    #[test]
    fn zero_for_rotated_copy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = Mat::random_normal(25, 4, &mut rng);
        let (q, _) = Mat::random_normal(4, 4, &mut rng).qr();
        let y = x.matmul(&q);
        let d = SemanticDisplacement.distance(&Embedding::new(x), &Embedding::new(y));
        assert!(
            d < 1e-9,
            "displacement of a pure rotation should vanish, got {d}"
        );
    }

    #[test]
    fn positive_for_perturbed_copy_and_scales_with_noise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Mat::random_normal(40, 6, &mut rng);
        let mut small = x.clone();
        small.axpy(0.05, &Mat::random_normal(40, 6, &mut rng));
        let mut large = x.clone();
        large.axpy(0.5, &Mat::random_normal(40, 6, &mut rng));
        let x = Embedding::new(x);
        let d_small = SemanticDisplacement.distance(&x, &Embedding::new(small));
        let d_large = SemanticDisplacement.distance(&x, &Embedding::new(large));
        assert!(d_small > 0.0);
        assert!(d_large > d_small, "more noise => more displacement");
    }
}
