//! The eigenspace instability measure (paper Definition 2, Appendix B.1) —
//! the paper's core contribution.

use embedstab_embeddings::Embedding;
use embedstab_linalg::{Mat, SvdMethod};

use super::{left_singular_basis, left_singular_basis_with, DistanceMeasure};

/// The eigenspace instability measure
/// `EI_Sigma(X, X~) = tr((U U^T + U~ U~^T - 2 U~ U~^T U U^T) Sigma) / tr(Sigma)`
/// with `Sigma = (E E^T)^alpha + (E~ E~^T)^alpha`.
///
/// `E` and `E~` are fixed reference embeddings — the paper uses the
/// highest-dimensional full-precision Wiki'17 and Wiki'18 embeddings — and
/// `alpha` (default 3, tuned in Appendix D.3) controls how much the
/// high-eigenvalue directions of their Gram matrices dominate the label
/// covariance.
///
/// By Proposition 1, this measure *equals* the expected prediction
/// disagreement between the linear regression models trained on `X` and
/// `X~` under labels `y ~ (0, Sigma)`; see [`crate::theory`] for the
/// Monte-Carlo verification.
///
/// The implementation follows the efficient `O(n d^2)` scheme of
/// Appendix B.1: only `U^T (V R^alpha)`-shaped products are formed, never an
/// `n x n` matrix.
#[derive(Clone, Debug)]
pub struct EisMeasure {
    alpha: f64,
    /// `V R^alpha` of the '17 reference (`n x r17`).
    z17: Mat,
    /// `V~ R~^alpha` of the '18 reference (`n x r18`).
    z18: Mat,
    /// `tr(Sigma) = tr(R^{2 alpha}) + tr(R~^{2 alpha})`.
    trace_sigma: f64,
    vocab_size: usize,
}

impl EisMeasure {
    /// Builds the measure from the two reference embeddings and the
    /// eigenvalue-weighting exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if the references have different vocabulary sizes or either
    /// is all-zero.
    pub fn new(e17: &Embedding, e18: &Embedding, alpha: f64) -> Self {
        assert_eq!(
            e17.vocab_size(),
            e18.vocab_size(),
            "reference embeddings must share a vocabulary"
        );
        Self::from_reference_svds(&e17.mat().svd(), &e18.mat().svd(), e17.vocab_size(), alpha)
    }

    /// Builds the measure from precomputed reference SVDs, so hyperparameter
    /// sweeps over `alpha` (paper Table 8) do not repeat the expensive
    /// decompositions.
    ///
    /// # Panics
    ///
    /// Panics if the SVDs' row counts differ from `vocab_size` or both
    /// references are zero.
    pub fn from_reference_svds(
        svd17: &embedstab_linalg::Svd,
        svd18: &embedstab_linalg::Svd,
        vocab_size: usize,
        alpha: f64,
    ) -> Self {
        assert_eq!(svd17.u.rows(), vocab_size, "reference SVD row mismatch");
        assert_eq!(svd18.u.rows(), vocab_size, "reference SVD row mismatch");
        let (z17, t17) = weighted_left_basis(svd17, alpha);
        let (z18, t18) = weighted_left_basis(svd18, alpha);
        let trace_sigma = t17 + t18;
        assert!(trace_sigma > 0.0, "reference embeddings must be non-zero");
        EisMeasure {
            alpha,
            z17,
            z18,
            trace_sigma,
            vocab_size,
        }
    }

    /// The exponent `alpha`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Computes the measure for a pair of embeddings.
    ///
    /// # Panics
    ///
    /// Panics if either embedding's vocabulary size differs from the
    /// references'.
    pub fn distance_between(&self, x: &Embedding, y: &Embedding) -> f64 {
        assert_eq!(
            x.vocab_size(),
            self.vocab_size,
            "vocabulary mismatch with references"
        );
        assert_eq!(
            y.vocab_size(),
            self.vocab_size,
            "vocabulary mismatch with references"
        );
        let ux = left_singular_basis(x.mat());
        let uy = left_singular_basis(y.mat());
        self.distance_from_bases(&ux, &uy)
    }

    /// Computes the measure with an explicit SVD backend for the singular
    /// bases of `x` and `y`; exact and randomized backends must agree to
    /// roundoff (pinned by the kernel-conformance tests).
    ///
    /// # Panics
    ///
    /// Panics if either embedding's vocabulary size differs from the
    /// references'.
    pub fn distance_with_svd(&self, x: &Embedding, y: &Embedding, method: SvdMethod) -> f64 {
        assert_eq!(x.vocab_size(), self.vocab_size, "vocabulary mismatch");
        assert_eq!(y.vocab_size(), self.vocab_size, "vocabulary mismatch");
        let ux = left_singular_basis_with(x.mat(), method);
        let uy = left_singular_basis_with(y.mat(), method);
        self.distance_from_bases(&ux, &uy)
    }

    /// Computes the measure from precomputed orthonormal left singular
    /// bases `U` (of `X`) and `U~` (of `X~`), sharing SVD work with other
    /// eigenspace measures.
    ///
    /// # Panics
    ///
    /// Panics if the bases' row counts differ from the references'.
    pub fn distance_from_bases(&self, ux: &Mat, uy: &Mat) -> f64 {
        assert_eq!(ux.rows(), self.vocab_size, "basis row count mismatch");
        assert_eq!(uy.rows(), self.vocab_size, "basis row count mismatch");
        let c = uy.matmul_tn(ux); // U~^T U  (dy x dx)
        let num = self.sigma_term(ux, uy, &c, &self.z17) + self.sigma_term(ux, uy, &c, &self.z18);
        // Roundoff guard: the measure is a trace of a PSD-weighted
        // difference of projectors and lies in [0, 1].
        (num / self.trace_sigma).clamp(0.0, 1.0)
    }

    /// `tr((U U^T + U~ U~^T - 2 U~ U~^T U U^T) Z Z^T)` for one reference
    /// factor `Z = V R^alpha`, via
    /// `||U^T Z||_F^2 + ||U~^T Z||_F^2 - 2 <U~^T Z, (U~^T U)(U^T Z)>_F`.
    fn sigma_term(&self, ux: &Mat, uy: &Mat, c: &Mat, z: &Mat) -> f64 {
        let q = ux.matmul_tn(z); // U^T Z   (dx x r)
        let p = uy.matmul_tn(z); // U~^T Z  (dy x r)
        q.frobenius_norm_sq() + p.frobenius_norm_sq() - 2.0 * p.frob_inner(&c.matmul(&q))
    }
}

impl DistanceMeasure for EisMeasure {
    fn name(&self) -> &'static str {
        "Eigenspace Instability"
    }

    fn distance(&self, x: &Embedding, y: &Embedding) -> f64 {
        self.distance_between(x, y)
    }
}

/// Returns `(U diag(s^alpha), sum s^{2 alpha})` for a rank-truncated SVD.
fn weighted_left_basis(svd: &embedstab_linalg::Svd, alpha: f64) -> (Mat, f64) {
    let rank = svd.rank(1e-10);
    let mut z = svd.u.truncate_cols(rank);
    let mut trace = 0.0;
    for j in 0..rank {
        let w = svd.s[j].powf(alpha);
        trace += w * w;
        for i in 0..z.rows() {
            z[(i, j)] *= w;
        }
    }
    (z, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rand_emb(n: usize, d: usize, seed: u64) -> Embedding {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Embedding::new(Mat::random_normal(n, d, &mut rng))
    }

    #[test]
    fn zero_for_identical_embeddings() {
        let e = rand_emb(40, 6, 0);
        let m = EisMeasure::new(&e, &e, 3.0);
        assert!(m.distance_between(&e, &e) < 1e-9);
    }

    #[test]
    fn zero_for_same_column_space() {
        // X~ = X T for invertible T spans the same space: projectors equal.
        let e = rand_emb(40, 5, 1);
        let m = EisMeasure::new(&e, &e, 2.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = Mat::random_normal(5, 5, &mut rng).add(&Mat::identity(5).scale(3.0));
        let y = Embedding::new(e.mat().matmul(&t));
        assert!(m.distance_between(&e, &y) < 1e-8);
    }

    #[test]
    fn one_for_orthogonal_spans_covering_sigma() {
        // E = X spans coords {0,1}; E~ = X~ spans {2,3}. With Sigma built
        // from both references, orthogonal spans give exactly 1.
        let x = Mat::from_fn(10, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        let y = Mat::from_fn(10, 2, |i, j| if i == j + 2 { 1.0 } else { 0.0 });
        let (xe, ye) = (Embedding::new(x), Embedding::new(y));
        let m = EisMeasure::new(&xe, &ye, 1.0);
        let d = m.distance_between(&xe, &ye);
        assert!((d - 1.0).abs() < 1e-9, "expected 1.0, got {d}");
    }

    #[test]
    fn bounded_in_unit_interval() {
        let e17 = rand_emb(50, 12, 3);
        let e18 = rand_emb(50, 12, 4);
        let m = EisMeasure::new(&e17, &e18, 3.0);
        for seed in 0..5 {
            let x = rand_emb(50, 4 + seed as usize, 10 + seed);
            let y = rand_emb(50, 4 + seed as usize, 20 + seed);
            let d = m.distance_between(&x, &y);
            assert!((0.0..=1.0).contains(&d), "EIS {d} out of range");
        }
    }

    #[test]
    fn grows_with_perturbation() {
        let e = rand_emb(60, 10, 5);
        let m = EisMeasure::new(&e, &e, 3.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let noise = Mat::random_normal(60, 10, &mut rng);
        let mut prev = 0.0;
        for &eps in &[0.01, 0.1, 0.5, 2.0] {
            let mut y = e.mat().clone();
            y.axpy(eps, &noise);
            let d = m.distance_between(&e, &Embedding::new(y));
            assert!(d >= prev - 1e-9, "EIS should grow with noise: {d} < {prev}");
            prev = d;
        }
        assert!(prev > 0.01, "large noise must register ({prev})");
    }

    #[test]
    fn matches_dense_definition() {
        // Definition 2 computed with explicit n x n projectors must agree
        // with the efficient Appendix B.1 implementation.
        let e17 = rand_emb(25, 6, 7);
        let e18 = rand_emb(25, 6, 8);
        let x = rand_emb(25, 4, 9);
        let y = rand_emb(25, 5, 10);
        for &alpha in &[0.0, 1.0, 3.0] {
            let m = EisMeasure::new(&e17, &e18, alpha);
            let fast = m.distance_between(&x, &y);
            let dense = crate::theory::eis_dense(
                x.mat(),
                y.mat(),
                &crate::theory::sigma_dense(e17.mat(), e18.mat(), alpha),
            );
            assert!(
                (fast - dense).abs() < 1e-8,
                "alpha {alpha}: fast {fast} vs dense {dense}"
            );
        }
    }
}
