//! The k-nearest-neighbors measure (Hellrich & Hahn 2016; Antoniak & Mimno
//! 2018; Wendlandt et al. 2018).

use embedstab_embeddings::Embedding;
use embedstab_linalg::vecops;
use rand::{Rng, RngExt, SeedableRng};

use super::DistanceMeasure;

/// The k-NN measure: average overlap of the `k` nearest neighbors (by
/// cosine similarity) of `Q` randomly sampled query words, reported as the
/// distance `1 - overlap`.
///
/// The paper uses `k = 5` (tuned in Appendix D.3) and `Q = 1000`.
#[derive(Clone, Debug)]
pub struct KnnMeasure {
    k: usize,
    queries: usize,
    seed: u64,
}

impl KnnMeasure {
    /// Creates the measure with `k` neighbors and `queries` sampled query
    /// words (capped at the vocabulary size at evaluation time).
    ///
    /// # Panics
    ///
    /// Panics if `k` or `queries` is zero.
    pub fn new(k: usize, queries: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(queries > 0, "queries must be positive");
        KnnMeasure { k, queries, seed }
    }

    /// The neighbor count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Mean top-`k` neighbor overlap in `[0, 1]` (1 = identical neighbor
    /// structure).
    ///
    /// # Panics
    ///
    /// Panics if vocabularies differ or have fewer than 2 words.
    pub fn overlap(&self, x: &Embedding, y: &Embedding) -> f64 {
        assert_eq!(x.vocab_size(), y.vocab_size(), "vocabulary mismatch");
        let n = x.vocab_size();
        assert!(n >= 2, "need at least two words for neighbors");
        let k = self.k.min(n - 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let queries = sample_distinct(self.queries.min(n), n, &mut rng);
        let mut total = 0.0;
        for &q in &queries {
            let nx = top_k_neighbors(x, q, k);
            let ny = top_k_neighbors(y, q, k);
            let inter = nx.iter().filter(|w| ny.contains(w)).count();
            total += inter as f64 / k as f64;
        }
        total / queries.len() as f64
    }
}

impl DistanceMeasure for KnnMeasure {
    fn name(&self) -> &'static str {
        "1 - k-NN"
    }

    fn distance(&self, x: &Embedding, y: &Embedding) -> f64 {
        1.0 - self.overlap(x, y)
    }
}

fn sample_distinct(count: usize, n: usize, rng: &mut impl Rng) -> Vec<u32> {
    if count >= n {
        return (0..n as u32).collect();
    }
    // Partial Fisher-Yates.
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in 0..count {
        let j = rng.random_range(i..n);
        ids.swap(i, j);
    }
    ids.truncate(count);
    ids
}

/// Indices of the `k` most cosine-similar words to `q` (excluding `q`).
fn top_k_neighbors(emb: &Embedding, q: u32, k: usize) -> Vec<u32> {
    let qv = emb.vector(q);
    let mut sims: Vec<(f64, u32)> = (0..emb.vocab_size() as u32)
        .filter(|&w| w != q)
        .map(|w| (vecops::cosine_similarity(qv, emb.vector(w)), w))
        .collect();
    // Partial selection: k is tiny compared to the vocabulary.
    // `partial_cmp(..).unwrap_or(Equal)` is not a total order under NaN
    // similarities (zero vectors), which breaks the selection invariant.
    // cmp_desc_nan_last keeps it deterministic AND keeps NaNs out of the
    // neighbor set whenever k finite similarities exist.
    sims.select_nth_unstable_by(k - 1, |a, b| {
        crate::stats::cmp_desc_nan_last(a.0, b.0).then(a.1.cmp(&b.1))
    });
    sims.truncate(k);
    sims.into_iter().map(|(_, w)| w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_linalg::Mat;

    #[test]
    fn identical_embeddings_have_full_overlap() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let e = Embedding::new(Mat::random_normal(30, 5, &mut rng));
        let m = KnnMeasure::new(3, 100, 0);
        assert!((m.overlap(&e, &e) - 1.0).abs() < 1e-12);
        assert_eq!(m.distance(&e, &e), 0.0);
    }

    #[test]
    fn rotation_preserves_neighbors() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Mat::random_normal(30, 5, &mut rng);
        let (q, _) = Mat::random_normal(5, 5, &mut rng).qr();
        let y = x.matmul(&q);
        let m = KnnMeasure::new(3, 100, 0);
        assert!(
            m.overlap(&Embedding::new(x), &Embedding::new(y)) > 0.999,
            "cosine neighbors are rotation-invariant"
        );
    }

    #[test]
    fn unrelated_embeddings_have_low_overlap() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = Embedding::new(Mat::random_normal(200, 8, &mut rng));
        let y = Embedding::new(Mat::random_normal(200, 8, &mut rng));
        let m = KnnMeasure::new(5, 100, 0);
        let overlap = m.overlap(&x, &y);
        // Random chance of hitting the same neighbor is ~k/n.
        assert!(overlap < 0.15, "overlap {overlap}");
    }

    #[test]
    fn top_k_excludes_query() {
        let e = Embedding::new(Mat::from_rows(&[&[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0]]));
        let nbrs = top_k_neighbors(&e, 0, 2);
        assert!(!nbrs.contains(&0));
        assert_eq!(nbrs[0], 1, "closest neighbor of word 0 is word 1");
    }

    #[test]
    fn deterministic_queries() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = Embedding::new(Mat::random_normal(60, 4, &mut rng));
        let y = Embedding::new(Mat::random_normal(60, 4, &mut rng));
        let m = KnnMeasure::new(5, 20, 11);
        assert_eq!(m.overlap(&x, &y), m.overlap(&x, &y));
    }
}
