//! The eigenspace overlap score (May et al., 2019).

use embedstab_embeddings::Embedding;
use embedstab_linalg::{Mat, SvdMethod};

use super::{left_singular_basis, left_singular_basis_with, DistanceMeasure};

/// The eigenspace overlap score `1/max(d, k) * ||U^T U~||_F^2` where `U`,
/// `U~` are the left singular vectors of the two embeddings, reported as
/// the distance `1 - overlap`.
#[derive(Clone, Copy, Debug, Default)]
pub struct EigenspaceOverlap;

impl EigenspaceOverlap {
    /// The overlap score in `[0, 1]` (1 = identical column spaces).
    ///
    /// # Panics
    ///
    /// Panics if the embeddings have different vocabulary sizes.
    pub fn overlap(&self, x: &Embedding, y: &Embedding) -> f64 {
        assert_eq!(x.vocab_size(), y.vocab_size(), "vocabulary mismatch");
        let ux = left_singular_basis(x.mat());
        let uy = left_singular_basis(y.mat());
        overlap_from_bases(&ux, &uy)
    }

    /// The distance `1 - overlap` with an explicit SVD backend for the
    /// singular bases; exact and randomized backends must agree to
    /// roundoff (pinned by the kernel-conformance tests).
    ///
    /// # Panics
    ///
    /// Panics if the embeddings have different vocabulary sizes.
    pub fn distance_with_svd(&self, x: &Embedding, y: &Embedding, method: SvdMethod) -> f64 {
        assert_eq!(x.vocab_size(), y.vocab_size(), "vocabulary mismatch");
        let ux = left_singular_basis_with(x.mat(), method);
        let uy = left_singular_basis_with(y.mat(), method);
        overlap_distance_from_bases(&ux, &uy)
    }
}

impl DistanceMeasure for EigenspaceOverlap {
    fn name(&self) -> &'static str {
        "1 - Eigenspace Overlap"
    }

    fn distance(&self, x: &Embedding, y: &Embedding) -> f64 {
        1.0 - self.overlap(x, y)
    }
}

/// Overlap score from precomputed orthonormal bases.
pub(crate) fn overlap_from_bases(ux: &Mat, uy: &Mat) -> f64 {
    let denom = ux.cols().max(uy.cols()).max(1) as f64;
    ux.matmul_tn(uy).frobenius_norm_sq() / denom
}

/// `1 - overlap` from precomputed orthonormal bases — the seam shared by
/// [`super::MeasureSuite`] and callers that already hold the singular
/// bases (e.g. the serving layer's stability gate, which decomposes each
/// embedding exactly once per evaluation).
pub fn overlap_distance_from_bases(ux: &Mat, uy: &Mat) -> f64 {
    (1.0 - overlap_from_bases(ux, uy)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn full_overlap_for_same_span() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = Mat::random_normal(30, 4, &mut rng);
        // y spans the same column space: x times an invertible matrix.
        let t = Mat::random_normal(4, 4, &mut rng).add(&Mat::identity(4).scale(3.0));
        let y = x.matmul(&t);
        let s = EigenspaceOverlap.overlap(&Embedding::new(x), &Embedding::new(y));
        assert!(
            (s - 1.0).abs() < 1e-8,
            "same span must overlap fully, got {s}"
        );
    }

    #[test]
    fn orthogonal_spans_have_zero_overlap() {
        // Columns of x live on even coordinates, y on odd ones.
        let x = Mat::from_fn(10, 2, |i, j| if i == 2 * j { 1.0 } else { 0.0 });
        let y = Mat::from_fn(10, 2, |i, j| if i == 2 * j + 1 { 1.0 } else { 0.0 });
        let s = EigenspaceOverlap.overlap(&Embedding::new(x), &Embedding::new(y));
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn overlap_bounded_by_one_for_mixed_dims() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Embedding::new(Mat::random_normal(30, 3, &mut rng));
        let y = Embedding::new(Mat::random_normal(30, 7, &mut rng));
        let s = EigenspaceOverlap.overlap(&x, &y);
        assert!((0.0..=1.0 + 1e-12).contains(&s), "overlap {s}");
    }
}
