//! Embedding distance measures (paper Section 2.4 and Definition 2).
//!
//! Every measure is *distance-like*: higher values predict more downstream
//! instability. Measures whose raw form is a similarity (the k-NN measure
//! and the eigenspace overlap score) are reported as `1 - similarity`,
//! matching the `1 - k-NN` / `1 - Eigenspace Overlap` rows of the paper's
//! tables.

mod displacement;
mod eis;
mod knn;
mod overlap;
mod pip;

pub use displacement::SemanticDisplacement;
pub use eis::EisMeasure;
pub use knn::KnnMeasure;
pub use overlap::{overlap_distance_from_bases, EigenspaceOverlap};
pub use pip::PipLoss;

use embedstab_embeddings::Embedding;
use embedstab_linalg::Mat;
pub use embedstab_linalg::{RandomizedSvd, SvdMethod};
use serde::{Deserialize, Serialize};

/// A pairwise embedding distance: higher = predicted less stable.
pub trait DistanceMeasure {
    /// Display name matching the paper's tables.
    fn name(&self) -> &'static str;

    /// Computes the distance between two embeddings over the same
    /// (frequency-ordered) vocabulary.
    fn distance(&self, x: &Embedding, y: &Embedding) -> f64;
}

/// Identifies one of the five measures in the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeasureKind {
    /// Eigenspace instability measure (the paper's contribution).
    Eis,
    /// `1 -` k-nearest-neighbors overlap.
    Knn,
    /// Semantic displacement (Hamilton et al., 2016).
    SemanticDisplacement,
    /// Pairwise inner product loss (Yin & Shen, 2018).
    PipLoss,
    /// `1 -` eigenspace overlap score (May et al., 2019).
    EigenspaceOverlap,
}

impl MeasureKind {
    /// All five measures, in the paper's table order.
    pub const ALL: [MeasureKind; 5] = [
        MeasureKind::Eis,
        MeasureKind::Knn,
        MeasureKind::SemanticDisplacement,
        MeasureKind::PipLoss,
        MeasureKind::EigenspaceOverlap,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MeasureKind::Eis => "Eigenspace Instability",
            MeasureKind::Knn => "1 - k-NN",
            MeasureKind::SemanticDisplacement => "Semantic Displacement",
            MeasureKind::PipLoss => "PIP Loss",
            MeasureKind::EigenspaceOverlap => "1 - Eigenspace Overlap",
        }
    }
}

impl std::fmt::Display for MeasureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The five distances computed for one embedding pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasureValues {
    /// Eigenspace instability measure.
    pub eis: f64,
    /// `1 -` k-NN overlap.
    pub knn_dist: f64,
    /// Semantic displacement.
    pub semantic_displacement: f64,
    /// PIP loss.
    pub pip_loss: f64,
    /// `1 -` eigenspace overlap score.
    pub overlap_dist: f64,
}

impl MeasureValues {
    /// The value for one measure.
    pub fn get(&self, kind: MeasureKind) -> f64 {
        match kind {
            MeasureKind::Eis => self.eis,
            MeasureKind::Knn => self.knn_dist,
            MeasureKind::SemanticDisplacement => self.semantic_displacement,
            MeasureKind::PipLoss => self.pip_loss,
            MeasureKind::EigenspaceOverlap => self.overlap_dist,
        }
    }
}

/// Computes all five measures for embedding pairs while sharing the
/// expensive SVD work between the eigenspace-based measures.
///
/// The suite owns the EIS reference embeddings (the paper uses the
/// highest-dimensional full-precision Wiki'17/Wiki'18 embeddings as `E` and
/// `E~`) and the k-NN query sampling configuration.
#[derive(Clone, Debug)]
pub struct MeasureSuite {
    eis: EisMeasure,
    knn: KnnMeasure,
    svd: SvdMethod,
}

impl MeasureSuite {
    /// Creates a suite with EIS references `e17`/`e18`, EIS exponent
    /// `alpha` (paper default 3), and the k-NN measure at its paper
    /// defaults (`k = 5`, 1000 queries) seeded by `knn_seed`.
    pub fn new(e17: &Embedding, e18: &Embedding, alpha: f64, knn_seed: u64) -> Self {
        MeasureSuite {
            eis: EisMeasure::new(e17, e18, alpha),
            knn: KnnMeasure::new(5, 1000, knn_seed),
            svd: SvdMethod::Auto,
        }
    }

    /// Overrides the k-NN configuration.
    pub fn with_knn(mut self, knn: KnnMeasure) -> Self {
        self.knn = knn;
        self
    }

    /// Overrides the SVD backend used for the eigenspace bases (the
    /// kernel-conformance tests pin `Exact` vs `Randomized` agreement;
    /// production runs keep the `Auto` default).
    pub fn with_svd_method(mut self, svd: SvdMethod) -> Self {
        self.svd = svd;
        self
    }

    /// Computes all five measures for the pair `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the embeddings have different vocabulary sizes or their
    /// vocabulary size differs from the EIS references'.
    pub fn compute_all(&self, x: &Embedding, y: &Embedding) -> MeasureValues {
        assert_eq!(
            x.vocab_size(),
            y.vocab_size(),
            "embeddings must share a vocabulary"
        );
        let ux = left_singular_basis_with(x.mat(), self.svd);
        let uy = left_singular_basis_with(y.mat(), self.svd);
        MeasureValues {
            eis: self.eis.distance_from_bases(&ux, &uy),
            knn_dist: self.knn.distance(x, y),
            semantic_displacement: SemanticDisplacement.distance(x, y),
            pip_loss: PipLoss.distance(x, y),
            overlap_dist: overlap::overlap_distance_from_bases(&ux, &uy),
        }
    }
}

/// Rank-truncated left singular vectors of an embedding matrix, computed
/// with the default [`SvdMethod::Auto`] backend.
pub(crate) fn left_singular_basis(m: &Mat) -> Mat {
    left_singular_basis_with(m, SvdMethod::Auto)
}

/// Rank-truncated left singular vectors computed with an explicit SVD
/// backend. This is the seam the eigenspace measures and the
/// kernel-conformance tests share: swapping the backend here must not
/// change any measure value beyond roundoff.
pub fn left_singular_basis_with(m: &Mat, method: SvdMethod) -> Mat {
    m.svd_with(method).u_rank(1e-10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn suite_on_identical_embeddings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let e = Embedding::new(Mat::random_normal(40, 6, &mut rng));
        let suite = MeasureSuite::new(&e, &e, 3.0, 7);
        let vals = suite.compute_all(&e, &e);
        assert!(vals.eis.abs() < 1e-9, "eis {}", vals.eis);
        assert!(vals.knn_dist.abs() < 1e-12);
        assert!(vals.semantic_displacement.abs() < 1e-9);
        assert!(vals.pip_loss.abs() < 1e-9);
        assert!(vals.overlap_dist.abs() < 1e-9);
    }

    #[test]
    fn all_measures_positive_for_different_embeddings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Embedding::new(Mat::random_normal(40, 6, &mut rng));
        let y = Embedding::new(Mat::random_normal(40, 6, &mut rng));
        let suite = MeasureSuite::new(&x, &y, 3.0, 7);
        let vals = suite.compute_all(&x, &y);
        for kind in MeasureKind::ALL {
            assert!(vals.get(kind) > 0.0, "{kind} should be positive");
        }
    }

    #[test]
    fn kind_names_match_tables() {
        assert_eq!(MeasureKind::Eis.name(), "Eigenspace Instability");
        assert_eq!(MeasureKind::Knn.name(), "1 - k-NN");
        assert_eq!(MeasureKind::ALL.len(), 5);
    }
}
