//! The pairwise inner product (PIP) loss (Yin & Shen, 2018).

use embedstab_embeddings::Embedding;
use embedstab_linalg::SvdMethod;

use super::DistanceMeasure;

/// The PIP loss `|| X X^T - Y Y^T ||_F`, computed without materializing the
/// `n x n` Gram matrices via
/// `||X^T X||_F^2 + ||Y^T Y||_F^2 - 2 ||X^T Y||_F^2`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipLoss;

impl DistanceMeasure for PipLoss {
    fn name(&self) -> &'static str {
        "PIP Loss"
    }

    /// # Panics
    ///
    /// Panics if the embeddings have different vocabulary sizes.
    fn distance(&self, x: &Embedding, y: &Embedding) -> f64 {
        assert_eq!(x.vocab_size(), y.vocab_size(), "vocabulary mismatch");
        let xx = x.mat().gram().frobenius_norm_sq();
        let yy = y.mat().gram().frobenius_norm_sq();
        let xy = x.mat().matmul_tn(y.mat()).frobenius_norm_sq();
        // Clamp: roundoff can make the sum marginally negative when X == Y.
        (xx + yy - 2.0 * xy).max(0.0).sqrt()
    }
}

impl PipLoss {
    /// The PIP loss computed from SVD factors instead of Gram products:
    /// with `X = U S V^T`, `||X X^T - Y Y^T||_F^2` equals
    /// `sum s_x^4 + sum s_y^4 - 2 ||S_x (U_x^T U_y) S_y||_F^2`.
    ///
    /// Exact and randomized backends must agree with each other and with
    /// [`DistanceMeasure::distance`] to roundoff (pinned by the
    /// kernel-conformance tests).
    ///
    /// # Panics
    ///
    /// Panics if the embeddings have different vocabulary sizes.
    pub fn distance_via_svd(&self, x: &Embedding, y: &Embedding, method: SvdMethod) -> f64 {
        assert_eq!(x.vocab_size(), y.vocab_size(), "vocabulary mismatch");
        let sx = x.mat().svd_with(method);
        let sy = y.mat().svd_with(method);
        let mut cross = sx.u.matmul_tn(&sy.u);
        for i in 0..cross.rows() {
            let si = sx.s[i];
            for (v, sj) in cross.row_mut(i).iter_mut().zip(&sy.s) {
                *v *= si * sj;
            }
        }
        let xx: f64 = sx.s.iter().map(|s| s.powi(4)).sum();
        let yy: f64 = sy.s.iter().map(|s| s.powi(4)).sum();
        (xx + yy - 2.0 * cross.frobenius_norm_sq()).max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_linalg::Mat;
    use rand::SeedableRng;

    #[test]
    fn matches_naive_dense_computation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = Mat::random_normal(15, 4, &mut rng);
        let y = Mat::random_normal(15, 6, &mut rng); // different dims allowed
        let naive = x.matmul_nt(&x).sub(&y.matmul_nt(&y)).frobenius_norm();
        let fast = PipLoss.distance(&Embedding::new(x), &Embedding::new(y));
        assert!((naive - fast).abs() < 1e-8, "naive {naive} vs fast {fast}");
    }

    #[test]
    fn zero_for_identical_and_rotated() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Mat::random_normal(20, 5, &mut rng);
        let (q, _) = Mat::random_normal(5, 5, &mut rng).qr();
        let y = x.matmul(&q);
        // The Gram-trick cancellation leaves roundoff of order
        // sqrt(eps) * ||X^T X||_F, so compare against that scale.
        let scale = xe_scale(&x);
        let xe = Embedding::new(x);
        assert!(PipLoss.distance(&xe, &xe) < 1e-5 * scale);
        assert!(
            PipLoss.distance(&xe, &Embedding::new(y)) < 1e-5 * scale,
            "PIP is rotation-invariant"
        );
    }

    fn xe_scale(x: &Mat) -> f64 {
        x.gram().frobenius_norm().sqrt()
    }
}
