//! The experiment "world": the corpus pair, corpus statistics, and
//! downstream datasets, built once and shared by every run.

use std::sync::Arc;

use embedstab_corpus::{
    CorpusConfig, DriftConfig, LatentModelConfig, TemporalPair, TemporalPairConfig, Vocab,
};
use embedstab_downstream::tasks::ner::{NerDataset, NerSpec};
use embedstab_downstream::tasks::sentiment::{SentimentDataset, SentimentSpec};
use embedstab_embeddings::CorpusStats;

use crate::scale::ScaleParams;

/// Everything that is fixed across an experiment: the Wiki'17/Wiki'18
/// corpus pair (and their trainer statistics) plus the downstream
/// datasets, which are generated from the *base* latent model so the
/// downstream data does not change between years (as in the paper).
pub struct World {
    /// Scale parameters the world was built with.
    pub params: ScaleParams,
    /// Master seed the world was built with (part of the cache identity).
    pub master_seed: u64,
    /// The corpus pair and latent models.
    pub pair: TemporalPair,
    /// Trainer statistics for the '17 corpus.
    pub stats17: CorpusStats,
    /// Trainer statistics for the '18 corpus.
    pub stats18: CorpusStats,
    /// The four sentiment datasets (sst2, mr, subj, mpqa), shared with
    /// [`SentimentTask`](embedstab_downstream::SentimentTask) values.
    pub sentiment: Vec<Arc<SentimentDataset>>,
    /// The NER dataset, shared with
    /// [`NerTask`](embedstab_downstream::NerTask) values.
    pub ner: Arc<NerDataset>,
}

impl World {
    /// Builds a world deterministically from scale parameters and a master
    /// seed (which offsets the corpus/model seeds so different worlds are
    /// independent).
    pub fn build(params: &ScaleParams, master_seed: u64) -> World {
        // Per-coordinate noise scales keep vector norms constant across
        // latent dimensions (defaults were calibrated at D = 16).
        let dim_scale = (16.0 / params.latent_dim as f64).sqrt();
        let cfg = TemporalPairConfig {
            model: LatentModelConfig {
                vocab_size: params.vocab_size,
                latent_dim: params.latent_dim,
                n_topics: params.n_topics,
                word_noise: 0.6 * dim_scale,
                seed: master_seed,
                ..Default::default()
            },
            drift: DriftConfig {
                drift_sigma: 0.8 * dim_scale,
                seed: master_seed.wrapping_add(1),
                ..Default::default()
            },
            corpus: CorpusConfig {
                n_tokens: params.corpus_tokens,
                seed: master_seed.wrapping_add(2),
                ..Default::default()
            },
            // The paper motivates with "1% more data"; a visible default.
            extra_token_frac: 0.02,
        };
        let pair = TemporalPair::build(&cfg);
        let stats17 = CorpusStats::compute(
            Arc::new(pair.corpus17.clone()),
            params.vocab_size,
            params.window,
        );
        let stats18 = CorpusStats::compute(
            Arc::new(pair.corpus18.clone()),
            params.vocab_size,
            params.window,
        );
        let sentiment = SentimentSpec::all_four()
            .into_iter()
            .map(|mut spec| {
                spec.n_train = params.sentiment_train;
                spec.n_valid = (params.sentiment_train / 5).max(20);
                spec.n_test = params.sentiment_test;
                Arc::new(spec.generate(&pair.model17))
            })
            .collect();
        let ner = Arc::new(
            NerSpec {
                n_train: params.ner_train,
                n_valid: (params.ner_train / 5).max(10),
                n_test: params.ner_test,
                ..Default::default()
            }
            .generate(&pair.model17),
        );
        World {
            params: params.clone(),
            master_seed,
            pair,
            stats17,
            stats18,
            sentiment,
            ner,
        }
    }

    /// A stable fingerprint of everything that determines a trained
    /// embedding pair's values: the corpus-shaping scale parameters and the
    /// master seed. Two worlds with equal fingerprints train bitwise-equal
    /// embeddings for the same `(algo, dim, seed)`, which makes the
    /// fingerprint the world component of the on-disk pair-cache key.
    ///
    /// Deliberately **narrower** than the world-cache key
    /// ([`crate::world_cache::world_fingerprint`]), which must also cover
    /// the dataset-shaping parameters: a trained pair is reusable across a
    /// `sentiment_train` change, but a cached world (which embeds the
    /// datasets) is not.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the corpus-determining fields, in a fixed order.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        let p = &self.params;
        mix(self.master_seed);
        mix(p.vocab_size as u64);
        mix(p.n_topics as u64);
        mix(p.latent_dim as u64);
        mix(p.corpus_tokens as u64);
        mix(p.window as u64);
        h
    }

    /// The *content* fingerprint of the world's accumulated ('18) corpus
    /// under its counting configuration —
    /// [`embedstab_corpus::corpus_state_fingerprint`] over `corpus18`.
    ///
    /// [`World::fingerprint`] keys on generating *parameters*, which is
    /// right for caches of things this process would regenerate
    /// identically. A continuous-retraining service seeded from a world
    /// outgrows its parameters with every streamed increment; its
    /// checkpoints key on this content fingerprint instead, so an
    /// incremental world always fingerprints as the corpus it now holds.
    /// `embedstab_stream`'s `ContinuousRetrainer::from_world` starts at
    /// exactly this value and moves away from it on the first increment.
    pub fn stream_fingerprint(&self) -> u64 {
        embedstab_corpus::corpus_state_fingerprint(
            &self.pair.corpus18,
            self.params.vocab_size,
            &embedstab_corpus::CoocConfig {
                window: self.params.window,
                distance_weighting: false,
            },
        )
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.pair.model17.vocab
    }

    /// The sentiment dataset with the given name.
    ///
    /// # Panics
    ///
    /// Panics if no dataset has that name.
    pub fn sentiment_dataset(&self, name: &str) -> &SentimentDataset {
        self.sentiment_dataset_arc(name)
    }

    /// The shared handle for the sentiment dataset with the given name
    /// (what [`SentimentTask`](embedstab_downstream::SentimentTask) takes).
    ///
    /// # Panics
    ///
    /// Panics if no dataset has that name.
    pub fn sentiment_dataset_arc(&self, name: &str) -> &Arc<SentimentDataset> {
        self.sentiment
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("no sentiment dataset named '{name}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn tiny_world_builds_consistently() {
        let params = Scale::Tiny.params();
        let w = World::build(&params, 0);
        assert_eq!(w.sentiment.len(), 4);
        assert_eq!(w.sentiment_dataset("subj").name, "subj");
        assert_eq!(w.stats17.vocab_size, params.vocab_size);
        assert!(w.stats18.n_tokens() > w.stats17.n_tokens());
        assert!(!w.ner.train.is_empty());
    }

    #[test]
    #[should_panic(expected = "no sentiment dataset")]
    fn unknown_dataset_panics() {
        let w = World::build(&Scale::Tiny.params(), 0);
        let _ = w.sentiment_dataset("imdb");
    }
}
