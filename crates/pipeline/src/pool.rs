//! A minimal shared work-queue: the one worker pool behind both embedding
//! grid training and downstream grid evaluation.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Runs `f` over `items` with a scoped worker pool (one worker per
/// available core, capped at the item count), returning results in input
/// order.
///
/// Workers pull indices from a shared atomic counter, so long items only
/// delay their own slot. `f` must be deterministic per item for the
/// pipeline's reproducibility guarantees to hold.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn parallel_map<I: Sync, T: Send>(items: &[I], f: impl Fn(&I) -> T + Sync) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items.len()));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    crossbeam::scope(|scope| {
        for _ in 0..workers.min(items.len().max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                results.lock().push((i, out));
            });
        }
    })
    .expect("worker panicked");
    let mut results = results.into_inner();
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_input() {
        let items: Vec<usize> = Vec::new();
        assert!(parallel_map(&items, |&i| i).is_empty());
    }
}
