//! A minimal shared work-queue: the one worker pool behind both embedding
//! grid training and downstream grid evaluation.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// The environment variable that overrides the pool's worker count.
///
/// Useful for pinning benchmark runs to a fixed width (the serving
/// load-generator records it alongside its results) and for containers
/// where `available_parallelism` sees the host's cores rather than the
/// cgroup quota. Parsed as a decimal worker count and clamped to at least
/// 1; unset, empty, or unparseable values fall back to the detected
/// parallelism.
pub const THREADS_ENV: &str = "EMBEDSTAB_THREADS";

/// The worker count [`parallel_map`] uses: the `EMBEDSTAB_THREADS`
/// override when set (clamped to ≥ 1), else `available`.
fn worker_count(available: usize, env_override: Option<&str>) -> usize {
    match env_override.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) => n.max(1),
        None => available.max(1),
    }
}

/// Runs `f` over `items` with a scoped worker pool (one worker per
/// available core — or the [`THREADS_ENV`] override — capped at the item
/// count), returning results in input order.
///
/// Workers pull indices from a shared atomic counter, so long items only
/// delay their own slot. `f` must be deterministic per item for the
/// pipeline's reproducibility guarantees to hold.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn parallel_map<I: Sync, T: Send>(items: &[I], f: impl Fn(&I) -> T + Sync) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items.len()));
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let env = std::env::var(THREADS_ENV).ok();
    let workers = worker_count(available, env.as_deref());
    crossbeam::scope(|scope| {
        for _ in 0..workers.min(items.len().max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                results.lock().push((i, out));
            });
        }
    })
    .expect("worker panicked");
    let mut results = results.into_inner();
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_input() {
        let items: Vec<usize> = Vec::new();
        assert!(parallel_map(&items, |&i| i).is_empty());
    }

    #[test]
    fn worker_count_honors_override_and_clamps() {
        // No override: the detected parallelism, itself clamped to ≥ 1.
        assert_eq!(worker_count(8, None), 8);
        assert_eq!(worker_count(0, None), 1);
        // A valid override wins over detection (both directions).
        assert_eq!(worker_count(8, Some("2")), 2);
        assert_eq!(worker_count(2, Some("16")), 16);
        assert_eq!(worker_count(8, Some(" 3 ")), 3);
        // Zero is clamped to one worker, never a stalled pool.
        assert_eq!(worker_count(8, Some("0")), 1);
        // Garbage falls back to detection.
        assert_eq!(worker_count(8, Some("")), 8);
        assert_eq!(worker_count(8, Some("lots")), 8);
        assert_eq!(worker_count(8, Some("-2")), 8);
    }
}
