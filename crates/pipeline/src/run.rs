//! Legacy grid entry points and the row/options types they share with the
//! [`Experiment`](crate::Experiment) builder.
//!
//! `run_sentiment_grid` and `run_ner_grid` predate the builder; they are
//! kept as thin wrappers so existing callers and scripts keep working. New
//! code should use [`Experiment`] directly — it adds sharding, an on-disk
//! pair cache, row streaming, and pluggable tasks on top of the same
//! single grid loop.

use embedstab_core::MeasureValues;
use embedstab_embeddings::Algo;
use embedstab_quant::Precision;
use serde::{Deserialize, Serialize};

use crate::experiment::Experiment;
use crate::grid::EmbeddingGrid;
use crate::world::World;

/// One experiment observation: a downstream task trained on one embedding
/// configuration pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Task name (`sst2`, `mr`, `subj`, `mpqa`, `ner`).
    pub task: String,
    /// Embedding algorithm name.
    pub algo: String,
    /// Embedding dimension.
    pub dim: usize,
    /// Precision in bits.
    pub bits: u8,
    /// Memory in bits/word.
    pub memory: u64,
    /// Seed shared by embedding and downstream training.
    pub seed: u64,
    /// Downstream prediction disagreement in `[0, 1]` (entity tokens only
    /// for NER, as in the paper).
    pub disagreement: f64,
    /// Quality of the '17-side model (accuracy / micro-F1).
    pub quality17: f64,
    /// Quality of the '18-side model.
    pub quality18: f64,
    /// The five embedding distance measures, when requested.
    pub measures: Option<MeasureValues>,
}

/// Options shared by the grid runners.
#[derive(Clone, Debug)]
pub struct GridOptions {
    /// Algorithms to run.
    pub algos: Vec<Algo>,
    /// Also compute the five distance measures per configuration.
    pub with_measures: bool,
    /// EIS eigenvalue exponent (paper default 3).
    pub alpha: f64,
    /// k for the k-NN measure (paper default 5).
    pub knn_k: usize,
    /// Downstream learning-rate override (Appendix E.5 sweeps this).
    pub lr_override: Option<f64>,
    /// Use different model-init/sampling seeds for the '18-side model
    /// (Appendix E.3's relaxed-seed setting).
    pub relax_seeds: bool,
    /// Fine-tune the embeddings during downstream training at the given
    /// learning rate (Appendix E.4); sentiment only.
    pub fine_tune_lr: Option<f64>,
    /// Restrict the grid to these dimensions (default: the scale's sweep).
    pub dims: Option<Vec<usize>>,
    /// Restrict the grid to these precisions (default: the scale's sweep).
    pub precisions: Option<Vec<Precision>>,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            algos: Algo::MAIN.to_vec(),
            with_measures: false,
            alpha: 3.0,
            knn_k: 5,
            lr_override: None,
            relax_seeds: false,
            fine_tune_lr: None,
            dims: None,
            precisions: None,
        }
    }
}

/// Runs the full grid for one sentiment task, returning one row per
/// configuration (paper Figures 1/2/6, Tables 1-3 inputs).
///
/// Thin wrapper over [`Experiment`]; equivalent to
/// `Experiment::new(world).grid(grid).tasks([task]).options(opts).run()`.
///
/// # Panics
///
/// Panics if `task` is not one of the world's sentiment datasets or the
/// grid is missing a required pair.
pub fn run_sentiment_grid(
    world: &World,
    grid: &EmbeddingGrid,
    task: &str,
    opts: &GridOptions,
) -> Vec<Row> {
    // The builder resolves "ner" to the NER task; this wrapper's contract
    // is sentiment-only, so keep the documented panic for unknown names.
    let _ = world.sentiment_dataset(task);
    Experiment::new(world)
        .grid(grid)
        .tasks([task])
        .options(opts.clone())
        .run()
}

/// Runs the full grid for the NER task with the BiLSTM tagger; instability
/// is measured over entity tokens only (paper Section 3).
///
/// Thin wrapper over [`Experiment`], like [`run_sentiment_grid`].
pub fn run_ner_grid(world: &World, grid: &EmbeddingGrid, opts: &GridOptions) -> Vec<Row> {
    Experiment::new(world)
        .grid(grid)
        .tasks(["ner"])
        .options(opts.clone())
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn tiny_setup() -> (World, EmbeddingGrid) {
        let mut params = Scale::Tiny.params();
        params.dims = vec![4, 16];
        params.precisions = vec![Precision::new(1), Precision::FULL];
        params.seeds = vec![0];
        let world = World::build(&params, 0);
        let grid = EmbeddingGrid::build(&world, &[Algo::Mc], &params.dims, &params.seeds);
        (world, grid)
    }

    #[test]
    fn sentiment_grid_produces_rows_with_shape() {
        let (world, grid) = tiny_setup();
        let opts = GridOptions {
            algos: vec![Algo::Mc],
            with_measures: true,
            ..Default::default()
        };
        let rows = run_sentiment_grid(&world, &grid, "sst2", &opts);
        assert_eq!(rows.len(), 4); // 2 dims x 2 precisions x 1 seed
        for r in &rows {
            assert!(r.disagreement >= 0.0 && r.disagreement <= 1.0);
            assert!(r.quality17 > 0.4, "degenerate quality {}", r.quality17);
            let m = r.measures.expect("measures requested");
            assert!(m.eis >= 0.0 && m.eis <= 1.0);
        }
        // Identity check on memory accounting.
        assert!(rows.iter().any(|r| r.memory == 4));
        assert!(rows.iter().any(|r| r.memory == 512));
    }

    #[test]
    fn ner_grid_runs() {
        let (world, grid) = tiny_setup();
        let opts = GridOptions {
            algos: vec![Algo::Mc],
            ..Default::default()
        };
        let rows = run_ner_grid(&world, &grid, &opts);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.task, "ner");
            assert!(r.disagreement >= 0.0 && r.disagreement <= 1.0);
            assert!(r.measures.is_none());
        }
    }

    #[test]
    #[should_panic(expected = "no sentiment dataset")]
    fn sentiment_wrapper_rejects_ner() {
        let (world, grid) = tiny_setup();
        let _ = run_sentiment_grid(&world, &grid, "ner", &GridOptions::default());
    }

    #[test]
    fn relaxed_seeds_change_results() {
        let (world, grid) = tiny_setup();
        let base = GridOptions {
            algos: vec![Algo::Mc],
            ..Default::default()
        };
        let relaxed = GridOptions {
            relax_seeds: true,
            ..base.clone()
        };
        let a = run_sentiment_grid(&world, &grid, "sst2", &base);
        let b = run_sentiment_grid(&world, &grid, "sst2", &relaxed);
        // Relaxing seeds adds model randomness, so disagreement shifts for
        // at least one configuration.
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.disagreement != y.disagreement),
            "relaxed seeds had no effect"
        );
    }
}
