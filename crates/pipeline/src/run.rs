//! Grid runners: train paired downstream models over the
//! `algo x dim x precision x seed` grid and record disagreement, quality,
//! and embedding distance measures.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use embedstab_core::measures::{KnnMeasure, MeasureSuite};
use embedstab_core::{disagreement, masked_disagreement, MeasureValues};
use embedstab_downstream::eval::{entity_micro_f1, flatten_tags};
use embedstab_downstream::models::{
    BiLstmTagger, BowSentimentModel, BowTrainOptions, LstmConfig, TrainSpec,
};
use embedstab_embeddings::{Algo, Embedding};
use embedstab_quant::{bits_per_word, Precision};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::grid::EmbeddingGrid;
use crate::world::World;

/// One experiment observation: a downstream task trained on one embedding
/// configuration pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Task name (`sst2`, `mr`, `subj`, `mpqa`, `ner`).
    pub task: String,
    /// Embedding algorithm name.
    pub algo: String,
    /// Embedding dimension.
    pub dim: usize,
    /// Precision in bits.
    pub bits: u8,
    /// Memory in bits/word.
    pub memory: u64,
    /// Seed shared by embedding and downstream training.
    pub seed: u64,
    /// Downstream prediction disagreement in `[0, 1]` (entity tokens only
    /// for NER, as in the paper).
    pub disagreement: f64,
    /// Quality of the '17-side model (accuracy / micro-F1).
    pub quality17: f64,
    /// Quality of the '18-side model.
    pub quality18: f64,
    /// The five embedding distance measures, when requested.
    pub measures: Option<MeasureValues>,
}

/// Options shared by the grid runners.
#[derive(Clone, Debug)]
pub struct GridOptions {
    /// Algorithms to run.
    pub algos: Vec<Algo>,
    /// Also compute the five distance measures per configuration.
    pub with_measures: bool,
    /// EIS eigenvalue exponent (paper default 3).
    pub alpha: f64,
    /// k for the k-NN measure (paper default 5).
    pub knn_k: usize,
    /// Downstream learning-rate override (Appendix E.5 sweeps this).
    pub lr_override: Option<f64>,
    /// Use different model-init/sampling seeds for the '18-side model
    /// (Appendix E.3's relaxed-seed setting).
    pub relax_seeds: bool,
    /// Fine-tune the embeddings during downstream training at the given
    /// learning rate (Appendix E.4); sentiment only.
    pub fine_tune_lr: Option<f64>,
    /// Restrict the grid to these dimensions (default: the scale's sweep).
    pub dims: Option<Vec<usize>>,
    /// Restrict the grid to these precisions (default: the scale's sweep).
    pub precisions: Option<Vec<Precision>>,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            algos: Algo::MAIN.to_vec(),
            with_measures: false,
            alpha: 3.0,
            knn_k: 5,
            lr_override: None,
            relax_seeds: false,
            fine_tune_lr: None,
            dims: None,
            precisions: None,
        }
    }
}

/// A configuration enumerated by the runners.
type Config = (Algo, usize, Precision, u64);

fn enumerate_configs(world: &World, opts: &GridOptions) -> Vec<Config> {
    let p = &world.params;
    let dims = opts.dims.as_ref().unwrap_or(&p.dims);
    let precisions = opts.precisions.as_ref().unwrap_or(&p.precisions);
    let mut out = Vec::new();
    for &algo in &opts.algos {
        for &dim in dims {
            for &prec in precisions {
                for &seed in &p.seeds {
                    out.push((algo, dim, prec, seed));
                }
            }
        }
    }
    out
}

/// Runs a function over configurations with a small worker pool,
/// collecting results in input order.
fn parallel_map<T: Send>(configs: &[Config], f: impl Fn(Config) -> T + Sync) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(configs.len()));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    crossbeam::scope(|scope| {
        for _ in 0..workers.min(configs.len().max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let out = f(configs[i]);
                results.lock().push((i, out));
            });
        }
    })
    .expect("grid worker panicked");
    let mut results = results.into_inner();
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, t)| t).collect()
}

/// Builds the per-(algo, seed) measure suites: the EIS references are the
/// highest-dimensional full-precision pair, as in the paper.
fn measure_suites(
    world: &World,
    grid: &EmbeddingGrid,
    opts: &GridOptions,
) -> HashMap<(Algo, u64), MeasureSuite> {
    let p = &world.params;
    let max_dim = p.max_dim();
    let mut suites = HashMap::new();
    for &algo in &opts.algos {
        for &seed in &p.seeds {
            let (e17, e18) = grid.pair(algo, max_dim, seed);
            let suite = MeasureSuite::new(
                &e17.top_rows(p.top_m.min(e17.vocab_size())),
                &e18.top_rows(p.top_m.min(e18.vocab_size())),
                opts.alpha,
                seed,
            )
            .with_knn(KnnMeasure::new(opts.knn_k, p.knn_queries, seed));
            suites.insert((algo, seed), suite);
        }
    }
    suites
}

fn config_measures(
    world: &World,
    suites: &HashMap<(Algo, u64), MeasureSuite>,
    algo: Algo,
    seed: u64,
    q17: &Embedding,
    q18: &Embedding,
) -> MeasureValues {
    let m = world.params.top_m.min(q17.vocab_size());
    suites[&(algo, seed)].compute_all(&q17.top_rows(m), &q18.top_rows(m))
}

/// Runs the full grid for one sentiment task, returning one row per
/// configuration (paper Figures 1/2/6, Tables 1-3 inputs).
///
/// # Panics
///
/// Panics if `task` is not one of the world's sentiment datasets.
pub fn run_sentiment_grid(
    world: &World,
    grid: &EmbeddingGrid,
    task: &str,
    opts: &GridOptions,
) -> Vec<Row> {
    let ds = world.sentiment_dataset(task);
    let suites = if opts.with_measures {
        measure_suites(world, grid, opts)
    } else {
        HashMap::new()
    };
    let configs = enumerate_configs(world, opts);
    parallel_map(&configs, |(algo, dim, prec, seed)| {
        let (q17, q18) = grid.quantized_pair(algo, dim, seed, prec);
        let spec17 = TrainSpec {
            lr: opts.lr_override.unwrap_or(0.01),
            epochs: world.params.logreg_epochs,
            init_seed: seed,
            sample_seed: seed,
            ..Default::default()
        };
        let spec18 = if opts.relax_seeds {
            TrainSpec {
                init_seed: seed.wrapping_add(1000),
                sample_seed: seed.wrapping_add(2000),
                ..spec17.clone()
            }
        } else {
            spec17.clone()
        };
        let bow_opts = BowTrainOptions {
            fine_tune_lr: opts.fine_tune_lr,
        };
        let m17 = BowSentimentModel::train_with_options(&q17, &ds.train, &spec17, &bow_opts);
        let m18 = BowSentimentModel::train_with_options(&q18, &ds.train, &spec18, &bow_opts);
        let p17 = m17.predict(&q17, &ds.test);
        let p18 = m18.predict(&q18, &ds.test);
        let di = disagreement(&p17, &p18);
        let measures = if opts.with_measures {
            Some(config_measures(world, &suites, algo, seed, &q17, &q18))
        } else {
            None
        };
        Row {
            task: task.to_string(),
            algo: algo.name().to_string(),
            dim,
            bits: prec.bits(),
            memory: bits_per_word(dim, prec),
            seed,
            disagreement: di,
            quality17: m17.accuracy(&q17, &ds.test),
            quality18: m18.accuracy(&q18, &ds.test),
            measures,
        }
    })
}

/// Runs the full grid for the NER task with the BiLSTM tagger; instability
/// is measured over entity tokens only (paper Section 3).
pub fn run_ner_grid(world: &World, grid: &EmbeddingGrid, opts: &GridOptions) -> Vec<Row> {
    let ds = &world.ner;
    let suites = if opts.with_measures {
        measure_suites(world, grid, opts)
    } else {
        HashMap::new()
    };
    let configs = enumerate_configs(world, opts);
    parallel_map(&configs, |(algo, dim, prec, seed)| {
        let (q17, q18) = grid.quantized_pair(algo, dim, seed, prec);
        let cfg17 = LstmConfig {
            hidden: world.params.lstm_hidden,
            epochs: world.params.lstm_epochs,
            lr: opts.lr_override.unwrap_or(0.01),
            init_seed: seed,
            sample_seed: seed,
            ..Default::default()
        };
        let cfg18 = if opts.relax_seeds {
            LstmConfig {
                init_seed: seed.wrapping_add(1000),
                sample_seed: seed.wrapping_add(2000),
                ..cfg17.clone()
            }
        } else {
            cfg17.clone()
        };
        let m17 = BiLstmTagger::train(&q17, &ds.train, &cfg17);
        let m18 = BiLstmTagger::train(&q18, &ds.train, &cfg18);
        let p17 = m17.predict_all(&q17, &ds.test);
        let p18 = m18.predict_all(&q18, &ds.test);
        let (flat17, mask) = flatten_tags(&p17, &ds.test);
        let (flat18, _) = flatten_tags(&p18, &ds.test);
        let di = masked_disagreement(&flat17, &flat18, &mask);
        let measures = if opts.with_measures {
            Some(config_measures(world, &suites, algo, seed, &q17, &q18))
        } else {
            None
        };
        Row {
            task: "ner".to_string(),
            algo: algo.name().to_string(),
            dim,
            bits: prec.bits(),
            memory: bits_per_word(dim, prec),
            seed,
            disagreement: di,
            quality17: entity_micro_f1(&p17, &ds.test),
            quality18: entity_micro_f1(&p18, &ds.test),
            measures,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn tiny_setup() -> (World, EmbeddingGrid) {
        let mut params = Scale::Tiny.params();
        params.dims = vec![4, 16];
        params.precisions = vec![Precision::new(1), Precision::FULL];
        params.seeds = vec![0];
        let world = World::build(&params, 0);
        let grid = EmbeddingGrid::build(&world, &[Algo::Mc], &params.dims, &params.seeds);
        (world, grid)
    }

    #[test]
    fn sentiment_grid_produces_rows_with_shape() {
        let (world, grid) = tiny_setup();
        let opts = GridOptions {
            algos: vec![Algo::Mc],
            with_measures: true,
            ..Default::default()
        };
        let rows = run_sentiment_grid(&world, &grid, "sst2", &opts);
        assert_eq!(rows.len(), 4); // 2 dims x 2 precisions x 1 seed
        for r in &rows {
            assert!(r.disagreement >= 0.0 && r.disagreement <= 1.0);
            assert!(r.quality17 > 0.4, "degenerate quality {}", r.quality17);
            let m = r.measures.expect("measures requested");
            assert!(m.eis >= 0.0 && m.eis <= 1.0);
        }
        // Identity check on memory accounting.
        assert!(rows.iter().any(|r| r.memory == 4));
        assert!(rows.iter().any(|r| r.memory == 512));
    }

    #[test]
    fn ner_grid_runs() {
        let (world, grid) = tiny_setup();
        let opts = GridOptions {
            algos: vec![Algo::Mc],
            ..Default::default()
        };
        let rows = run_ner_grid(&world, &grid, &opts);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.task, "ner");
            assert!(r.disagreement >= 0.0 && r.disagreement <= 1.0);
            assert!(r.measures.is_none());
        }
    }

    #[test]
    fn relaxed_seeds_change_results() {
        let (world, grid) = tiny_setup();
        let base = GridOptions {
            algos: vec![Algo::Mc],
            ..Default::default()
        };
        let relaxed = GridOptions {
            relax_seeds: true,
            ..base.clone()
        };
        let a = run_sentiment_grid(&world, &grid, "sst2", &base);
        let b = run_sentiment_grid(&world, &grid, "sst2", &relaxed);
        // Relaxing seeds adds model randomness, so disagreement shifts for
        // at least one configuration.
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.disagreement != y.disagreement),
            "relaxed seeds had no effect"
        );
    }
}
