//! A versioned on-disk cache of trained + aligned embedding pairs.
//!
//! Training the full-precision `(algo, dim, seed)` grid dominates the cost
//! of an experiment at the `Small`/`Paper` scales. The cache stores each
//! aligned pair once, keyed by the world fingerprint (scale parameters +
//! master seed) and the pair key, so re-runs and sibling shard processes
//! skip straight to downstream training.
//!
//! The format is a raw little-endian dump of both matrices — `f64` bits
//! round-trip exactly, so rows computed from cached pairs are bitwise
//! identical to rows computed from freshly trained pairs (the
//! `experiment_api` integration tests pin this). Files are written to a
//! process-unique temporary sibling and atomically renamed into place,
//! which makes concurrent shard processes race-safe: the last writer wins
//! with identical bytes.

use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

use embedstab_embeddings::Embedding;
use embedstab_linalg::Mat;

use crate::grid::PairKey;

/// Bump when the file layout changes — or when a numeric change upstream
/// alters what trained pairs contain; old files are ignored, not misread.
///
/// v2: `Cooc::row_sums` switched to sorted-order accumulation, which
/// rounds PPMI (and therefore trained embeddings) differently than the
/// per-process hash-order sums v1 pairs were trained from. Reusing a v1
/// pair next to freshly trained ones would mix the two numeric regimes
/// inside one "bitwise reproducible" run, so v1 files are retired.
pub const CACHE_FORMAT_VERSION: u32 = 2;

const MAGIC: [u8; 4] = *b"ESPC";

/// Handle to one cache directory, bound to one world fingerprint.
pub struct PairCache {
    dir: PathBuf,
    world_fp: u64,
}

impl PairCache {
    /// Opens (creating if needed) a cache directory for a world with the
    /// given fingerprint.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn open(dir: impl Into<PathBuf>, world_fp: u64) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(PairCache { dir, world_fp })
    }

    /// The file path for one pair key.
    pub fn path(&self, key: PairKey) -> PathBuf {
        let (algo, dim, seed) = key;
        let algo = algo.name().to_ascii_lowercase();
        self.dir.join(format!(
            "pair_v{CACHE_FORMAT_VERSION}_{:016x}_{algo}_d{dim}_s{seed}.bin",
            self.world_fp
        ))
    }

    /// Loads a cached aligned pair, or `None` if absent, stale-versioned,
    /// or corrupt (corrupt files are treated as misses and retrained over).
    pub fn load(&self, key: PairKey) -> Option<(Embedding, Embedding)> {
        let bytes = fs::read(self.path(key)).ok()?;
        read_pair(&bytes, self.world_fp)
    }

    /// Atomically stores an aligned pair under its key.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or renaming the file.
    pub fn store(&self, key: PairKey, e17: &Embedding, e18: &Embedding) -> io::Result<()> {
        atomic_write(&self.path(key), &encode_pair(e17, e18, self.world_fp))
    }
}

/// Writes `bytes` to `path` through a process-unique temporary sibling and
/// an atomic rename, the durability convention every on-disk artifact in
/// this workspace follows (the pair cache here, `report::save_json`, and
/// the serving layer's snapshot store): readers never observe a partial
/// file, and concurrent writers race to identical final bytes.
///
/// # Errors
///
/// Returns any I/O error from writing, syncing, or renaming.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // Unique per write, not just per process: concurrent same-path writers
    // in one process must not truncate each other's temporary file.
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp{}_{seq}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Appends a matrix to `out` in the cache's raw little-endian layout:
/// `rows: u32, cols: u32, row-major f64 entries`. `f64` bits round-trip
/// exactly through [`decode_mat`], so consumers (the pair cache, snapshot
/// files) get bitwise-identical matrices back.
///
/// Delegates to [`embedstab_corpus::codec`] — the world cache encodes its
/// matrices through the same single definition of the layout, so the two
/// cache families stay byte-compatible by construction.
pub fn encode_mat(out: &mut Vec<u8>, m: &Mat) {
    embedstab_corpus::codec::put_mat(out, m)
}

fn encode_pair(e17: &Embedding, e18: &Embedding, world_fp: u64) -> Vec<u8> {
    let (n, d) = e17.shape();
    let mut out = Vec::with_capacity(32 + 2 * n * d * 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&world_fp.to_le_bytes());
    encode_mat(&mut out, e17.mat());
    encode_mat(&mut out, e18.mat());
    out
}

/// Reads one [`encode_mat`]-encoded matrix from the front of `r`,
/// advancing it past the consumed bytes. Returns `None` on truncated or
/// inconsistent input (callers treat that as a cache miss, not an error).
pub fn decode_mat(r: &mut &[u8]) -> Option<Mat> {
    embedstab_corpus::codec::take_mat(r)
}

/// Reads one little-endian `u32` from the front of `r`, advancing it —
/// the length/version primitive of the cache's file layout, shared with
/// the serving layer's snapshot decoder.
pub fn read_u32(r: &mut &[u8]) -> Option<u32> {
    embedstab_corpus::codec::take_u32(r)
}

fn read_pair(mut bytes: &[u8], world_fp: u64) -> Option<(Embedding, Embedding)> {
    let r = &mut bytes;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).ok()?;
    if magic != MAGIC || read_u32(r)? != CACHE_FORMAT_VERSION {
        return None;
    }
    let mut fp = [0u8; 8];
    r.read_exact(&mut fp).ok()?;
    if u64::from_le_bytes(fp) != world_fp {
        return None;
    }
    let m17 = decode_mat(r)?;
    let m18 = decode_mat(r)?;
    if m17.shape() != m18.shape() || !r.is_empty() {
        return None;
    }
    Some((Embedding::new(m17), Embedding::new(m18)))
}

/// A process-unique scratch directory under the system temp dir (test
/// helper; the pipeline never picks cache locations itself).
pub fn scratch_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("embedstab_{label}_{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_embeddings::Algo;
    use rand::SeedableRng;

    fn pair(seed: u64) -> (Embedding, Embedding) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            Embedding::new(Mat::random_normal(7, 3, &mut rng)),
            Embedding::new(Mat::random_normal(7, 3, &mut rng)),
        )
    }

    #[test]
    fn round_trips_bitwise() {
        let dir = scratch_dir("cache_roundtrip");
        let cache = PairCache::open(&dir, 42).expect("open");
        let key = (Algo::Mc, 3, 0);
        assert!(cache.load(key).is_none());
        let (e17, e18) = pair(5);
        cache.store(key, &e17, &e18).expect("store");
        let (l17, l18) = cache.load(key).expect("hit");
        assert_eq!(l17, e17);
        assert_eq!(l18, e18);
        // No stray temp files left behind.
        let stray = fs::read_dir(&dir)
            .expect("dir")
            .filter(|e| {
                e.as_ref()
                    .expect("entry")
                    .path()
                    .extension()
                    .is_some_and(|x| x.to_string_lossy().starts_with("tmp"))
            })
            .count();
        assert_eq!(stray, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_fingerprint_or_corrupt_file_misses() {
        let dir = scratch_dir("cache_miss");
        let cache = PairCache::open(&dir, 1).expect("open");
        let key = (Algo::Cbow, 3, 7);
        let (e17, e18) = pair(9);
        cache.store(key, &e17, &e18).expect("store");
        // A cache bound to a different world must not see the entry (the
        // fingerprint is also baked into the file name).
        let other = PairCache::open(&dir, 2).expect("open");
        assert!(other.load(key).is_none());
        // Truncated file: treated as a miss, not a panic.
        let path = cache.path(key);
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(cache.load(key).is_none());
        // Header with a bumped version: also a miss.
        let mut stale = bytes.clone();
        stale[4] = 99;
        fs::write(&path, &stale).expect("rewrite");
        assert!(cache.load(key).is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
