//! A content-addressed view over the on-disk cache families, for shipping
//! cache files between machines.
//!
//! The world cache ([`crate::world_cache`]) and the pair cache
//! ([`crate::cache`]) already key every file by a content-derived
//! fingerprint — the fingerprint is in the file *name* and repeated in the
//! file *header*. [`CacheStore`] exposes both families under those
//! existing keys with a get/put/has API, so a fleet worker with an empty
//! disk can pull exactly the bytes it needs by fingerprint and **prove it
//! got them**: [`CacheStore::put`] refuses bytes whose embedded header
//! (magic, format version, fingerprint) does not match the key they were
//! requested under, and [`content_hash`] gives transfers an end-to-end
//! whole-file checksum on top.
//!
//! Keys are the bare cache file names (`world_v1_<fp>.bin`,
//! `pair_v2_<fp>_<algo>_d<dim>_s<seed>.bin`): stable, self-describing, and
//! safe to use as a wire identifier because [`parse_key`] rejects anything
//! that is not exactly a well-formed cache file name (no path separators,
//! no `..`, no foreign extensions) — a malicious or corrupt key can never
//! escape the store's directories.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::cache::atomic_write;

/// Which cache family a key belongs to (the two families live in separate
/// directories but share one key namespace — the name prefixes differ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheFamily {
    /// A serialized [`World`](crate::World) (`world_v*_*.bin`, magic `ESWC`).
    World,
    /// A trained + aligned embedding pair (`pair_v*_*.bin`, magic `ESPC`).
    Pair,
}

impl CacheFamily {
    fn magic(self) -> [u8; 4] {
        match self {
            CacheFamily::World => *b"ESWC",
            CacheFamily::Pair => *b"ESPC",
        }
    }
}

/// A parsed cache key: family, format version, and the fingerprint that
/// both names the file and is embedded in its header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// Which family (and directory, and magic) the key addresses.
    pub family: CacheFamily,
    /// The `vN` format version baked into the name.
    pub version: u32,
    /// The fingerprint baked into the name (world fingerprint for world
    /// files, the owning world's fingerprint for pair files).
    pub fingerprint: u64,
}

/// A typed store failure: bad keys and corrupt bytes are distinct from
/// transport-level I/O errors so receivers can re-pull on corruption but
/// surface I/O problems as-is.
#[derive(Debug)]
pub enum StoreError {
    /// The key is not a well-formed cache file name.
    BadKey {
        /// The offending key.
        key: String,
    },
    /// The bytes do not carry the header the key promises (wrong magic,
    /// version, or embedded fingerprint) — a corrupt or mis-addressed
    /// transfer, never written to disk.
    Corrupt {
        /// The key the bytes were offered under.
        key: String,
        /// What failed to match.
        detail: String,
    },
    /// An underlying filesystem error.
    Io(io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadKey { key } => {
                write!(f, "'{key}' is not a well-formed cache key")
            }
            StoreError::Corrupt { key, detail } => {
                write!(f, "bytes offered under '{key}' are corrupt: {detail}")
            }
            StoreError::Io(e) => write!(f, "cache store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// FNV-1a over a whole byte string — the transfer-level checksum the fleet
/// wire pairs with the header check, so a receiver verifies it holds
/// exactly the sender's bytes (the header fingerprint only covers the
/// first sixteen bytes; this covers all of them).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parses a cache key (a bare cache file name) into its family, version,
/// and fingerprint. Returns `None` for anything else — including names
/// with path separators or `..`, so keys received over a wire cannot
/// address outside the store.
pub fn parse_key(key: &str) -> Option<CacheKey> {
    if key.contains('/') || key.contains('\\') || key.contains("..") {
        return None;
    }
    let rest = key.strip_suffix(".bin")?;
    let (family, rest) = if let Some(r) = rest.strip_prefix("world_v") {
        (CacheFamily::World, r)
    } else if let Some(r) = rest.strip_prefix("pair_v") {
        (CacheFamily::Pair, r)
    } else {
        return None;
    };
    let (version, rest) = rest.split_once('_')?;
    let version = version.parse::<u32>().ok()?;
    let (fp_hex, tail) = match family {
        CacheFamily::World => (rest, ""),
        CacheFamily::Pair => rest.split_once('_')?,
    };
    if fp_hex.len() != 16 {
        return None;
    }
    let fingerprint = u64::from_str_radix(fp_hex, 16).ok()?;
    if family == CacheFamily::Pair {
        // pair tail: <algo>_d<dim>_s<seed>, all lowercase alnum segments.
        let mut parts = tail.split('_');
        let algo = parts.next()?;
        let dim = parts.next()?.strip_prefix('d')?;
        let seed = parts.next()?.strip_prefix('s')?;
        if parts.next().is_some()
            || algo.is_empty()
            || !algo.chars().all(|c| c.is_ascii_alphanumeric())
            || dim.parse::<u64>().is_err()
            || seed.parse::<u64>().is_err()
        {
            return None;
        }
    }
    Some(CacheKey {
        family,
        version,
        fingerprint,
    })
}

/// Verifies that `bytes` really are the artifact `key` names: the header
/// magic matches the family, and the embedded format version and
/// fingerprint match the ones in the key. This is the receipt-time proof a
/// fleet worker runs before trusting a transferred cache file.
///
/// # Errors
///
/// [`StoreError::BadKey`] for an unparseable key, [`StoreError::Corrupt`]
/// naming the first mismatch otherwise.
pub fn verify(key: &str, bytes: &[u8]) -> Result<CacheKey, StoreError> {
    let parsed = parse_key(key).ok_or_else(|| StoreError::BadKey {
        key: key.to_string(),
    })?;
    let corrupt = |detail: String| StoreError::Corrupt {
        key: key.to_string(),
        detail,
    };
    if bytes.len() < 16 {
        return Err(corrupt(format!(
            "{} bytes is shorter than the 16-byte cache header",
            bytes.len()
        )));
    }
    if bytes[..4] != parsed.family.magic() {
        return Err(corrupt(format!(
            "magic {:02x?} does not match the {:?} family",
            &bytes[..4],
            parsed.family
        )));
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[4..8]);
    let version = u32::from_le_bytes(v);
    if version != parsed.version {
        return Err(corrupt(format!(
            "header format version {version} differs from the key's v{}",
            parsed.version
        )));
    }
    let mut fp = [0u8; 8];
    fp.copy_from_slice(&bytes[8..16]);
    let fingerprint = u64::from_le_bytes(fp);
    if fingerprint != parsed.fingerprint {
        return Err(corrupt(format!(
            "embedded fingerprint {fingerprint:016x} differs from the key's {:016x}",
            parsed.fingerprint
        )));
    }
    Ok(parsed)
}

/// A content-addressed get/put/has view over one world-cache directory and
/// one pair-cache directory.
pub struct CacheStore {
    world_dir: PathBuf,
    pair_dir: PathBuf,
}

impl CacheStore {
    /// Opens (creating if needed) a store over the two cache directories —
    /// the same directories the `--world-cache` / `--cache-dir` flags
    /// point at, so the store sees exactly what the pipeline reads.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating either directory.
    pub fn open(
        world_dir: impl Into<PathBuf>,
        pair_dir: impl Into<PathBuf>,
    ) -> io::Result<CacheStore> {
        let world_dir = world_dir.into();
        let pair_dir = pair_dir.into();
        fs::create_dir_all(&world_dir)?;
        fs::create_dir_all(&pair_dir)?;
        Ok(CacheStore {
            world_dir,
            pair_dir,
        })
    }

    /// The directory a key's family lives in.
    pub fn dir_for(&self, family: CacheFamily) -> &Path {
        match family {
            CacheFamily::World => &self.world_dir,
            CacheFamily::Pair => &self.pair_dir,
        }
    }

    /// The on-disk path a key resolves to, or `None` for a malformed key.
    pub fn path(&self, key: &str) -> Option<PathBuf> {
        let parsed = parse_key(key)?;
        Some(self.dir_for(parsed.family).join(key))
    }

    /// True if the keyed file exists (no content check; `get` verifies).
    pub fn has(&self, key: &str) -> bool {
        self.path(key).is_some_and(|p| p.exists())
    }

    /// Reads and verifies the keyed file. `Ok(None)` means absent; corrupt
    /// on-disk bytes are a typed error (the caller decides whether to
    /// delete, rebuild, or refuse to serve them).
    ///
    /// # Errors
    ///
    /// [`StoreError::BadKey`] for a malformed key, [`StoreError::Corrupt`]
    /// for a file whose header no longer matches its name, or any I/O
    /// error other than not-found.
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.path(key).ok_or_else(|| StoreError::BadKey {
            key: key.to_string(),
        })?;
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        verify(key, &bytes)?;
        Ok(Some(bytes))
    }

    /// Verifies `bytes` against `key` and atomically writes them into the
    /// family's directory — the receiving half of a cache transfer.
    /// Corrupt bytes never reach disk.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadKey`] / [`StoreError::Corrupt`] from
    /// [`verify`], or any I/O error from the atomic write.
    pub fn put(&self, key: &str, bytes: &[u8]) -> Result<PathBuf, StoreError> {
        let parsed = verify(key, bytes)?;
        let path = self.dir_for(parsed.family).join(key);
        atomic_write(&path, bytes)?;
        Ok(path)
    }

    /// All well-formed keys currently present, sorted (malformed file
    /// names — temp files, foreign droppings — are skipped, not errors).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from listing a directory that exists.
    pub fn keys(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for dir in [&self.world_dir, &self.pair_dir] {
            let entries = match fs::read_dir(dir) {
                Ok(entries) => entries,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            for entry in entries.flatten() {
                if let Some(name) = entry.file_name().to_str() {
                    if parse_key(name).is_some() {
                        out.push(name.to_string());
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// The pair-cache keys belonging to the world with this fingerprint —
    /// the "warm entries" a fleet worker pre-pulls so it never retrains a
    /// pair the coordinator already has.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from listing the pair directory.
    pub fn pair_keys_for_world(&self, world_fp: u64) -> io::Result<Vec<String>> {
        let keys = self.keys()?;
        Ok(keys
            .into_iter()
            .filter(|k| {
                parse_key(k)
                    .is_some_and(|p| p.family == CacheFamily::Pair && p.fingerprint == world_fp)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::scratch_dir;

    fn world_bytes(version: u32, fp: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"ESWC");
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&fp.to_le_bytes());
        out.extend_from_slice(b"payload payload payload");
        out
    }

    fn pair_bytes(version: u32, fp: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"ESPC");
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&fp.to_le_bytes());
        out.extend_from_slice(b"pairpayload");
        out
    }

    #[test]
    fn parse_key_accepts_both_families_and_rejects_junk() {
        let w = parse_key("world_v1_00000000deadbeef.bin").expect("world key");
        assert_eq!(w.family, CacheFamily::World);
        assert_eq!(w.version, 1);
        assert_eq!(w.fingerprint, 0xdead_beef);
        let p = parse_key("pair_v2_00000000deadbeef_cbow_d25_s0.bin").expect("pair key");
        assert_eq!(p.family, CacheFamily::Pair);
        assert_eq!(p.version, 2);
        assert_eq!(p.fingerprint, 0xdead_beef);
        for bad in [
            "",
            "world_v1_00000000deadbeef",                  // no extension
            "world_v1_deadbeef.bin",                      // short fingerprint
            "world_vx_00000000deadbeef.bin",              // non-numeric version
            "../world_v1_00000000deadbeef.bin",           // traversal
            "a/world_v1_00000000deadbeef.bin",            // separator
            "a\\world_v1_00000000deadbeef.bin",           // windows separator
            "snap_v1_00000000deadbeef.bin",               // foreign family
            "pair_v2_00000000deadbeef.bin",               // pair without tail
            "pair_v2_00000000deadbeef_cbow.bin",          // pair tail too short
            "pair_v2_00000000deadbeef_cbow_d25_s0_x.bin", // tail too long
            "pair_v2_00000000deadbeef_cb/ow_d2_s0.bin",
            "world_v1_00000000deadbeef.bin.tmp123",
        ] {
            assert!(parse_key(bad).is_none(), "'{bad}' must not parse");
        }
    }

    #[test]
    fn real_cache_paths_round_trip_through_keys() {
        // The store's key syntax must match what the cache families
        // actually write, or fleet workers could never address real files.
        let dir = scratch_dir("store_key_compat");
        std::fs::remove_dir_all(&dir).ok();
        let cache = crate::WorldCache::open(dir.join("w")).expect("open");
        let params = crate::Scale::Tiny.params();
        let path = cache.path(&params, 0);
        let name = path.file_name().expect("name").to_str().expect("utf8");
        let parsed = parse_key(name).expect("world cache names parse as keys");
        assert_eq!(parsed.family, CacheFamily::World);
        assert_eq!(parsed.version, crate::WORLD_CACHE_FORMAT_VERSION);
        assert_eq!(parsed.fingerprint, crate::world_fingerprint(&params, 0));

        let pc = crate::PairCache::open(dir.join("p"), 0xfeed).expect("open");
        let path = pc.path((embedstab_embeddings::Algo::Cbow, 25, 3));
        let name = path.file_name().expect("name").to_str().expect("utf8");
        let parsed = parse_key(name).expect("pair cache names parse as keys");
        assert_eq!(parsed.family, CacheFamily::Pair);
        assert_eq!(parsed.version, crate::CACHE_FORMAT_VERSION);
        assert_eq!(parsed.fingerprint, 0xfeed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_verifies_and_get_round_trips() {
        let root = scratch_dir("store_putget");
        std::fs::remove_dir_all(&root).ok();
        let store = CacheStore::open(root.join("world"), root.join("pair")).expect("open");
        let key = "world_v1_00000000000000aa.bin";
        let bytes = world_bytes(1, 0xaa);
        assert!(!store.has(key));
        assert!(store.get(key).expect("absent is ok-none").is_none());
        let path = store.put(key, &bytes).expect("put");
        assert!(path.starts_with(root.join("world")));
        assert!(store.has(key));
        assert_eq!(store.get(key).expect("get").expect("present"), bytes);

        let pkey = "pair_v2_00000000000000aa_cbow_d25_s0.bin";
        store.put(pkey, &pair_bytes(2, 0xaa)).expect("pair put");
        assert!(store
            .path(pkey)
            .expect("path")
            .starts_with(root.join("pair")));
        assert_eq!(
            store.keys().expect("keys"),
            vec![pkey.to_string(), key.to_string()]
        );
        assert_eq!(
            store.pair_keys_for_world(0xaa).expect("warm"),
            vec![pkey.to_string()]
        );
        assert!(store.pair_keys_for_world(0xbb).expect("warm").is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn put_refuses_mismatched_bytes() {
        let root = scratch_dir("store_refuse");
        std::fs::remove_dir_all(&root).ok();
        let store = CacheStore::open(root.join("world"), root.join("pair")).expect("open");
        let key = "world_v1_00000000000000aa.bin";
        // Wrong fingerprint in the header.
        match store.put(key, &world_bytes(1, 0xbb)) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("fingerprint mismatch must be Corrupt, got {other:?}"),
        }
        // Wrong version in the header.
        match store.put(key, &world_bytes(9, 0xaa)) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("version mismatch must be Corrupt, got {other:?}"),
        }
        // Wrong family magic.
        match store.put(key, &pair_bytes(1, 0xaa)) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("magic mismatch must be Corrupt, got {other:?}"),
        }
        // Truncated header.
        match store.put(key, b"ESWC") {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("short bytes must be Corrupt, got {other:?}"),
        }
        // Malformed key.
        match store.put("../evil.bin", &world_bytes(1, 0xaa)) {
            Err(StoreError::BadKey { .. }) => {}
            other => panic!("bad key must be BadKey, got {other:?}"),
        }
        // Nothing reached disk.
        assert!(!store.has(key));
        assert!(store.keys().expect("keys").is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn get_flags_on_disk_corruption() {
        let root = scratch_dir("store_disk_corrupt");
        std::fs::remove_dir_all(&root).ok();
        let store = CacheStore::open(root.join("world"), root.join("pair")).expect("open");
        let key = "world_v1_00000000000000aa.bin";
        store.put(key, &world_bytes(1, 0xaa)).expect("put");
        // Smash the embedded fingerprint on disk.
        let path = store.path(key).expect("path");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[8] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");
        match store.get(key) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("corrupt disk bytes must be Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn content_hash_is_order_sensitive_and_stable() {
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
        assert_eq!(content_hash(b"fleet"), content_hash(b"fleet"));
    }
}
