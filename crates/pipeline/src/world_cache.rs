//! A versioned on-disk cache of fully built [`World`]s.
//!
//! At the `Paper` scale, building the world — sampling two multi-million
//! token corpora, counting two co-occurrence tables, factoring PPMI, and
//! generating five downstream datasets — dominates the cost of a *sharded*
//! grid run, because every shard process used to rebuild it from scratch.
//! The world cache closes that gap: the coordinator (or any first run)
//! builds the world once, serializes it, and every sibling process loads
//! it back **bitwise identical** — the stability protocol's guarantee that
//! a sharded run reproduces the unsharded run exactly survives the
//! round trip (`tests/world_cache.rs` and the bench crate's `coordinator`
//! test pin this).
//!
//! The file rides the same conventions as the pair cache
//! ([`crate::cache`]): a magic + format-version + fingerprint header, raw
//! little-endian `f64` bit dumps for every float, and atomic tmp+rename
//! writes so concurrent processes race safely to identical bytes. Note
//! that the co-occurrence tables and the PPMI matrix are **stored, not
//! recomputed** on load: their floats were accumulated in counting order,
//! and recomputation would round differently.
//!
//! The cache key is [`world_fingerprint`], which mixes the master seed and
//! *every* [`ScaleParams`] field — unlike the pair-cache fingerprint
//! ([`World::fingerprint`]), which only covers the five corpus-shaping
//! parameters. A trained pair really is identical across dataset-size
//! changes, but a cached *world* is not: it embeds the sentiment/NER
//! datasets, so reusing one across e.g. a `sentiment_train` change would
//! silently evaluate the wrong data.

use std::fs;
use std::io::{self, Read as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use embedstab_corpus::{codec, Cooc, SparseMatrix, TemporalPair};
use embedstab_downstream::{NerDataset, SentimentDataset};
use embedstab_embeddings::CorpusStats;

use crate::cache::atomic_write;
use crate::scale::ScaleParams;
use crate::world::World;

/// Bump when the world file layout changes; old files are ignored, not
/// misread.
pub const WORLD_CACHE_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"ESWC";

/// A stable fingerprint of everything that determines a built [`World`]:
/// the master seed and **all** scale parameters, including the
/// dataset-shaping ones (`sentiment_train`, `ner_test`, ...) and the
/// sweep/downstream knobs. Deliberately conservative: a changed `dims`
/// list rebuilds a world it could in principle have reused, but no cached
/// world is ever wrongly reused across a parameter change (the
/// perturb-each-field test below pins that every field matters).
pub fn world_fingerprint(params: &ScaleParams, master_seed: u64) -> u64 {
    // FNV-1a, like the pair-cache fingerprint, but over a tagged,
    // length-prefixed field list so the two key spaces cannot collide by
    // construction order.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for b in b"world-cache" {
        mix(*b as u64);
    }
    mix(master_seed);
    mix(params.vocab_size as u64);
    mix(params.n_topics as u64);
    mix(params.latent_dim as u64);
    mix(params.corpus_tokens as u64);
    mix(params.window as u64);
    mix(params.dims.len() as u64);
    for &d in &params.dims {
        mix(d as u64);
    }
    mix(params.precisions.len() as u64);
    for &p in &params.precisions {
        mix(p.bits() as u64);
    }
    mix(params.seeds.len() as u64);
    for &s in &params.seeds {
        mix(s);
    }
    mix(params.top_m as u64);
    mix(params.sentiment_train as u64);
    mix(params.sentiment_test as u64);
    mix(params.ner_train as u64);
    mix(params.ner_test as u64);
    mix(params.lstm_hidden as u64);
    mix(params.lstm_epochs as u64);
    mix(params.logreg_epochs as u64);
    mix(params.knn_queries as u64);
    h
}

/// Handle to one world-cache directory.
///
/// Unlike [`PairCache`](crate::cache::PairCache), the handle is not bound
/// to a single fingerprint: one directory can hold worlds for several
/// scales (the fingerprint is in both the file name and the header).
pub struct WorldCache {
    dir: PathBuf,
}

impl WorldCache {
    /// Opens (creating if needed) a world-cache directory.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(WorldCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path for one `(params, master_seed)` world.
    pub fn path(&self, params: &ScaleParams, master_seed: u64) -> PathBuf {
        self.dir.join(format!(
            "world_v{WORLD_CACHE_FORMAT_VERSION}_{:016x}.bin",
            world_fingerprint(params, master_seed)
        ))
    }

    /// True if a world for `(params, master_seed)` is already stored.
    pub fn contains(&self, params: &ScaleParams, master_seed: u64) -> bool {
        self.path(params, master_seed).exists()
    }

    /// Loads the cached world for `(params, master_seed)`, or `None` if
    /// absent, stale-versioned, or corrupt (all treated as misses, never
    /// errors — a rebuild over-writes the bad file).
    pub fn load(&self, params: &ScaleParams, master_seed: u64) -> Option<World> {
        let bytes = fs::read(self.path(params, master_seed)).ok()?;
        decode_world(&bytes, params, master_seed)
    }

    /// Atomically stores a built world under its fingerprint.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or renaming the file.
    pub fn store(&self, world: &World) -> io::Result<PathBuf> {
        let path = self.path(&world.params, world.master_seed);
        atomic_write(&path, &encode_world(world))?;
        Ok(path)
    }
}

fn encode_world(world: &World) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&WORLD_CACHE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&world_fingerprint(&world.params, world.master_seed).to_le_bytes());
    world.pair.encode_into(&mut out);
    for stats in [&world.stats17, &world.stats18] {
        stats.cooc_flat.encode_into(&mut out);
        stats.cooc_weighted.encode_into(&mut out);
        stats.ppmi.encode_into(&mut out);
        codec::put_u64_slice(&mut out, &stats.unigram_counts);
    }
    // A dataset count past u32::MAX would truncate into a header that
    // decodes cleanly but describes fewer datasets; real worlds hold two.
    debug_assert!(world.sentiment.len() <= u32::MAX as usize);
    codec::put_u32(&mut out, world.sentiment.len() as u32);
    for ds in &world.sentiment {
        ds.encode_into(&mut out);
    }
    world.ner.encode_into(&mut out);
    out
}

fn decode_world(mut bytes: &[u8], params: &ScaleParams, master_seed: u64) -> Option<World> {
    let r = &mut bytes;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).ok()?;
    if magic != MAGIC || codec::take_u32(r)? != WORLD_CACHE_FORMAT_VERSION {
        return None;
    }
    if codec::take_u64(r)? != world_fingerprint(params, master_seed) {
        return None;
    }
    let pair = TemporalPair::decode_from(r)?;
    if pair.model17.vocab_size() != params.vocab_size {
        return None;
    }
    let mut stats = Vec::with_capacity(2);
    for corpus in [&pair.corpus17, &pair.corpus18] {
        let cooc_flat = Cooc::decode_from(r)?;
        let cooc_weighted = Cooc::decode_from(r)?;
        let ppmi = SparseMatrix::decode_from(r)?;
        let unigram_counts = codec::take_u64_slice(r)?;
        if cooc_flat.n() != params.vocab_size
            || cooc_weighted.n() != params.vocab_size
            || ppmi.n_rows() != params.vocab_size
            || unigram_counts.len() != params.vocab_size
        {
            return None;
        }
        stats.push(CorpusStats {
            corpus: Arc::new((*corpus).clone()),
            vocab_size: params.vocab_size,
            window: params.window,
            cooc_flat,
            cooc_weighted,
            ppmi,
            unigram_counts,
        });
    }
    let stats18 = stats.pop().expect("two stats");
    let stats17 = stats.pop().expect("two stats");
    let n_sentiment = codec::take_u32(r)? as usize;
    let mut sentiment = Vec::with_capacity(n_sentiment.min(16));
    for _ in 0..n_sentiment {
        sentiment.push(Arc::new(SentimentDataset::decode_from(r)?));
    }
    let ner = Arc::new(NerDataset::decode_from(r)?);
    if !r.is_empty() {
        return None;
    }
    Some(World {
        params: params.clone(),
        master_seed,
        pair,
        stats17,
        stats18,
        sentiment,
        ner,
    })
}

impl World {
    /// Loads the world for `(params, master_seed)` from `cache_dir`, or —
    /// on a miss — builds it and stores it for the next process. This is
    /// the entry point the shard `coordinator` and the bench binaries'
    /// `--world-cache` flag ride: the coordinator warms the cache once and
    /// every shard subprocess loads instead of rebuilding.
    ///
    /// A load is logged as `[world] loaded ...` and a build as
    /// `[world] built ...` (the coordinator's integration test asserts on
    /// these markers to prove shards never rebuild). A failed store is a
    /// warning, not an error: the built world is still returned.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the cache directory.
    pub fn load_or_build(
        params: &ScaleParams,
        master_seed: u64,
        cache_dir: impl Into<PathBuf>,
    ) -> io::Result<World> {
        let cache = WorldCache::open(cache_dir)?;
        if let Some(world) = cache.load(params, master_seed) {
            eprintln!(
                "[world] loaded {}",
                cache.path(params, master_seed).display()
            );
            return Ok(world);
        }
        let world = World::build(params, master_seed);
        match cache.store(&world) {
            Ok(path) => eprintln!("[world] built and stored {}", path.display()),
            Err(e) => eprintln!("[world] warning: built but could not store: {e}"),
        }
        Ok(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::scratch_dir;
    use crate::scale::Scale;
    use embedstab_quant::Precision;

    fn tiny_params() -> ScaleParams {
        let mut params = Scale::Tiny.params();
        params.corpus_tokens = 4000;
        params.sentiment_train = 60;
        params.sentiment_test = 40;
        params.ner_train = 30;
        params.ner_test = 20;
        params
    }

    /// Every `ScaleParams` field (and the master seed) must move the
    /// world-cache fingerprint — a cached world must never be reused
    /// across a parameter change, dataset sizes included.
    #[test]
    fn fingerprint_covers_every_field() {
        let base = tiny_params();
        let perturbations: Vec<(&str, ScaleParams)> = vec![
            ("vocab_size", {
                let mut p = base.clone();
                p.vocab_size += 1;
                p
            }),
            ("n_topics", {
                let mut p = base.clone();
                p.n_topics += 1;
                p
            }),
            ("latent_dim", {
                let mut p = base.clone();
                p.latent_dim += 1;
                p
            }),
            ("corpus_tokens", {
                let mut p = base.clone();
                p.corpus_tokens += 1;
                p
            }),
            ("window", {
                let mut p = base.clone();
                p.window += 1;
                p
            }),
            ("dims", {
                let mut p = base.clone();
                p.dims.push(99);
                p
            }),
            ("precisions", {
                let mut p = base.clone();
                p.precisions.push(Precision::new(2));
                p
            }),
            ("seeds", {
                let mut p = base.clone();
                p.seeds.push(7);
                p
            }),
            ("top_m", {
                let mut p = base.clone();
                p.top_m += 1;
                p
            }),
            ("sentiment_train", {
                let mut p = base.clone();
                p.sentiment_train += 1;
                p
            }),
            ("sentiment_test", {
                let mut p = base.clone();
                p.sentiment_test += 1;
                p
            }),
            ("ner_train", {
                let mut p = base.clone();
                p.ner_train += 1;
                p
            }),
            ("ner_test", {
                let mut p = base.clone();
                p.ner_test += 1;
                p
            }),
            ("lstm_hidden", {
                let mut p = base.clone();
                p.lstm_hidden += 1;
                p
            }),
            ("lstm_epochs", {
                let mut p = base.clone();
                p.lstm_epochs += 1;
                p
            }),
            ("logreg_epochs", {
                let mut p = base.clone();
                p.logreg_epochs += 1;
                p
            }),
            ("knn_queries", {
                let mut p = base.clone();
                p.knn_queries += 1;
                p
            }),
        ];
        let mut seen = vec![("base", world_fingerprint(&base, 0))];
        seen.push(("master_seed", world_fingerprint(&base, 1)));
        for (field, p) in &perturbations {
            seen.push((field, world_fingerprint(p, 0)));
        }
        for (i, &(fa, a)) in seen.iter().enumerate() {
            for &(fb, b) in &seen[i + 1..] {
                assert_ne!(a, b, "fingerprint collision between {fa} and {fb}");
            }
        }
    }

    /// The pair-cache fingerprint intentionally ignores dataset-shaping
    /// params (a trained pair does not depend on them); the world-cache
    /// fingerprint must not.
    #[test]
    fn world_fingerprint_is_stricter_than_pair_fingerprint() {
        let base = tiny_params();
        let mut bigger = base.clone();
        bigger.sentiment_train += 100;
        let wa = World::build(&base, 0);
        let wb = World::build(&bigger, 0);
        assert_eq!(wa.fingerprint(), wb.fingerprint());
        assert_ne!(
            world_fingerprint(&base, 0),
            world_fingerprint(&bigger, 0),
            "dataset sizes must key the world cache"
        );
    }

    #[test]
    fn store_load_round_trips_the_world() {
        let dir = scratch_dir("world_cache_roundtrip");
        std::fs::remove_dir_all(&dir).ok();
        let params = tiny_params();
        let cache = WorldCache::open(&dir).expect("open");
        assert!(!cache.contains(&params, 3));
        assert!(cache.load(&params, 3).is_none());
        let built = World::build(&params, 3);
        cache.store(&built).expect("store");
        assert!(cache.contains(&params, 3));
        let loaded = cache.load(&params, 3).expect("hit");
        assert_eq!(loaded.master_seed, 3);
        assert_eq!(
            loaded.pair.model17.word_vecs.as_slice(),
            built.pair.model17.word_vecs.as_slice()
        );
        assert_eq!(loaded.pair.corpus18.docs(), built.pair.corpus18.docs());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&loaded.stats17.cooc_flat.row_sums()),
            bits(&built.stats17.cooc_flat.row_sums())
        );
        assert_eq!(
            loaded.stats18.ppmi.to_entries().len(),
            built.stats18.ppmi.to_entries().len()
        );
        assert_eq!(loaded.stats17.unigram_counts, built.stats17.unigram_counts);
        assert_eq!(loaded.sentiment.len(), built.sentiment.len());
        for (l, b) in loaded.sentiment.iter().zip(&built.sentiment) {
            assert_eq!(l.name, b.name);
            assert_eq!(l.train, b.train);
            assert_eq!(l.test, b.test);
        }
        assert_eq!(loaded.ner.train, built.ner.train);
        // A different master seed misses.
        assert!(cache.load(&params, 4).is_none());
        // A truncated file is a miss, not an error (and rebuildable).
        let path = cache.path(&params, 3);
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");
        assert!(cache.load(&params, 3).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_build_builds_then_loads() {
        let dir = scratch_dir("world_cache_lob");
        std::fs::remove_dir_all(&dir).ok();
        let params = tiny_params();
        let first = World::load_or_build(&params, 0, &dir).expect("build");
        assert!(WorldCache::open(&dir).expect("open").contains(&params, 0));
        let second = World::load_or_build(&params, 0, &dir).expect("load");
        assert_eq!(
            first.pair.model18.word_vecs.as_slice(),
            second.pair.model18.word_vecs.as_slice()
        );
        assert_eq!(
            first.stats18.cooc_weighted.total().to_bits(),
            second.stats18.cooc_weighted.total().to_bits()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
