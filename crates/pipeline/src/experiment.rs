//! The `Experiment` builder: one orchestration surface for every grid run.
//!
//! The paper's protocol is a single loop — train an embedding pair,
//! compress it, train paired downstream models, record disagreement — and
//! this module is its one implementation. Tasks plug in through the
//! [`Task`] trait, so sentiment, NER, and future task families all share
//! the same grid plumbing, sharding, caching, and row streaming:
//!
//! ```no_run
//! use embedstab_pipeline::{Experiment, JsonlSink, Scale, World};
//!
//! let world = World::build(&Scale::Small.params(), 0);
//! let rows = Experiment::new(&world)
//!     .tasks(["sst2", "ner"])
//!     .with_measures(true)
//!     .shard(0, 2)                       // this process covers half the grid
//!     .cache_dir("cache")                // share trained pairs across shards
//!     .sink(JsonlSink::new("results/rows.jsonl"))
//!     .run();
//! # let _ = rows;
//! ```
//!
//! Configurations are enumerated deterministically as
//! `task x algo x dim x precision x seed`; [`Experiment::shard`] keeps
//! every `n`-th configuration, so the union over shards `0..n` is exactly
//! the unsharded run (the `experiment_api` integration tests pin this,
//! bitwise).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use embedstab_core::measures::{KnnMeasure, MeasureSuite};
use embedstab_core::MeasureValues;
use embedstab_downstream::{NerTask, PairSpec, SentimentTask, Task};
use embedstab_embeddings::{Algo, Embedding};
use embedstab_quant::{bits_per_word, Precision};
use parking_lot::Mutex;

use crate::cache::PairCache;
use crate::grid::{EmbeddingGrid, PairKey};
use crate::pool::parallel_map;
use crate::run::{GridOptions, Row};
use crate::sink::RowSink;
use crate::world::World;
use crate::world_cache::WorldCache;

/// One enumerated grid configuration: `(task index, algo, dim, precision,
/// seed)`.
type Config = (usize, Algo, usize, Precision, u64);

/// A predicate over `(algo, dim, precision, seed)` restricting the grid to
/// arbitrary configuration subsets (e.g. a fixed memory budget).
type ConfigFilter = dyn Fn(Algo, usize, Precision, u64) -> bool + Send + Sync;

enum TaskSpec {
    /// Resolved against the world at run time: `"ner"` or a sentiment
    /// dataset name.
    Named(String),
    /// A caller-supplied task implementation.
    Custom(Arc<dyn Task>),
}

/// Fluent builder for one grid run. See the [module docs](self) for the
/// shape of the API and `run.rs` for the legacy entry points it replaces.
pub struct Experiment<'w> {
    world: &'w World,
    grid: Option<&'w EmbeddingGrid>,
    tasks: Vec<TaskSpec>,
    opts: GridOptions,
    filters: Vec<Box<ConfigFilter>>,
    shard: Option<(usize, usize)>,
    cache_dir: Option<PathBuf>,
    world_cache: Option<PathBuf>,
    sinks: Vec<Box<dyn RowSink>>,
}

impl<'w> Experiment<'w> {
    /// Starts an experiment over a built world with default options (the
    /// three main algorithms, no measures, no sharding, no cache).
    pub fn new(world: &'w World) -> Self {
        Experiment {
            world,
            grid: None,
            tasks: Vec::new(),
            opts: GridOptions::default(),
            filters: Vec::new(),
            shard: None,
            cache_dir: None,
            world_cache: None,
            sinks: Vec::new(),
        }
    }

    /// Adds tasks by name: `"ner"`, or any of the world's sentiment
    /// datasets (`"sst2"`, `"mr"`, `"subj"`, `"mpqa"`).
    pub fn tasks<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.tasks
            .extend(names.into_iter().map(|n| TaskSpec::Named(n.into())));
        self
    }

    /// Adds a custom [`Task`] implementation (the extension point for KGE,
    /// contextual, or ad-hoc tasks).
    pub fn task(mut self, task: Arc<dyn Task>) -> Self {
        self.tasks.push(TaskSpec::Custom(task));
        self
    }

    /// Restricts the run to these algorithms (default: [`Algo::MAIN`]).
    pub fn algos(mut self, algos: impl IntoIterator<Item = Algo>) -> Self {
        self.opts.algos = algos.into_iter().collect();
        self
    }

    /// Restricts the grid to these dimensions (default: the scale's
    /// sweep).
    pub fn dims(mut self, dims: impl IntoIterator<Item = usize>) -> Self {
        self.opts.dims = Some(dims.into_iter().collect());
        self
    }

    /// Restricts the grid to these precisions (default: the scale's
    /// sweep).
    pub fn precisions(mut self, precisions: impl IntoIterator<Item = Precision>) -> Self {
        self.opts.precisions = Some(precisions.into_iter().collect());
        self
    }

    /// Also computes the five embedding distance measures per
    /// configuration.
    pub fn with_measures(mut self, yes: bool) -> Self {
        self.opts.with_measures = yes;
        self
    }

    /// Overrides the downstream learning rate (Appendix E.5).
    pub fn lr_override(mut self, lr: f64) -> Self {
        self.opts.lr_override = Some(lr);
        self
    }

    /// Uses different model-init/sampling seeds on the '18 side
    /// (Appendix E.3).
    pub fn relax_seeds(mut self, yes: bool) -> Self {
        self.opts.relax_seeds = yes;
        self
    }

    /// Fine-tunes embeddings during downstream training (Appendix E.4;
    /// sentiment only).
    pub fn fine_tune_lr(mut self, lr: f64) -> Self {
        self.opts.fine_tune_lr = Some(lr);
        self
    }

    /// Replaces the whole options bag at once (how the legacy
    /// `run_*_grid` wrappers delegate here).
    pub fn options(mut self, opts: GridOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Keeps only configurations matching the predicate — applied before
    /// sharding, so all shards agree on the filtered enumeration.
    ///
    /// Repeated calls compose with AND: a configuration survives only if
    /// every registered predicate accepts it, so orthogonal restrictions
    /// (a memory budget, an algorithm subset) can be added independently.
    pub fn filter(
        mut self,
        f: impl Fn(Algo, usize, Precision, u64) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.filters.push(Box::new(f));
        self
    }

    /// Runs only shard `index` of `n` disjoint shards: configuration `i`
    /// of the (filtered) enumeration belongs to shard `i % n`. The union
    /// of rows over shards `0..n` equals the unsharded run exactly.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n` or `n == 0`.
    pub fn shard(mut self, index: usize, n: usize) -> Self {
        assert!(n > 0, "shard count must be positive");
        assert!(index < n, "shard index {index} out of range for {n} shards");
        self.shard = Some((index, n));
        self
    }

    /// Caches trained + aligned embedding pairs under `dir`, keyed by
    /// `(world fingerprint, algo, dim, seed)` — re-runs and sibling shard
    /// processes load instead of training.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Persists this experiment's (already built) world into the
    /// [`WorldCache`] at `dir` when `run` starts, unless it is already
    /// stored — so sibling shard processes and future runs can
    /// [`World::load_or_build`] it instead of rebuilding. Store failures
    /// are warnings: a dying disk must not abort the grid run itself.
    pub fn world_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.world_cache = Some(dir.into());
        self
    }

    /// Supplies a pre-built embedding grid instead of training one (must
    /// cover every configuration the run touches). `cache_dir` then only
    /// matters for grids built by future runs.
    pub fn grid(mut self, grid: &'w EmbeddingGrid) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Streams completed rows to `sink` (in completion order) in addition
    /// to returning them. May be called multiple times.
    pub fn sink(mut self, sink: impl RowSink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Enumerates this experiment's configurations after filtering and
    /// sharding, in deterministic order.
    fn configs(&self, n_tasks: usize) -> Vec<Config> {
        let p = &self.world.params;
        let dims = self.opts.dims.as_ref().unwrap_or(&p.dims);
        let precisions = self.opts.precisions.as_ref().unwrap_or(&p.precisions);
        let mut out = Vec::new();
        for task in 0..n_tasks {
            for &algo in &self.opts.algos {
                for &dim in dims {
                    for &prec in precisions {
                        for &seed in &p.seeds {
                            if self.filters.iter().all(|f| f(algo, dim, prec, seed)) {
                                out.push((task, algo, dim, prec, seed));
                            }
                        }
                    }
                }
            }
        }
        if let Some((index, n)) = self.shard {
            out = out
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % n == index)
                .map(|(_, c)| c)
                .collect();
        }
        out
    }

    /// Resolves named tasks against the world.
    fn resolve_tasks(&self) -> Vec<Arc<dyn Task>> {
        let p = &self.world.params;
        self.tasks
            .iter()
            .map(|spec| match spec {
                TaskSpec::Named(name) if name == "ner" => Arc::new(NerTask::new(
                    self.world.ner.clone(),
                    p.lstm_hidden,
                    p.lstm_epochs,
                )) as Arc<dyn Task>,
                TaskSpec::Named(name) => Arc::new(SentimentTask::new(
                    self.world.sentiment_dataset_arc(name).clone(),
                    p.logreg_epochs,
                )) as Arc<dyn Task>,
                TaskSpec::Custom(task) => task.clone(),
            })
            .collect()
    }

    /// The pair keys this run needs: every sharded configuration's
    /// full-precision pair, plus (when measures are on) the max-dimension
    /// EIS reference pair for each `(algo, seed)` in play.
    fn needed_pairs(&self, configs: &[Config]) -> Vec<PairKey> {
        let mut keys: Vec<PairKey> = configs.iter().map(|&(_, a, d, _, s)| (a, d, s)).collect();
        if self.opts.with_measures {
            let max_dim = self.world.params.max_dim();
            keys.extend(configs.iter().map(|&(_, a, _, _, s)| (a, max_dim, s)));
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Runs the grid: trains (or loads) the embedding pairs, evaluates
    /// every task on every sharded configuration in parallel, streams rows
    /// to the sinks, and returns them in enumeration order.
    ///
    /// # Panics
    ///
    /// Panics if no tasks were added, a named task does not exist in the
    /// world, or a supplied grid is missing a required pair.
    pub fn run(mut self) -> Vec<Row> {
        assert!(
            !self.tasks.is_empty(),
            "Experiment needs at least one task; call .tasks([...]) or .task(...)"
        );
        let tasks = self.resolve_tasks();
        let configs = self.configs(tasks.len());
        if let Some(dir) = &self.world_cache {
            match WorldCache::open(dir) {
                Ok(cache) if !cache.contains(&self.world.params, self.world.master_seed) => {
                    if let Err(e) = cache.store(self.world) {
                        eprintln!("[world] warning: could not store world cache: {e}");
                    }
                }
                Ok(_) => {}
                Err(e) => eprintln!(
                    "[world] warning: cannot open world cache {}: {e}",
                    dir.display()
                ),
            }
        }
        let cache = self.cache_dir.as_ref().map(|dir| {
            PairCache::open(dir, self.world.fingerprint())
                .unwrap_or_else(|e| panic!("cannot open cache dir {}: {e}", dir.display()))
        });
        let built;
        let grid = match self.grid {
            Some(grid) => grid,
            None => {
                built = EmbeddingGrid::build_pairs(
                    self.world,
                    &self.needed_pairs(&configs),
                    cache.as_ref(),
                );
                &built
            }
        };
        let suites = if self.opts.with_measures {
            measure_suites(self.world, grid, &configs, &self.opts)
        } else {
            BTreeMap::new()
        };
        for sink in &mut self.sinks {
            sink.start(configs.len());
        }
        let sinks = Mutex::new(self.sinks);
        let world = self.world;
        let opts = &self.opts;
        let rows = parallel_map(&configs, |&(task_idx, algo, dim, prec, seed)| {
            let task = &tasks[task_idx];
            let (q17, q18) = grid.quantized_pair(algo, dim, seed, prec);
            let spec = PairSpec {
                seed,
                lr_override: opts.lr_override,
                relax_seeds: opts.relax_seeds,
                fine_tune_lr: opts.fine_tune_lr,
            };
            let outcome = task.train_eval(&q17, &q18, &spec);
            let measures = if opts.with_measures {
                Some(config_measures(world, &suites, algo, seed, &q17, &q18))
            } else {
                None
            };
            let row = Row {
                task: task.name().to_string(),
                algo: algo.name().to_string(),
                dim,
                bits: prec.bits(),
                memory: bits_per_word(dim, prec),
                seed,
                disagreement: outcome.disagreement,
                quality17: outcome.quality17,
                quality18: outcome.quality18,
                measures,
            };
            for sink in sinks.lock().iter_mut() {
                sink.emit(&row);
            }
            row
        });
        for sink in sinks.into_inner().iter_mut() {
            sink.finish();
        }
        rows
    }
}

/// Builds the per-(algo, seed) measure suites: the EIS references are the
/// highest-dimensional full-precision pair, as in the paper.
fn measure_suites(
    world: &World,
    grid: &EmbeddingGrid,
    configs: &[Config],
    opts: &GridOptions,
) -> BTreeMap<(Algo, u64), MeasureSuite> {
    // BTreeMap, not HashMap: suites are only read by keyed lookup today,
    // but a future "iterate all suites into a summary" would float-sum in
    // SipHash order and break the bitwise shard/unsharded equivalence.
    // Key-ordered storage closes that door.
    let p = &world.params;
    let max_dim = p.max_dim();
    let mut suites = BTreeMap::new();
    for &(_, algo, _, _, seed) in configs {
        suites.entry((algo, seed)).or_insert_with(|| {
            let (e17, e18) = grid.pair(algo, max_dim, seed);
            MeasureSuite::new(
                &e17.top_rows(p.top_m.min(e17.vocab_size())),
                &e18.top_rows(p.top_m.min(e18.vocab_size())),
                opts.alpha,
                seed,
            )
            .with_knn(KnnMeasure::new(opts.knn_k, p.knn_queries, seed))
        });
    }
    suites
}

fn config_measures(
    world: &World,
    suites: &BTreeMap<(Algo, u64), MeasureSuite>,
    algo: Algo,
    seed: u64,
    q17: &Embedding,
    q18: &Embedding,
) -> MeasureValues {
    let m = world.params.top_m.min(q17.vocab_size());
    suites[&(algo, seed)].compute_all(&q17.top_rows(m), &q18.top_rows(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn tiny_world() -> World {
        let mut params = Scale::Tiny.params();
        params.dims = vec![4, 8];
        params.precisions = vec![Precision::new(1), Precision::FULL];
        params.seeds = vec![0];
        World::build(&params, 0)
    }

    #[test]
    fn builder_runs_and_orders_rows() {
        let world = tiny_world();
        let rows = Experiment::new(&world)
            .tasks(["sst2"])
            .algos([Algo::Mc])
            .run();
        assert_eq!(rows.len(), 4); // 2 dims x 2 precisions x 1 seed
                                   // Enumeration order: dim-major, precision inner.
        assert_eq!(
            rows.iter().map(|r| (r.dim, r.bits)).collect::<Vec<_>>(),
            vec![(4, 1), (4, 32), (8, 1), (8, 32)]
        );
    }

    #[test]
    fn filter_restricts_configs() {
        let world = tiny_world();
        let rows = Experiment::new(&world)
            .tasks(["sst2"])
            .algos([Algo::Mc])
            .filter(|_, dim, prec, _| bits_per_word(dim, prec) == 8)
            .run();
        // (8, 1-bit) and (4, FULL)? 4*32=128, 8*1=8 -> only (8, 1).
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].dim, rows[0].bits), (8, 1));
    }

    #[test]
    fn shards_partition_the_enumeration() {
        let world = tiny_world();
        let exp = || Experiment::new(&world).tasks(["sst2"]).algos([Algo::Mc]);
        let shard0 = exp().shard(0, 2).run();
        let shard1 = exp().shard(1, 2).run();
        assert_eq!(shard0.len() + shard1.len(), 4);
        let keys = |rows: &[Row]| {
            rows.iter()
                .map(|r| (r.dim, r.bits))
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert!(keys(&shard0).is_disjoint(&keys(&shard1)));
    }

    #[test]
    fn repeated_filters_compose_with_and() {
        let world = tiny_world();
        let exp = || {
            Experiment::new(&world)
                .tasks(["sst2"])
                .algos([Algo::Mc])
                .filter(|_, dim, _, _| dim == 8)
        };
        // One filter: both precisions of dim 8 survive.
        assert_eq!(exp().run().len(), 2);
        // A second filter must intersect, not replace: adding a
        // full-precision restriction keeps only (8, 32).
        let rows = exp().filter(|_, _, prec, _| prec.is_full()).run();
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].dim, rows[0].bits), (8, 32));
        // Order of registration does not matter.
        let rows = Experiment::new(&world)
            .tasks(["sst2"])
            .algos([Algo::Mc])
            .filter(|_, _, prec, _| prec.is_full())
            .filter(|_, dim, _, _| dim == 8)
            .run();
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].dim, rows[0].bits), (8, 32));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_experiment_panics() {
        let world = tiny_world();
        let _ = Experiment::new(&world).run();
    }

    #[test]
    #[should_panic(expected = "shard index")]
    fn out_of_range_shard_panics() {
        let world = tiny_world();
        let _ = Experiment::new(&world).tasks(["sst2"]).shard(2, 2);
    }
}
