//! Experiment scale presets.

use embedstab_quant::Precision;

/// How large an experiment to run.
///
/// The paper's grids (400k-word vocabulary, 4.5B-token corpora, dimensions
/// 25-800) are scaled to what a small machine reproduces in minutes; the
/// *shape* of every result is preserved (see DESIGN.md). Dimensions map
/// onto the paper's sweep position-for-position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Integration-test scale: seconds.
    Tiny,
    /// Default reproduction scale: minutes per figure on 2 cores.
    Small,
    /// Closer-to-paper scale: hours.
    Paper,
}

impl Scale {
    /// Parses `--scale tiny|small|paper` from process arguments, defaulting
    /// to [`Scale::Small`].
    ///
    /// # Panics
    ///
    /// Panics with a usage message on an unknown scale name.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                let name = args.get(i + 1).map(String::as_str).unwrap_or("");
                return match name {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => panic!("unknown scale '{other}'; use tiny|small|paper"),
                };
            }
        }
        Scale::Small
    }

    /// The concrete parameter set for this scale.
    pub fn params(self) -> ScaleParams {
        match self {
            Scale::Tiny => ScaleParams {
                vocab_size: 220,
                n_topics: 10,
                latent_dim: 24,
                corpus_tokens: 25_000,
                window: 5,
                dims: vec![4, 8, 16],
                precisions: vec![Precision::new(1), Precision::new(4), Precision::FULL],
                // Three seeds, like Small/Paper: the paper's headline trends
                // are statements about seed-averaged disagreement, and a
                // single-seed grid is too noisy to exhibit them reliably.
                seeds: vec![0, 1, 2],
                top_m: 220,
                sentiment_train: 250,
                sentiment_test: 200,
                ner_train: 80,
                ner_test: 60,
                lstm_hidden: 8,
                lstm_epochs: 2,
                logreg_epochs: 25,
                knn_queries: 100,
            },
            Scale::Small => ScaleParams {
                vocab_size: 1000,
                n_topics: 20,
                latent_dim: 160,
                corpus_tokens: 200_000,
                window: 8,
                dims: vec![4, 8, 16, 32, 64, 128],
                precisions: Precision::SWEEP.to_vec(),
                seeds: vec![0, 1, 2],
                top_m: 1000,
                sentiment_train: 1200,
                sentiment_test: 600,
                ner_train: 400,
                ner_test: 300,
                lstm_hidden: 16,
                lstm_epochs: 4,
                logreg_epochs: 40,
                knn_queries: 500,
            },
            Scale::Paper => ScaleParams {
                vocab_size: 4000,
                n_topics: 40,
                latent_dim: 1000,
                corpus_tokens: 2_000_000,
                window: 15,
                dims: vec![25, 50, 100, 200, 400, 800],
                precisions: Precision::SWEEP.to_vec(),
                seeds: vec![0, 1, 2],
                top_m: 4000,
                sentiment_train: 4000,
                sentiment_test: 1500,
                ner_train: 1200,
                ner_test: 800,
                lstm_hidden: 32,
                lstm_epochs: 6,
                logreg_epochs: 60,
                knn_queries: 1000,
            },
        }
    }
}

/// Concrete sizes for one scale.
#[derive(Clone, Debug)]
pub struct ScaleParams {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Latent topics.
    pub n_topics: usize,
    /// Latent dimension of the ground-truth space.
    pub latent_dim: usize,
    /// Tokens per corpus.
    pub corpus_tokens: usize,
    /// Co-occurrence window.
    pub window: usize,
    /// Embedding dimension sweep (stands in for the paper's 25..800).
    pub dims: Vec<usize>,
    /// Precision sweep.
    pub precisions: Vec<Precision>,
    /// Embedding / downstream seeds.
    pub seeds: Vec<u64>,
    /// Words used when computing measures (paper: top 10k).
    pub top_m: usize,
    /// Sentiment training examples per dataset.
    pub sentiment_train: usize,
    /// Sentiment test examples per dataset.
    pub sentiment_test: usize,
    /// NER training sentences.
    pub ner_train: usize,
    /// NER test sentences.
    pub ner_test: usize,
    /// BiLSTM hidden size.
    pub lstm_hidden: usize,
    /// BiLSTM epochs.
    pub lstm_epochs: usize,
    /// Logistic-regression epochs.
    pub logreg_epochs: usize,
    /// Query words for the k-NN measure.
    pub knn_queries: usize,
}

impl ScaleParams {
    /// The largest dimension of the sweep (used for the EIS reference
    /// embeddings, as in the paper).
    pub fn max_dim(&self) -> usize {
        self.dims.iter().copied().max().expect("dims non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let t = Scale::Tiny.params();
        let s = Scale::Small.params();
        let p = Scale::Paper.params();
        assert!(t.vocab_size < s.vocab_size && s.vocab_size < p.vocab_size);
        assert!(t.corpus_tokens < s.corpus_tokens && s.corpus_tokens < p.corpus_tokens);
        assert_eq!(p.dims, vec![25, 50, 100, 200, 400, 800]);
    }

    #[test]
    fn max_dim_is_last() {
        assert_eq!(Scale::Small.params().max_dim(), 128);
    }
}
