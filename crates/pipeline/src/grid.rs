//! The embedding training grid with caching and parallel training.

use std::collections::BTreeMap;
use std::sync::Arc;

use embedstab_embeddings::{train_embedding, Algo, Embedding};
use embedstab_quant::{quantize_pair, Precision};

use crate::cache::PairCache;
use crate::pool::parallel_map;
use crate::world::World;

/// Key of one trained embedding pair.
pub type PairKey = (Algo, usize, u64);

/// All full-precision embedding pairs for an experiment, trained once.
///
/// For every `(algorithm, dimension, seed)` the grid holds the '17
/// embedding and the '18 embedding **already aligned to it** with
/// orthogonal Procrustes, as the paper does before compression and
/// downstream training. Quantized pairs are derived on demand with the
/// clip threshold shared from the '17 side (Appendix C.2).
pub struct EmbeddingGrid {
    // BTreeMap, not HashMap: today every consumer goes through keyed
    // `get`, but the first person to add `for (k, v) in &grid.pairs` to a
    // float-summing report would silently reintroduce the PR 5 class of
    // per-process-order bugs. Key-ordered storage makes any future
    // iteration deterministic by construction.
    pairs: BTreeMap<PairKey, (Arc<Embedding>, Arc<Embedding>)>,
}

impl EmbeddingGrid {
    /// Trains the full grid over the given algorithms, dimensions, and
    /// seeds, parallelizing across available cores.
    pub fn build(world: &World, algos: &[Algo], dims: &[usize], seeds: &[u64]) -> Self {
        Self::build_cached(world, algos, dims, seeds, None)
    }

    /// Like [`EmbeddingGrid::build`], but consults (and fills) a
    /// [`PairCache`] so re-runs and sibling shard processes skip training.
    pub fn build_cached(
        world: &World,
        algos: &[Algo],
        dims: &[usize],
        seeds: &[u64],
        cache: Option<&PairCache>,
    ) -> Self {
        let mut keys: Vec<PairKey> = Vec::new();
        for &algo in algos {
            for &dim in dims {
                for &seed in seeds {
                    keys.push((algo, dim, seed));
                }
            }
        }
        Self::build_pairs(world, &keys, cache)
    }

    /// Trains (or loads) exactly the given pair keys — the entry point the
    /// [`Experiment`](crate::Experiment) runner uses, so a shard only pays
    /// for the pairs its configurations actually touch.
    pub fn build_pairs(world: &World, keys: &[PairKey], cache: Option<&PairCache>) -> Self {
        let mut jobs: Vec<PairKey> = keys.to_vec();
        jobs.sort();
        jobs.dedup();
        // Train the biggest jobs first for better load balancing.
        jobs.sort_by_key(|&(_, dim, _)| std::cmp::Reverse(dim));
        let trained = parallel_map(&jobs, |&(algo, dim, seed)| {
            if let Some(cache) = cache {
                if let Some((x17, x18)) = cache.load((algo, dim, seed)) {
                    return (Arc::new(x17), Arc::new(x18));
                }
            }
            let x17 = train_embedding(algo, &world.stats17, world.vocab(), dim, seed);
            let x18 = train_embedding(algo, &world.stats18, world.vocab(), dim, seed);
            let x18 = x18.align_to(&x17);
            if let Some(cache) = cache {
                if let Err(e) = cache.store((algo, dim, seed), &x17, &x18) {
                    eprintln!("[grid] warning: could not cache ({algo}, d={dim}, s={seed}): {e}");
                }
            }
            (Arc::new(x17), Arc::new(x18))
        });
        EmbeddingGrid {
            pairs: jobs.into_iter().zip(trained).collect(),
        }
    }

    /// Number of trained pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pairs were trained.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The full-precision aligned pair for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration was not part of the build grid.
    pub fn pair(&self, algo: Algo, dim: usize, seed: u64) -> (&Arc<Embedding>, &Arc<Embedding>) {
        let (a, b) = self
            .pairs
            .get(&(algo, dim, seed))
            .unwrap_or_else(|| panic!("pair ({algo}, d={dim}, seed {seed}) not in grid"));
        (a, b)
    }

    /// A quantized copy of the pair at the given precision (clip threshold
    /// shared from the '17 embedding).
    ///
    /// # Panics
    ///
    /// Panics if the configuration was not part of the build grid.
    pub fn quantized_pair(
        &self,
        algo: Algo,
        dim: usize,
        seed: u64,
        precision: Precision,
    ) -> (Embedding, Embedding) {
        let (x17, x18) = self.pair(algo, dim, seed);
        let (q17, q18) = quantize_pair(x17, x18, precision);
        (q17.embedding, q18.embedding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::world::World;

    #[test]
    fn grid_trains_aligns_and_quantizes() {
        let params = Scale::Tiny.params();
        let world = World::build(&params, 0);
        let grid = EmbeddingGrid::build(&world, &[Algo::Mc], &[4, 8], &[0]);
        assert_eq!(grid.len(), 2);
        let (x17, x18) = grid.pair(Algo::Mc, 8, 0);
        assert_eq!(x17.shape(), (params.vocab_size, 8));
        assert_eq!(x18.shape(), (params.vocab_size, 8));
        let (q17, q18) = grid.quantized_pair(Algo::Mc, 8, 0, Precision::new(1));
        // 1-bit embeddings have at most two distinct values each.
        let distinct: std::collections::BTreeSet<u64> =
            q17.mat().as_slice().iter().map(|x| x.to_bits()).collect();
        assert!(distinct.len() <= 2);
        assert_eq!(q18.shape(), (params.vocab_size, 8));
        // Full precision returns the aligned originals.
        let (f17, _f18) = grid.quantized_pair(Algo::Mc, 8, 0, Precision::FULL);
        assert_eq!(&f17, x17.as_ref());
    }

    #[test]
    fn cached_build_round_trips_bitwise() {
        let params = Scale::Tiny.params();
        let world = World::build(&params, 0);
        let dir = crate::cache::scratch_dir("grid_cache");
        std::fs::remove_dir_all(&dir).ok();
        let cache = PairCache::open(&dir, world.fingerprint()).expect("open cache");
        let cold = EmbeddingGrid::build_cached(&world, &[Algo::Mc], &[4], &[0], Some(&cache));
        assert!(cache.path((Algo::Mc, 4, 0)).exists(), "cache file written");
        let warm = EmbeddingGrid::build_cached(&world, &[Algo::Mc], &[4], &[0], Some(&cache));
        let (c17, c18) = cold.pair(Algo::Mc, 4, 0);
        let (w17, w18) = warm.pair(Algo::Mc, 4, 0);
        assert_eq!(c17.as_ref(), w17.as_ref(), "cache must round-trip bitwise");
        assert_eq!(c18.as_ref(), w18.as_ref());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_pairs_dedups_keys() {
        let world = World::build(&Scale::Tiny.params(), 0);
        let grid = EmbeddingGrid::build_pairs(&world, &[(Algo::Mc, 4, 0), (Algo::Mc, 4, 0)], None);
        assert_eq!(grid.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not in grid")]
    fn missing_pair_panics() {
        let world = World::build(&Scale::Tiny.params(), 0);
        let grid = EmbeddingGrid::build(&world, &[Algo::Mc], &[4], &[0]);
        let _ = grid.pair(Algo::Cbow, 4, 0);
    }
}
