//! The end-to-end experiment harness behind every table/figure
//! reproduction binary.
//!
//! The harness mirrors the paper's three-step pipeline (Artifact
//! Appendix A.5):
//!
//! 1. **Train and compress embeddings** — [`World`] builds the
//!    Wiki'17/Wiki'18 corpus pair and downstream datasets (once per shard
//!    fleet, via the on-disk [`world_cache`] and
//!    [`World::load_or_build`]);
//!    [`EmbeddingGrid`] trains the `algo x dim x seed` grid once (in
//!    parallel, through an optional versioned on-disk [`cache`]), aligns
//!    each '18 embedding to its '17 partner, and hands out quantized pairs
//!    on demand.
//! 2. **Train downstream models and compute metrics** — [`Experiment`]
//!    sweeps pluggable [`Task`](embedstab_downstream::Task)s over the
//!    `task x algo x dim x precision x seed` grid, recording prediction
//!    disagreement, quality, and the five embedding distance measures per
//!    configuration. Runs shard deterministically across processes
//!    ([`Experiment::shard`]) and stream rows as they complete
//!    ([`RowSink`], [`JsonlSink`]). The legacy [`run_sentiment_grid`] /
//!    [`run_ner_grid`] entry points are thin wrappers over the builder.
//! 3. **Run analyses** — `embedstab-core`'s statistics and selection
//!    routines consume the rows; [`report`] renders the paper-style
//!    tables.
//!
//! Scales: [`Scale::Tiny`] for tests, [`Scale::Small`] (default) for the
//! 2-core reproduction runs, [`Scale::Paper`] for a closer-to-paper grid
//! (where sharding + the pair cache pay off).

pub mod cache;
pub mod experiment;
pub mod grid;
pub mod pool;
pub mod report;
pub mod run;
pub mod scale;
pub mod sink;
pub mod store;
pub mod world;
pub mod world_cache;

pub use cache::{PairCache, CACHE_FORMAT_VERSION};
pub use experiment::Experiment;
pub use grid::{EmbeddingGrid, PairKey};
pub use run::{run_ner_grid, run_sentiment_grid, GridOptions, Row};
pub use scale::{Scale, ScaleParams};
pub use sink::{JsonlSink, ProgressSink, RowSink};
pub use store::{content_hash, CacheFamily, CacheKey, CacheStore, StoreError};
pub use world::World;
pub use world_cache::{world_fingerprint, WorldCache, WORLD_CACHE_FORMAT_VERSION};
