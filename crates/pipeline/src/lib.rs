//! The end-to-end experiment harness behind every table/figure
//! reproduction binary.
//!
//! The harness mirrors the paper's three-step pipeline (Artifact
//! Appendix A.5):
//!
//! 1. **Train and compress embeddings** — [`World`] builds the
//!    Wiki'17/Wiki'18 corpus pair and downstream datasets;
//!    [`EmbeddingGrid`] trains the `algo x dim x seed` grid once (in
//!    parallel), aligns each '18 embedding to its '17 partner, and hands
//!    out quantized pairs on demand.
//! 2. **Train downstream models and compute metrics** — [`run`] trains the
//!    paired downstream models and records prediction disagreement,
//!    quality, and the five embedding distance measures per configuration.
//! 3. **Run analyses** — `embedstab-core`'s statistics and selection
//!    routines consume the rows; [`report`] renders the paper-style
//!    tables.
//!
//! Scales: [`Scale::Tiny`] for tests, [`Scale::Small`] (default) for the
//! 2-core reproduction runs, [`Scale::Paper`] for a closer-to-paper grid.

pub mod grid;
pub mod report;
pub mod run;
pub mod scale;
pub mod world;

pub use grid::EmbeddingGrid;
pub use run::{run_ner_grid, run_sentiment_grid, GridOptions, Row};
pub use scale::{Scale, ScaleParams};
pub use world::World;
