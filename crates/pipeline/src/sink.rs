//! Streaming row output for long grid runs.
//!
//! An [`Experiment`](crate::Experiment) still returns the full `Vec<Row>`,
//! but hour-scale grids (the `Paper` scale, sharded fleets) want rows on
//! disk as they complete — a crash then loses minutes, not everything.
//! Sinks receive rows in **completion order**, which under the worker pool
//! is not enumeration order; consumers that care should sort on load.

use std::path::PathBuf;

use crate::report::save_jsonl_append;
use crate::run::Row;

/// Receives rows as the grid produces them.
///
/// Any `FnMut(&Row) + Send` closure is a sink, so ad-hoc progress
/// callbacks need no wrapper type.
pub trait RowSink: Send {
    /// Called once before the run with the number of rows to expect.
    fn start(&mut self, _total: usize) {}

    /// Called for each completed row.
    fn emit(&mut self, row: &Row);

    /// Called once after the last row.
    fn finish(&mut self) {}
}

impl<F: FnMut(&Row) + Send> RowSink for F {
    fn emit(&mut self, row: &Row) {
        self(row)
    }
}

/// Appends each row as one JSON line to a file, creating parent
/// directories on first write.
///
/// Appending is crash-tolerant by construction: every completed line is
/// already durable, and a truncated final line is skipped by
/// [`JsonlSink::load`]. I/O errors are reported to stderr once and
/// swallowed — a dying disk should not abort an hour-long grid whose rows
/// are also returned in memory.
pub struct JsonlSink {
    path: PathBuf,
    failed: bool,
}

impl JsonlSink {
    /// Creates a sink appending to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JsonlSink {
            path: path.into(),
            failed: false,
        }
    }

    /// Reads rows back from a JSONL file, skipping unparseable lines
    /// (e.g. a line truncated by a crash).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Vec<Row>> {
        let body = std::fs::read_to_string(path)?;
        Ok(body
            .lines()
            .filter_map(|l| serde_json::from_str::<Row>(l).ok())
            .collect())
    }
}

impl RowSink for JsonlSink {
    fn emit(&mut self, row: &Row) {
        if self.failed {
            return;
        }
        if let Err(e) = save_jsonl_append(&self.path, row) {
            eprintln!(
                "[sink] warning: dropping rows, cannot append to {}: {e}",
                self.path.display()
            );
            self.failed = true;
        }
    }
}

/// Prints a progress line to stderr every `every` rows (and on the last).
pub struct ProgressSink {
    label: String,
    every: usize,
    done: usize,
    total: usize,
}

impl ProgressSink {
    /// Creates a progress reporter with the given label.
    pub fn new(label: impl Into<String>, every: usize) -> Self {
        ProgressSink {
            label: label.into(),
            every: every.max(1),
            done: 0,
            total: 0,
        }
    }
}

impl RowSink for ProgressSink {
    fn start(&mut self, total: usize) {
        self.total = total;
    }

    fn emit(&mut self, _row: &Row) {
        self.done += 1;
        if self.done % self.every == 0 || self.done == self.total {
            eprintln!("[{}] {}/{} rows", self.label, self.done, self.total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(seed: u64) -> Row {
        Row {
            task: "sst2".into(),
            algo: "MC".into(),
            dim: 8,
            bits: 4,
            memory: 32,
            seed,
            disagreement: 0.25,
            quality17: 0.8,
            quality18: 0.75,
            measures: None,
        }
    }

    #[test]
    fn closure_is_a_sink() {
        let mut count = 0usize;
        {
            let mut sink = |_: &Row| count += 1;
            sink.emit(&row(0));
            sink.emit(&row(1));
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn jsonl_sink_appends_and_loads() {
        let dir = crate::cache::scratch_dir("jsonl_sink");
        let path = dir.join("rows.jsonl");
        std::fs::remove_file(&path).ok();
        let mut sink = JsonlSink::new(&path);
        sink.start(2);
        sink.emit(&row(0));
        sink.emit(&row(1));
        sink.finish();
        // A second sink appends to the same file.
        let mut sink2 = JsonlSink::new(&path);
        sink2.emit(&row(2));
        let rows = JsonlSink::load(&path).expect("load");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].seed, 2);
        // A truncated trailing line is skipped, earlier rows survive.
        let body = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &body[..body.len() - 10]).expect("truncate");
        assert_eq!(JsonlSink::load(&path).expect("load").len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
