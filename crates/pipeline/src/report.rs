//! Plain-text table rendering and JSON result dumps for the experiment
//! binaries.

use std::io::Write as _;
use std::path::Path;

use serde::Serialize;

/// Renders an aligned plain-text table to a string.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        padded.join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Prints an aligned table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(headers, rows));
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Formats a float with the given number of decimals.
pub fn num(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Writes a serializable value as pretty JSON under `results/`, creating
/// the directory if needed. Returns the path written.
///
/// The write is atomic: the body goes to a `.tmp` sibling first and is
/// renamed into place, so a crash mid-write never leaves a truncated
/// `results/*.json` for the row cache to misparse.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut body = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    body.push('\n');
    crate::cache::atomic_write(&path, body.as_bytes())?;
    Ok(path)
}

/// Appends a serializable value as one JSON line to `path`, creating
/// parent directories if needed (the streaming counterpart of
/// [`save_json`], used by [`JsonlSink`](crate::JsonlSink)).
///
/// # Errors
///
/// Returns any I/O error, or an `InvalidData` error if serialization
/// fails.
pub fn save_jsonl_append<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let body = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(body.as_bytes())?;
    f.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let s = render_table(
            &["algo", "di"],
            &[
                vec!["CBOW".into(), "5.25".into()],
                vec!["MC".into(), "12.00".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].contains("algo"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(num(1.23456, 3), "1.235");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn empty_headers_do_not_underflow() {
        // Regression: `2 * (cols - 1)` underflowed usize when cols == 0.
        let s = render_table(&[], &[]);
        assert_eq!(s, "\n\n");
        // A single column hits the `cols - 1 == 0` edge.
        let s = render_table(&["only"], &[vec!["x".into()]]);
        assert!(s.starts_with("only\n----\n"));
    }

    #[test]
    fn jsonl_append_accumulates_lines() {
        let dir = crate::cache::scratch_dir("report_jsonl");
        let path = dir.join("nested").join("vals.jsonl");
        std::fs::remove_dir_all(&dir).ok();
        #[derive(serde::Serialize)]
        struct V {
            x: f64,
        }
        save_jsonl_append(&path, &V { x: 1.5 }).expect("append");
        save_jsonl_append(&path, &V { x: -2.0 }).expect("append");
        let body = std::fs::read_to_string(&path).expect("read");
        assert_eq!(body.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
