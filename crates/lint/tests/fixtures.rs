//! True-positive / clean fixture pairs for every rule.
//!
//! Each `*_bad.rs` fixture must trip exactly its rule and each
//! `*_clean.rs` counterpart must lint empty. Fixtures live under
//! `tests/fixtures/`, which the repo walker skips by directory name, so
//! the intentionally-bad files never pollute the real tree's scan; here
//! they are linted in-memory under synthetic workspace paths so the
//! path-scoped rules engage exactly as they would on disk.

use embedstab_lint::{lint_source, lint_sources};

/// Rule ids raised for `src` linted under `path`.
fn rules_hit(path: &str, src: &str) -> Vec<String> {
    lint_source(path, src).into_iter().map(|f| f.rule).collect()
}

fn assert_clean(path: &str, src: &str) {
    let findings = lint_source(path, src);
    assert!(findings.is_empty(), "expected clean, got: {findings:#?}");
}

#[test]
fn float_sort_bad_is_flagged() {
    let hits = rules_hit(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/float_sort_bad.rs"),
    );
    assert_eq!(
        hits.iter()
            .filter(|r| *r == "float-sort-total-order")
            .count(),
        2,
        "both the sort_by and the max_by comparator must be flagged: {hits:?}"
    );
}

#[test]
fn float_sort_clean_passes() {
    assert_clean(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/float_sort_clean.rs"),
    );
}

#[test]
fn hash_order_bad_is_flagged() {
    let hits = rules_hit(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/hash_order_bad.rs"),
    );
    assert!(
        hits.contains(&"hash-order-float-sum".to_string()),
        "float accumulation in hash order must be flagged: {hits:?}"
    );
}

#[test]
fn hash_order_clean_passes() {
    assert_clean(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/hash_order_clean.rs"),
    );
}

#[test]
fn unsafe_bad_is_flagged() {
    let hits = rules_hit(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/unsafe_bad.rs"),
    );
    assert!(
        hits.contains(&"unsafe-needs-safety-comment".to_string()),
        "undocumented unsafe must be flagged: {hits:?}"
    );
}

#[test]
fn unsafe_clean_passes() {
    // Covers both forms: a `// SAFETY:` comment within the window and a
    // long `# Safety` doc section further above the keyword.
    assert_clean(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/unsafe_clean.rs"),
    );
}

#[test]
fn panic_bad_is_flagged_in_hot_paths() {
    let src = include_str!("fixtures/panic_bad.rs");
    let hits = rules_hit("crates/serve/src/fixture.rs", src);
    assert_eq!(
        hits.iter().filter(|r| *r == "no-panic-in-hot-path").count(),
        6,
        "unwrap, expect, panic!, assert!, assert_eq!, and assert_ne! must \
         each be flagged: {hits:?}"
    );
    // The same source outside a hot path is not the rule's business.
    assert_clean("crates/demo/src/lib.rs", src);
}

#[test]
fn panic_rule_covers_fleet_sources() {
    // The fleet's request paths are peer-controlled bytes from other
    // machines; the hot-path rule must engage there like it does in serve.
    let src = include_str!("fixtures/panic_bad.rs");
    let hits = rules_hit("crates/fleet/src/worker.rs", src);
    assert_eq!(
        hits.iter().filter(|r| *r == "no-panic-in-hot-path").count(),
        6,
        "fleet sources must be in the hot-path rule's scope: {hits:?}"
    );
}

#[test]
fn panic_clean_passes() {
    // Includes a #[cfg(test)] module with an unwrap: tests are exempt.
    assert_clean(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/panic_clean.rs"),
    );
}

#[test]
fn wallclock_bad_is_flagged_in_cache_paths() {
    let src = include_str!("fixtures/wallclock_bad.rs");
    let hits = rules_hit("crates/demo/src/cache.rs", src);
    assert!(
        hits.contains(&"no-wallclock-in-fingerprint".to_string()),
        "SystemTime::now in a cache module must be flagged: {hits:?}"
    );
    // Outside cache/codec/fingerprint modules the clock is allowed.
    assert_clean("crates/demo/src/server.rs", src);
}

#[test]
fn wallclock_rule_covers_fleet_sources() {
    // Fleet lease/retry scheduling takes injected time; a clock read
    // anywhere in the crate (not just cache-named files) must be flagged.
    let src = include_str!("fixtures/wallclock_bad.rs");
    let hits = rules_hit("crates/fleet/src/queue.rs", src);
    assert!(
        hits.contains(&"no-wallclock-in-fingerprint".to_string()),
        "fleet sources must be in the wallclock rule's scope: {hits:?}"
    );
}

#[test]
fn wallclock_clean_passes() {
    assert_clean(
        "crates/demo/src/cache.rs",
        include_str!("fixtures/wallclock_clean.rs"),
    );
}

#[test]
fn cast_bad_is_flagged_in_codec_encoders() {
    let src = include_str!("fixtures/cast_bad.rs");
    let hits = rules_hit("crates/corpus/src/codec.rs", src);
    assert!(
        hits.contains(&"no-truncating-cast-in-codec".to_string()),
        "unchecked narrowing cast in an encoder must be flagged: {hits:?}"
    );
    // The rule is scoped to the codec/cache file family.
    assert_clean("crates/demo/src/lib.rs", src);
}

#[test]
fn cast_clean_passes() {
    // try_from, debug_assert-guarded cast, and a non-encoder cast.
    assert_clean(
        "crates/corpus/src/codec.rs",
        include_str!("fixtures/cast_clean.rs"),
    );
}

#[test]
fn transitive_panic_bad_reports_full_two_hop_chain() {
    // The entry lives in a hot-path file, the panic two call edges away
    // in a file no textual rule covers: only the call graph connects them.
    let findings = lint_sources(&[
        (
            "crates/serve/src/server.rs",
            include_str!("fixtures/transitive_bad_entry.rs"),
        ),
        (
            "crates/demo/src/helpers.rs",
            include_str!("fixtures/transitive_bad_helpers.rs"),
        ),
    ]);
    let chains: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "no-transitive-panic-in-hot-path")
        .collect();
    assert_eq!(chains.len(), 1, "exactly one chain expected: {findings:#?}");
    let f = chains[0];
    assert_eq!(
        f.path, "crates/serve/src/server.rs",
        "anchored at the entry"
    );
    for hop in ["handle_query", "mid_step", "deep_parse", "unwrap"] {
        assert!(
            f.message.contains(hop),
            "chain must name `{hop}`: {}",
            f.message
        );
    }
    assert_eq!(
        findings.len(),
        1,
        "no other rule may fire on this pair: {findings:#?}"
    );
}

#[test]
fn transitive_panic_clean_passes() {
    let findings = lint_sources(&[
        (
            "crates/serve/src/server.rs",
            include_str!("fixtures/transitive_clean_entry.rs"),
        ),
        (
            "crates/demo/src/helpers.rs",
            include_str!("fixtures/transitive_clean_helpers.rs"),
        ),
    ]);
    assert!(findings.is_empty(), "expected clean, got: {findings:#?}");
}

#[test]
fn lock_order_bad_flags_inversion_self_deadlock_and_io() {
    let hits = lint_source(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/lock_order_bad.rs"),
    );
    assert!(
        hits.iter().all(|f| f.rule == "lock-order"),
        "only lock-order may fire: {hits:#?}"
    );
    let messages: Vec<&str> = hits.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(
        messages
            .iter()
            .filter(|m| m.contains("lock-order hazard"))
            .count(),
        2,
        "both halves of the AB/BA inversion must be named: {messages:#?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("self-deadlocks")),
        "double acquisition of `queue` must be flagged: {messages:#?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("blocking IO `eprintln!`")),
        "console IO under a guard must be flagged: {messages:#?}"
    );
}

#[test]
fn lock_order_clean_passes() {
    // One blessed order everywhere, plus an `if`-condition temporary
    // (which drops before the body) followed by IO and a second lock.
    assert_clean(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/lock_order_clean.rs"),
    );
}

#[test]
fn alloc_check_bad_flags_unchecked_decoder_allocations() {
    let hits = rules_hit(
        "crates/demo/src/codec.rs",
        include_str!("fixtures/alloc_check_bad.rs"),
    );
    assert_eq!(
        hits.iter()
            .filter(|r| *r == "alloc-before-length-check")
            .count(),
        2,
        "both the with_capacity and the vec![0; n] site must be flagged: {hits:?}"
    );
}

#[test]
fn alloc_check_clean_passes() {
    // MAX comparison, in-argument `.min` clamp, and a literal capacity.
    assert_clean(
        "crates/demo/src/codec.rs",
        include_str!("fixtures/alloc_check_clean.rs"),
    );
}
