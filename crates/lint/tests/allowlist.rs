//! The suppression mechanism end to end: a justified entry silences its
//! finding, an unjustified entry is itself an error, and a stale entry
//! (suppressing nothing) is an error too — the allowlist can only shrink
//! the finding set it was written for.

use embedstab_lint::config::ALLOWLIST_RULE;
use embedstab_lint::rules::rule_ids;
use embedstab_lint::{apply_allowlist, lint_source, parse_allowlist};

const BAD: &str = include_str!("fixtures/float_sort_bad.rs");
const PATH: &str = "crates/demo/src/lib.rs";

#[test]
fn justified_entry_suppresses_its_finding() {
    let raw = lint_source(PATH, BAD);
    assert_eq!(raw.len(), 2, "fixture baseline: {raw:#?}");
    let text = r#"
[[allow]]
rule = "float-sort-total-order"
path = "crates/demo/src/lib.rs"
contains = "sort_by"
justification = "fixture: demonstrating suppression in a test"
"#;
    let (entries, config_findings) = parse_allowlist(text, "lint-allow.toml", &rule_ids());
    assert!(config_findings.is_empty(), "{config_findings:#?}");
    let (kept, suppressed) = apply_allowlist(raw, &entries, "lint-allow.toml");
    assert_eq!(suppressed.len(), 1, "the sort_by finding is suppressed");
    assert_eq!(kept.len(), 1, "the max_by finding survives: {kept:#?}");
    assert!(kept[0].snippet.contains("max_by"));
}

#[test]
fn entry_without_justification_is_itself_an_error() {
    let text = r#"
[[allow]]
rule = "float-sort-total-order"
path = "crates/demo/src/lib.rs"
"#;
    let (entries, findings) = parse_allowlist(text, "lint-allow.toml", &rule_ids());
    assert!(entries.is_empty(), "the entry must not become usable");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, ALLOWLIST_RULE);
    assert!(findings[0].message.contains("justification"));
}

#[test]
fn stale_entry_is_an_error() {
    let text = r#"
[[allow]]
rule = "float-sort-total-order"
path = "crates/demo/src/lib.rs"
contains = "this snippet exists nowhere"
justification = "left behind after the finding it excused was fixed"
"#;
    let (entries, config_findings) = parse_allowlist(text, "lint-allow.toml", &rule_ids());
    assert!(config_findings.is_empty(), "{config_findings:#?}");
    let raw = lint_source(PATH, BAD);
    let (kept, suppressed) = apply_allowlist(raw, &entries, "lint-allow.toml");
    assert!(suppressed.is_empty());
    // Both real findings survive, plus one finding for the stale entry.
    assert_eq!(kept.len(), 3, "{kept:#?}");
    let stale: Vec<_> = kept.iter().filter(|f| f.rule == ALLOWLIST_RULE).collect();
    assert_eq!(stale.len(), 1);
    assert!(stale[0].message.contains("stale"));
}
