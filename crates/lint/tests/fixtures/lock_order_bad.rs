//! True positives for `lock-order`: an AB/BA inversion across two fns, a
//! same-lock double acquisition, and console IO under a guard.
//!
//! Regression note: the inversion-by-scrutinee shape below is exactly the
//! bug class fixed in `fleet::coordinator`'s Lease arm, where
//! `match shared.queue.lock().lease(..)` kept the queue guard live across
//! the staged-map lock and an `eprintln!` in every match arm.

use parking_lot::Mutex;

pub struct Shared {
    pub queue: Mutex<Vec<u32>>,
    pub staged: Mutex<Vec<u32>>,
}

pub fn forward(s: &Shared) {
    let q = s.queue.lock();
    let st = s.staged.lock();
    drop(st);
    drop(q);
}

pub fn inverted(s: &Shared) {
    let st = s.staged.lock();
    let q = s.queue.lock();
    drop(q);
    drop(st);
}

pub fn double(s: &Shared) {
    let first = s.queue.lock();
    let again = s.queue.lock();
    drop(again);
    drop(first);
}

pub fn chatty(s: &Shared) {
    let q = s.queue.lock();
    eprintln!("queue has {} entries", q.len());
}
