// True positives for `no-panic-in-hot-path` (linted under a serve path):
// unwrap, expect, panic!, and the assert family all turn bad input into a
// crashed server.
pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn lookup(xs: &[f64], i: usize) -> f64 {
    *xs.get(i).expect("index in range")
}

pub fn pick(tag: u8) -> &'static str {
    match tag {
        0 => "flat",
        1 => "weighted",
        _ => panic!("unknown tag"),
    }
}

pub fn validate(ids: &[u32], vocab: usize, dim: usize, expected_dim: usize) {
    assert!(!ids.is_empty(), "empty batch");
    assert_eq!(dim, expected_dim, "dimension mismatch");
    assert_ne!(vocab, 0, "empty vocabulary");
}
