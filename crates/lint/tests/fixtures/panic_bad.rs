// True positives for `no-panic-in-hot-path` (linted under a serve path):
// unwrap, expect, and a panic! all turn bad input into a crashed server.
pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn lookup(xs: &[f64], i: usize) -> f64 {
    *xs.get(i).expect("index in range")
}

pub fn pick(tag: u8) -> &'static str {
    match tag {
        0 => "flat",
        1 => "weighted",
        _ => panic!("unknown tag"),
    }
}
