// True positive: an unsafe block with no stated invariants at all.
// (This header deliberately avoids the magic word the rule greps for.)
pub fn read_first(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() }
}
