// Clean counterpart: hot paths surface Option/Result, never panic.
pub fn first(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn lookup(xs: &[f64], i: usize) -> Option<f64> {
    xs.get(i).copied()
}

pub fn pick(tag: u8) -> Option<&'static str> {
    match tag {
        0 => Some("flat"),
        1 => Some("weighted"),
        _ => None,
    }
}

pub fn validate(ids: &[u32], vocab: usize) -> Result<(), String> {
    // debug_assert! stays allowed: it vanishes in release builds, so it
    // documents an invariant without creating a production panic path.
    debug_assert!(vocab > 0);
    if ids.iter().any(|&id| id as usize >= vocab) {
        return Err("id out of range".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    // Panics in tests are fine — an assertion failing IS the signal.
    #[test]
    fn unwrap_in_tests_is_allowed() {
        let xs = [1.0f64];
        assert_eq!(*xs.first().unwrap(), 1.0);
        assert!(super::validate(&[0], 1).is_ok());
    }
}
