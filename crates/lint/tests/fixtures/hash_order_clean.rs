// Clean counterpart: collect, sort into a canonical order, then sum.
use std::collections::HashMap;

pub fn row_sums(map: &HashMap<u64, f64>, out: &mut [f64]) {
    let mut entries: Vec<(u64, f64)> = map.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable_by_key(|e| e.0);
    for (key, count) in entries {
        out[(key >> 32) as usize] += count;
    }
}

// Iteration without order sensitivity (pure membership count) is fine.
pub fn occupied(map: &HashMap<u64, f64>) -> usize {
    map.iter().filter(|(_, &v)| v != 0.0).count()
}
