// Clean counterparts: the cast sits next to visible range evidence.
pub fn put_header(out: &mut Vec<u8>, rows: usize) -> Option<()> {
    let rows = u32::try_from(rows).ok()?;
    out.extend_from_slice(&rows.to_le_bytes());
    Some(())
}

pub fn put_count(out: &mut Vec<u8>, n: usize) {
    debug_assert!(n <= u32::MAX as usize);
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

// Narrowing casts in non-encoder functions (decoders validate via
// take_len/try_from already) are out of scope for the rule.
pub fn widen(i: u32) -> usize {
    i as usize
}
