// True positive for `no-wallclock-in-fingerprint` (linted under a cache
// path): a wall-clock read feeding cache state breaks reproducibility.
use std::time::SystemTime;

pub fn stamp() -> u64 {
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
