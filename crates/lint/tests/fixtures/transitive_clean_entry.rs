//! Clean counterpart of `transitive_bad_entry.rs`: the same two-file
//! call shape, but every hop returns a typed `Option` instead of
//! unwrapping, so no rule may fire.

pub fn handle_query(raw: &[u8]) -> Option<Vec<u8>> {
    let parsed = mid_step(raw)?;
    Some(parsed.to_le_bytes().to_vec())
}
