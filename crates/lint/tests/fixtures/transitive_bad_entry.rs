//! Entry half of the two-file transitive-panic fixture: linted under
//! `crates/serve/src/server.rs` (a hot entry point) together with
//! `transitive_bad_helpers.rs` under `crates/demo/src/helpers.rs`.
//! `handle_query` itself never panics — the textual no-panic rule stays
//! silent — but two call hops away `deep_parse` unwraps, and the
//! transitive rule must report the full chain.

pub fn handle_query(raw: &[u8]) -> Vec<u8> {
    let parsed = mid_step(raw);
    parsed.to_le_bytes().to_vec()
}
