// Clean counterpart: uniqueness from a counter, not the clock (the
// pattern `atomic_write` uses: pid + atomic counter).
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn stamp() -> u64 {
    COUNTER.fetch_add(1, Ordering::Relaxed)
}
