//! True positives for `alloc-before-length-check`: decoder fns that size
//! an allocation by a freshly read integer with no intervening bound.

pub fn read_u32(r: &mut &[u8]) -> Option<u32> {
    let head: [u8; 4] = r.get(..4)?.try_into().ok()?;
    *r = &r[4..];
    Some(u32::from_le_bytes(head))
}

pub fn read_block(r: &mut &[u8]) -> Option<Vec<u8>> {
    let n = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(n);
    out.resize(n.min(r.len()), 0);
    Some(out)
}

pub fn decode_rows(r: &mut &[u8]) -> Option<Vec<u8>> {
    let count = read_u32(r)? as usize;
    let buf = vec![0u8; count];
    Some(buf)
}
