//! Clean counterpart of `lock_order_bad.rs`: every fn nests in the one
//! blessed order (`queue` before `staged`), guards are dropped before
//! console IO, and condition temporaries (which drop before the body
//! runs) are exercised on purpose.

use parking_lot::Mutex;

pub struct Shared {
    pub queue: Mutex<Vec<u32>>,
    pub staged: Mutex<Vec<u32>>,
}

pub fn forward(s: &Shared) {
    let q = s.queue.lock();
    let st = s.staged.lock();
    drop(st);
    drop(q);
}

pub fn also_forward(s: &Shared) {
    let q = s.queue.lock();
    let st = s.staged.lock();
    drop(st);
    drop(q);
}

pub fn quiet(s: &Shared) {
    let n = s.queue.lock().len();
    eprintln!("queue has {n} entries");
}

pub fn condition_temporary(s: &Shared) {
    // An `if`-condition guard drops before the body runs, so the IO and
    // the second lock in the body are both fine.
    if s.queue.lock().is_empty() {
        let st = s.staged.lock();
        drop(st);
        eprintln!("drained");
    }
}
