// Clean counterpart: total_cmp is a total order, NaN-safe.
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn best(xs: &[f64]) -> Option<&f64> {
    xs.iter().max_by(|a, b| a.total_cmp(b))
}

// partial_cmp OUTSIDE a comparator is fine (an Option-returning compare).
pub fn same(a: f64, b: f64) -> bool {
    a.partial_cmp(&b) == Some(std::cmp::Ordering::Equal)
}
