//! Helper half of the two-file transitive-panic fixture (see
//! `transitive_bad_entry.rs`). Lives under `crates/demo/src/helpers.rs`,
//! outside every textual hot-path scope: only the call-graph walk can
//! connect the entry point to the unwrap here.

pub fn mid_step(raw: &[u8]) -> u32 {
    deep_parse(raw)
}

pub fn deep_parse(raw: &[u8]) -> u32 {
    let head: [u8; 4] = raw[..4].try_into().unwrap();
    u32::from_le_bytes(head)
}
