// True positive for `float-sort-total-order`: the comparator calls
// partial_cmp, so a single NaN panics the sort.
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn best(xs: &[f64]) -> Option<&f64> {
    xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap())
}
