// Clean counterpart: the obligation is written down next to the unsafe.
pub fn read_first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds and the slice owns the memory.
    unsafe { *xs.as_ptr() }
}

/// # Safety
///
/// This long doc section sits more than six lines above the keyword, and
/// that must still count: callers uphold that `p` is non-null, aligned,
/// and points to a live `u8` for the duration of the call. Nothing else
/// is required — the function performs a single read and never retains
/// the pointer. The distance between this section and the `unsafe fn`
/// below is exactly what the contiguous-doc-block scan exists for.
#[allow(dead_code)]
pub unsafe fn read_raw(p: *const u8) -> u8 {
    *p
}
