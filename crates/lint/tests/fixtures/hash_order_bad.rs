// True positive for `hash-order-float-sum`: float accumulation in
// HashMap iteration order — the exact shape of the Cooc::row_sums bug.
use std::collections::HashMap;

pub fn row_sums(map: &HashMap<u64, f64>, out: &mut [f64]) {
    for (&key, &count) in map.iter() {
        out[(key >> 32) as usize] += count;
    }
}
