// True positive for `no-truncating-cast-in-codec` (linted under a codec
// path): an unchecked usize -> u32 narrowing in an encoder writes a
// well-formed header describing the wrong data.
pub fn put_header(out: &mut Vec<u8>, rows: usize) {
    out.extend_from_slice(&(rows as u32).to_le_bytes());
}
