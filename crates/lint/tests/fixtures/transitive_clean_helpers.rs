//! Clean counterpart of `transitive_bad_helpers.rs`: `deep_parse`
//! validates instead of unwrapping.

pub fn mid_step(raw: &[u8]) -> Option<u32> {
    deep_parse(raw)
}

pub fn deep_parse(raw: &[u8]) -> Option<u32> {
    let head: [u8; 4] = raw.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(head))
}
