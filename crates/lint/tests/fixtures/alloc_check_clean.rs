//! Clean counterpart of `alloc_check_bad.rs`: every allocation is bounded
//! before (or as) it is sized — an explicit MAX comparison, an in-place
//! `.min` clamp, and a constant capacity.

pub const MAX_BLOCK_BYTES: usize = 1 << 20;

pub fn read_u32(r: &mut &[u8]) -> Option<u32> {
    let head: [u8; 4] = r.get(..4)?.try_into().ok()?;
    *r = &r[4..];
    Some(u32::from_le_bytes(head))
}

pub fn read_block(r: &mut &[u8]) -> Option<Vec<u8>> {
    let n = read_u32(r)? as usize;
    if n > MAX_BLOCK_BYTES {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    out.resize(n, 0);
    Some(out)
}

pub fn decode_rows(r: &mut &[u8]) -> Option<Vec<u8>> {
    let count = read_u32(r)? as usize;
    let buf = vec![0u8; count.min(r.len())];
    Some(buf)
}

pub fn read_header(_r: &mut &[u8]) -> Vec<u8> {
    Vec::with_capacity(16)
}
