//! The linter's standing acceptance criterion: the repo it ships in lints
//! clean, with zero suppressions. If this test fails, either new code
//! reintroduced a forbidden pattern (fix the code) or a rule regressed
//! into a false positive (fix the rule) — an allowlist entry is the last
//! resort, and this test prints the finding either way.

use std::path::Path;

#[test]
fn repo_lints_clean_with_no_suppressions() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = embedstab_lint::lint_root(&root).expect("scan the workspace");
    assert!(
        report.files_scanned > 50,
        "walker should see the whole workspace, saw {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "the repo must lint clean:\n{:#?}",
        report.findings
    );
    assert!(
        report.suppressed.is_empty(),
        "the tree currently needs zero suppressions; a new one demands review:\n{:#?}",
        report.suppressed
    );
}
