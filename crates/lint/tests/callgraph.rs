//! Unit tests for the symbol index + call graph: resolution policy,
//! cycle tolerance, fan-out, and unresolved-call conservatism.

use embedstab_lint::callgraph::{CallGraph, FAN_OUT_CAP};
use embedstab_lint::source::SourceFile;

fn graph(sources: &[(&str, &str)]) -> CallGraph {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, src)| SourceFile::parse(rel, src))
        .collect();
    CallGraph::build(&files)
}

fn node(g: &CallGraph, display: &str) -> usize {
    g.nodes
        .iter()
        .position(|n| n.display_name() == display)
        .unwrap_or_else(|| {
            panic!(
                "no node `{display}` in {:?}",
                g.nodes.iter().map(|n| n.display_name()).collect::<Vec<_>>()
            )
        })
}

fn targets(g: &CallGraph, from: usize) -> Vec<String> {
    let mut v: Vec<String> = g.edges[from]
        .iter()
        .map(|e| g.nodes[e.to].display_name())
        .collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn recursion_and_mutual_cycles_terminate() {
    let g = graph(&[(
        "crates/demo/src/lib.rs",
        "pub fn ping(n: u32) -> u32 { pong(n) }\n\
         pub fn pong(n: u32) -> u32 { if n == 0 { boom() } else { ping(n - 1) } }\n\
         pub fn boom() -> u32 { panic!(\"end\") }\n",
    )]);
    // The ping <-> pong cycle must not hang the walk, and the panic in
    // `boom` is still found through it.
    let chains = g.panic_chains(node(&g, "ping"), 4);
    assert!(
        chains.iter().any(|c| c.what == "panic!"),
        "panic through the cycle must be reachable: {chains:?}"
    );
    // Depth 1 from `ping` only reaches `pong` — no panic yet.
    assert!(g.panic_chains(node(&g, "ping"), 1).is_empty());
}

#[test]
fn method_calls_fan_out_and_self_narrows() {
    let g = graph(&[(
        "crates/demo/src/lib.rs",
        "struct A; struct B;\n\
         impl A { fn emit(&self) {} fn go(&self) { self.emit(); } }\n\
         impl B { fn emit(&self) {} }\n\
         pub fn blast(a: &A) { a.emit(); }\n",
    )]);
    // `self.emit()` inside `impl A` resolves to A::emit only.
    assert_eq!(targets(&g, node(&g, "A::go")), vec!["A::emit".to_string()]);
    // `a.emit()` from a free fn fans out to every `emit` method.
    assert_eq!(
        targets(&g, node(&g, "blast")),
        vec!["A::emit".to_string(), "B::emit".to_string()]
    );
}

#[test]
fn unknown_and_std_colliding_calls_are_unresolved_not_edges() {
    let g = graph(&[(
        "crates/demo/src/lib.rs",
        "struct SparseMatrix;\n\
         impl SparseMatrix { fn push(&mut self, v: u32) { assert!(v > 0); } }\n\
         pub fn encode(out: &mut Vec<u8>) {\n\
             out.push(1);\n\
             std::mem::forget(());\n\
         }\n",
    )]);
    let enc = node(&g, "encode");
    // Neither `out.push(1)` (std-colliding name, receiver not narrowed)
    // nor `std::mem::forget` (not in the workspace) may create an edge:
    // both are recorded as unresolved instead.
    assert!(targets(&g, enc).is_empty(), "got {:?}", targets(&g, enc));
    assert!(g.stats.unresolved_calls >= 2, "stats: {:?}", g.stats);
    // And so `encode` must NOT appear to reach the assert in
    // SparseMatrix::push — the exact false chain the deny-list prevents.
    assert!(g.panic_chains(enc, 3).is_empty());
}

#[test]
fn self_receiver_resolves_std_colliding_names() {
    let g = graph(&[(
        "crates/demo/src/lib.rs",
        "struct Rows;\n\
         impl Rows {\n\
             fn push(&mut self, v: u32) { assert!(v > 0); }\n\
             fn add(&mut self, v: u32) { self.push(v); }\n\
         }\n",
    )]);
    // `self.push(..)` has a narrowed receiver, so the deny-list does not
    // apply and the edge lands on this impl's own method.
    assert_eq!(
        targets(&g, node(&g, "Rows::add")),
        vec!["Rows::push".to_string()]
    );
}

#[test]
fn fan_out_beyond_cap_is_unresolved() {
    let mut src = String::new();
    for i in 0..=FAN_OUT_CAP {
        src.push_str(&format!(
            "struct T{i}; impl T{i} {{ fn lease(&self) {{ panic!(\"x\") }} }}\n"
        ));
    }
    src.push_str("pub fn entry(x: &T0) { x.lease(); }\n");
    let g = graph(&[("crates/demo/src/lib.rs", &src)]);
    let entry = node(&g, "entry");
    // FAN_OUT_CAP + 1 candidates: the call is recorded unresolved rather
    // than spraying edges into every impl.
    assert!(targets(&g, entry).is_empty());
    assert!(g.panic_chains(entry, 2).is_empty());
    assert!(g.stats.unresolved_calls >= 1);
}

#[test]
fn cross_file_free_fns_resolve_and_tests_are_excluded() {
    let g = graph(&[
        (
            "crates/serve/src/server.rs",
            "pub fn entry(raw: &[u8]) -> u32 { helper(raw) }\n",
        ),
        (
            "crates/demo/src/helpers.rs",
            "pub fn helper(raw: &[u8]) -> u32 { raw.len() as u32 }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { super::helper(&[]).to_string(); }\n\
             }\n",
        ),
    ]);
    assert_eq!(
        targets(&g, node(&g, "entry")),
        vec!["helper".to_string()],
        "free calls resolve across files"
    );
    // The #[cfg(test)] fn never enters the index.
    assert!(g.nodes.iter().all(|n| n.name != "t"));
}

#[test]
fn stats_json_is_well_formed() {
    let g = graph(&[(
        "crates/demo/src/lib.rs",
        "pub fn a() { b(); unknowable(); }\npub fn b() {}\n",
    )]);
    let json = g.stats.render_json();
    for key in [
        "\"functions\":2",
        "\"calls\":2",
        "\"edges\":1",
        "\"unresolved_calls\":1",
        "\"unresolved_ratio\":0.5000",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
