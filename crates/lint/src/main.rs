//! CLI for `embedstab-lint`.
//!
//! ```text
//! cargo run -p embedstab-lint [-- --root PATH --format text|json --out PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 operator error.

use std::path::PathBuf;
use std::process::ExitCode;

use embedstab_lint::engine::{find_workspace_root, lint_root, render_json, render_text};
use embedstab_lint::rules::all_rules;

fn usage() -> String {
    let mut out = String::from(
        "embedstab-lint: determinism & safety static analysis for the embedstab workspace\n\n\
         USAGE:\n    embedstab-lint [--root PATH] [--format text|json] [--out PATH]\n\n\
         OPTIONS:\n\
         \x20   --root PATH      workspace root (default: nearest ancestor with [workspace])\n\
         \x20   --format FORMAT  text (default) or json\n\
         \x20   --out PATH       also write the rendered report to PATH\n\
         \x20   --help           this message\n\nRULES:\n",
    );
    for rule in all_rules() {
        out.push_str(&format!("    {:<30} {}\n", rule.id(), rule.description()));
    }
    out.push_str(
        "\nSuppressions: lint-allow.toml at the workspace root; every entry needs a\n\
         written justification (see the crate README).\n",
    );
    out
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--root" => root = args.next().map(PathBuf::from),
            "--format" => format = args.next().unwrap_or_default(),
            "--out" => out_path = args.next().map(PathBuf::from),
            other => {
                eprintln!("embedstab-lint: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if format != "text" && format != "json" {
        eprintln!("embedstab-lint: --format must be `text` or `json`, got `{format}`");
        return ExitCode::from(2);
    }
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("embedstab-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = root.or_else(|| find_workspace_root(&cwd)) else {
        eprintln!(
            "embedstab-lint: no workspace root found above {} (pass --root)",
            cwd.display()
        );
        return ExitCode::from(2);
    };
    let report = match lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("embedstab-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let rendered = if format == "json" {
        render_json(&report)
    } else {
        render_text(&report)
    };
    println!("{rendered}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, rendered.as_bytes()) {
            eprintln!(
                "embedstab-lint: cannot write report to {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
