//! CLI for `embedstab-lint`.
//!
//! ```text
//! cargo run -p embedstab-lint [-- --root PATH --format text|json --out PATH]
//! cargo run -p embedstab-lint -- --explain lock-order
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings (or a regressed
//! callgraph/baseline threshold), 2 operator error.

use std::path::PathBuf;
use std::process::ExitCode;

use embedstab_lint::engine::{find_workspace_root, lint_root, render_json, render_text};
use embedstab_lint::rules::rule_catalog;

fn usage() -> String {
    let mut out = String::from(
        "embedstab-lint: determinism & safety static analysis for the embedstab workspace\n\n\
         USAGE:\n    embedstab-lint [--root PATH] [--format text|json] [--out PATH]\n\n\
         OPTIONS:\n\
         \x20   --root PATH                 workspace root (default: nearest ancestor with [workspace])\n\
         \x20   --format FORMAT             text (default) or json\n\
         \x20   --out PATH                  also write the rendered report to PATH\n\
         \x20   --explain RULE              print a rule's rationale, example, and suppression guidance\n\
         \x20   --callgraph-stats PATH      write resolver stats JSON (fn/edge/unresolved counts)\n\
         \x20   --max-unresolved-ratio X    fail (exit 1) when unresolved calls exceed this ratio\n\
         \x20   --baseline PATH             fail (exit 1) when finding/suppression counts exceed\n\
         \x20                               the committed baseline JSON\n\
         \x20   --help                      this message\n\nRULES:\n",
    );
    for (id, desc, _) in rule_catalog() {
        out.push_str(&format!("    {:<33} {}\n", id, desc));
    }
    out.push_str(
        "\nSuppressions: lint-allow.toml at the workspace root; every entry needs a\n\
         written justification (see the crate README).\n",
    );
    out
}

fn explain(rule: &str) -> Option<String> {
    rule_catalog()
        .into_iter()
        .find(|(id, _, _)| *id == rule)
        .map(|(id, desc, body)| format!("{id}\n  {desc}\n\n{body}\n"))
}

/// Extracts the integer following `"key":` in a flat JSON object —
/// enough for the committed baseline file, with no parser dependency.
fn json_usize(text: &str, key: &str) -> Option<usize> {
    let tag = format!("\"{key}\":");
    let at = text.find(&tag)? + tag.len();
    let rest = text[at..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut out_path: Option<PathBuf> = None;
    let mut stats_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut max_unresolved: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(rule) = args.next() else {
                    eprintln!("embedstab-lint: --explain needs a rule id\n\n{}", usage());
                    return ExitCode::from(2);
                };
                match explain(&rule) {
                    Some(text) => {
                        print!("{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "embedstab-lint: unknown rule `{rule}`; known rules:\n{}",
                            rule_catalog()
                                .iter()
                                .map(|(id, _, _)| format!("    {id}"))
                                .collect::<Vec<_>>()
                                .join("\n")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--root" => root = args.next().map(PathBuf::from),
            "--format" => format = args.next().unwrap_or_default(),
            "--out" => out_path = args.next().map(PathBuf::from),
            "--callgraph-stats" => stats_path = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--max-unresolved-ratio" => {
                let raw = args.next().unwrap_or_default();
                match raw.parse::<f64>() {
                    Ok(x) if (0.0..=1.0).contains(&x) => max_unresolved = Some(x),
                    _ => {
                        eprintln!(
                            "embedstab-lint: --max-unresolved-ratio needs a number in \
                             [0, 1], got `{raw}`"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("embedstab-lint: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if format != "text" && format != "json" {
        eprintln!("embedstab-lint: --format must be `text` or `json`, got `{format}`");
        return ExitCode::from(2);
    }
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("embedstab-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = root.or_else(|| find_workspace_root(&cwd)) else {
        eprintln!(
            "embedstab-lint: no workspace root found above {} (pass --root)",
            cwd.display()
        );
        return ExitCode::from(2);
    };
    let report = match lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("embedstab-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let rendered = if format == "json" {
        render_json(&report)
    } else {
        render_text(&report)
    };
    println!("{rendered}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, rendered.as_bytes()) {
            eprintln!(
                "embedstab-lint: cannot write report to {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }
    if let Some(path) = stats_path {
        if let Err(e) = std::fs::write(&path, report.callgraph.render_json().as_bytes()) {
            eprintln!(
                "embedstab-lint: cannot write callgraph stats to {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }

    let mut failed = !report.is_clean();
    if let Some(limit) = max_unresolved {
        let ratio = report.callgraph.unresolved_ratio();
        if ratio > limit {
            eprintln!(
                "embedstab-lint: call-graph resolver regressed: {:.4} of calls \
                 unresolved ({} of {}), committed threshold is {:.4}",
                ratio, report.callgraph.unresolved_calls, report.callgraph.calls, limit
            );
            failed = true;
        }
    }
    if let Some(path) = baseline_path {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let base_findings = json_usize(&text, "findings").unwrap_or(0);
                let base_suppressed = json_usize(&text, "suppressed").unwrap_or(0);
                if report.findings.len() > base_findings
                    || report.suppressed.len() > base_suppressed
                {
                    eprintln!(
                        "embedstab-lint: counts regressed vs baseline {}: findings \
                         {} (baseline {}), suppressed {} (baseline {})",
                        path.display(),
                        report.findings.len(),
                        base_findings,
                        report.suppressed.len(),
                        base_suppressed
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!(
                    "embedstab-lint: cannot read baseline {}: {e}",
                    path.display()
                );
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
