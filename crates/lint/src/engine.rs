//! The walk-and-check engine: enumerates every non-vendored `.rs` file
//! under the workspace root, runs each path-applicable rule, applies the
//! allowlist, and renders the report.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::{CallGraphStats, Workspace};
use crate::config::{parse_allowlist, AllowEntry, ALLOWLIST_RULE};
use crate::rules::{all_rules, all_workspace_rules, rule_ids, Finding};
use crate::source::SourceFile;

/// Directory names never descended into. `fixtures` keeps the linter's
/// own true-positive test files out of the real tree's scan.
const SKIP_DIRS: [&str; 5] = ["vendor", "target", ".git", "fixtures", "results"];

/// The outcome of a full-tree lint.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings (including allowlist-config findings).
    pub findings: Vec<Finding>,
    /// Findings matched by an allowlist entry, kept for the report.
    pub suppressed: Vec<Finding>,
    pub files_scanned: usize,
    /// Resolver health of the workspace call graph (the CI artifact).
    pub callgraph: CallGraphStats,
}

impl Report {
    /// True when the tree is clean: nothing unsuppressed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs every rule — per-file, then workspace-level over the call graph —
/// on already-parsed files. The core both `lint_root` and the in-memory
/// entry points share.
fn lint_parsed(files: Vec<SourceFile>) -> (Vec<Finding>, CallGraphStats) {
    let mut findings = Vec::new();
    for file in &files {
        for rule in all_rules() {
            if rule.applies_to(&file.rel_path) {
                findings.extend(rule.check(file));
            }
        }
    }
    let ws = Workspace::build(files);
    for rule in all_workspace_rules() {
        findings.extend(rule.check(&ws));
    }
    (findings, ws.graph.stats)
}

/// Lints one in-memory source file under its workspace-relative path.
/// This is the single-file fixture-test entry point; path scoping works
/// exactly as it does on disk. Workspace rules run over the one file.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(rel_path, src)])
}

/// Lints a set of in-memory source files as one workspace — the entry
/// point for multi-file fixtures exercising the call-graph rules (a
/// transitive panic chain spanning two files resolves here exactly as it
/// does on disk).
pub fn lint_sources(sources: &[(&str, &str)]) -> Vec<Finding> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, src)| SourceFile::parse(rel, src))
        .collect();
    lint_parsed(files).0
}

/// Splits raw findings into (kept, suppressed) under the allowlist and
/// appends a finding per stale (never-matching) entry.
pub fn apply_allowlist(
    raw: Vec<Finding>,
    entries: &[AllowEntry],
    allow_path: &str,
) -> (Vec<Finding>, Vec<Finding>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        match entries.iter().position(|e| e.matches(&f)) {
            Some(i) => {
                used[i] = true;
                suppressed.push(f);
            }
            None => kept.push(f),
        }
    }
    for (entry, used) in entries.iter().zip(used) {
        if !used {
            kept.push(Finding {
                rule: ALLOWLIST_RULE.to_string(),
                path: allow_path.to_string(),
                line: entry.line,
                message: format!(
                    "stale allowlist entry: rule `{}` at `{}` suppresses nothing — \
                     delete it (the finding it justified is gone)",
                    entry.rule, entry.path
                ),
                snippet: "[[allow]]".to_string(),
            });
        }
    }
    (kept, suppressed)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut children: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    children.sort();
    for path in children {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`, applying the allowlist at
/// `root/lint-allow.toml` when present.
pub fn lint_root(root: &Path) -> io::Result<Report> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;
    let mut files = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = fs::read_to_string(path) else {
            continue; // non-UTF8 .rs file: nothing for a lexer to do
        };
        files.push(SourceFile::parse(&rel, &src));
    }
    let files_scanned = files.len();
    let (raw, callgraph) = lint_parsed(files);

    let allow_path = root.join("lint-allow.toml");
    let (entries, mut config_findings) = match fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text, "lint-allow.toml", &rule_ids()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => (Vec::new(), Vec::new()),
        Err(e) => return Err(e),
    };
    let (mut findings, suppressed) = apply_allowlist(raw, &entries, "lint-allow.toml");
    findings.append(&mut config_findings);
    findings.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(Report {
        findings,
        suppressed,
        files_scanned,
        callgraph,
    })
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(body) = fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as stable, machine-readable JSON (the CI artifact).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"files_scanned\":{},", report.files_scanned));
    out.push_str(&format!("\"suppressed\":{},", report.suppressed.len()));
    out.push_str(&format!("\"clean\":{},", report.is_clean()));
    out.push_str(&format!(
        "\"callgraph\":{},",
        report.callgraph.render_json()
    ));
    out.push_str("\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(&f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet),
        ));
    }
    out.push_str("]}");
    out
}

/// Renders the report as human-readable text.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    | {}\n", f.snippet));
        }
    }
    let cg = &report.callgraph;
    if report.is_clean() {
        out.push_str(&format!(
            "embedstab-lint: clean ({} files scanned, {} suppressed; callgraph: {} fns, \
             {} edges, {}/{} calls unresolved)\n",
            report.files_scanned,
            report.suppressed.len(),
            cg.functions,
            cg.edges,
            cg.unresolved_calls,
            cg.calls,
        ));
    } else {
        out.push_str(&format!(
            "embedstab-lint: {} finding(s) ({} files scanned, {} suppressed; callgraph: \
             {} fns, {} edges, {}/{} calls unresolved)\n",
            report.findings.len(),
            report.files_scanned,
            report.suppressed.len(),
            cg.functions,
            cg.edges,
            cg.unresolved_calls,
            cg.calls,
        ));
    }
    out
}
