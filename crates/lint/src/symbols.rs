//! Per-file symbol extraction for the workspace call-graph analysis:
//! every non-test `fn` item with its `impl`-header receiver-type hint,
//! the call sites it contains, and the panic sites it contains.
//!
//! This stays on the lexer's token stream (no AST): `impl` headers are
//! parsed just far enough to name the self type, call sites are the
//! token patterns `name(`, `path::name(`, and `.name(`, and panic sites
//! reuse the `no-panic-in-hot-path` token patterns. Everything here is
//! deliberately *syntactic* — [`crate::callgraph`] owns the (equally
//! conservative) name-based resolution.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Method names whose call panics on `Err`/`None`.
pub const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
/// Macros that panic unconditionally or on a failed runtime check.
/// `debug_assert!` is deliberately absent — it vanishes in release
/// builds, so it documents invariants without a production panic path.
pub const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords (and keyword-like idents) that can precede `(` without being
/// a call. Uppercase idents are excluded separately: `Some(x)`,
/// `Version(1)` are constructors, and this workspace's fns are
/// snake_case.
const NON_CALL_KEYWORDS: [&str; 21] = [
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "await", "else", "let",
    "mut", "ref", "where", "unsafe", "fn", "box", "dyn", "break", "continue",
];

/// One syntactic call site inside a `fn` body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The called name as written (`take_u32`, `lease`, ...).
    pub name: String,
    /// For free calls, the immediate `::` path segment before the name
    /// (`Mat` in `Mat::from_vec(...)`, `codec` in `codec::take_u32(...)`).
    pub qualifier: Option<String>,
    /// `recv.name(...)` rather than `name(...)`.
    pub is_method: bool,
    /// Method call whose receiver is literally `self`.
    pub receiver_is_self: bool,
    pub line: usize,
    /// Token index of the name in the file's token stream.
    pub tok: usize,
}

/// One panic site inside a `fn` body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// What panics, rendered for messages: `unwrap`, `assert_eq!`, ...
    pub what: String,
    pub line: usize,
}

/// One indexed `fn` item.
#[derive(Clone, Debug)]
pub struct FnSym {
    pub name: String,
    /// Self type when the fn sits in an `impl` block (last path segment:
    /// `WorkQueue` for `impl<T> WorkQueue<T>`, trait impls use the type
    /// after `for`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Inclusive token span of `fn ... { ... }`.
    pub start: usize,
    pub end: usize,
    /// Inside a `#[cfg(test)]` region or `#[test]` fn.
    pub is_test: bool,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
}

/// `impl` block regions: (self-type name, body token span).
fn impl_regions(toks: &[Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Scan the header to the body `{`, tracking generics depth; the
        // self type is the last path segment at depth 0, preferring the
        // segment after a top-level `for` (trait impls), stopping at
        // `where`.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut name: Option<String> = None;
        let mut name_after_for: Option<String> = None;
        let mut after_for = false;
        let mut in_where = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct(";") || (t.is_punct("{") && angle <= 0) {
                break;
            }
            if t.is_punct("<") || t.is_punct("<<") {
                angle += if t.text == "<<" { 2 } else { 1 };
            } else if t.is_punct(">") || t.is_punct(">>") {
                angle -= if t.text == ">>" { 2 } else { 1 };
            } else if angle <= 0 && t.kind == TokenKind::Ident && !in_where {
                if t.is_ident("for") {
                    after_for = true;
                } else if t.is_ident("where") {
                    in_where = true;
                } else if after_for {
                    name_after_for = Some(t.text.clone());
                } else {
                    name = Some(t.text.clone());
                }
            }
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct("{") {
            let end = matching_brace(toks, j);
            if let Some(n) = name_after_for.or(name) {
                out.push((n, j, end));
            }
            i = j + 1;
        } else {
            i = j + 1;
        }
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Indexes every `fn` item in `file`. Test fns are kept (marked) so
/// callers can exclude them; tokens under a test mask never contribute
/// call or panic sites.
pub fn index_fns(file: &SourceFile) -> Vec<FnSym> {
    let toks = &file.tokens;
    let impls = impl_regions(toks);
    let mut syms: Vec<FnSym> = file
        .fn_spans
        .iter()
        .map(|s| {
            let impl_type = impls
                .iter()
                .filter(|(_, lo, hi)| *lo <= s.start && s.start <= *hi)
                .min_by_key(|(_, lo, hi)| hi - lo)
                .map(|(n, _, _)| n.clone());
            FnSym {
                name: s.name.clone(),
                impl_type,
                line: toks.get(s.start).map(|t| t.line).unwrap_or(1),
                start: s.start,
                end: s.end,
                is_test: file.test_mask.get(s.start).copied().unwrap_or(false),
                calls: Vec::new(),
                panics: Vec::new(),
            }
        })
        .collect();

    // Innermost-fn owner of every token, so a nested fn's body is
    // attributed to the nested fn, not the enclosing one.
    let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
    for (si, s) in file.fn_spans.iter().enumerate() {
        let len = s.end - s.start;
        for slot in owner.iter_mut().take(s.end + 1).skip(s.start) {
            let tighter = match slot {
                Some(prev) => {
                    let p = &file.fn_spans[*prev];
                    len < p.end - p.start
                }
                None => true,
            };
            if tighter {
                *slot = Some(si);
            }
        }
    }

    for i in 0..toks.len() {
        let Some(o) = owner[i] else { continue };
        if file.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_bang = matches!(toks.get(i + 1), Some(n) if n.is_punct("!"));
        let next_paren = matches!(toks.get(i + 1), Some(n) if n.is_punct("("));
        let prev_dot = i >= 1 && toks[i - 1].is_punct(".");

        // Panic sites (the `no-panic-in-hot-path` token patterns).
        let panic_method = PANIC_METHODS.iter().any(|m| t.is_ident(m)) && prev_dot && next_paren;
        let panic_macro = PANIC_MACROS.iter().any(|m| t.is_ident(m)) && next_bang;
        if panic_method || panic_macro {
            syms[o].panics.push(PanicSite {
                what: if panic_macro {
                    format!("{}!", t.text)
                } else {
                    t.text.clone()
                },
                line: t.line,
            });
            continue;
        }

        // Call sites.
        if !next_paren || next_bang {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        if t.text.chars().next().is_some_and(|c| c.is_uppercase()) {
            continue; // tuple-struct / enum-variant constructor
        }
        if i >= 1 && toks[i - 1].is_ident("fn") {
            continue; // the definition itself
        }
        if prev_dot {
            let receiver_is_self = i >= 2 && toks[i - 2].is_ident("self");
            syms[o].calls.push(CallSite {
                name: t.text.clone(),
                qualifier: None,
                is_method: true,
                receiver_is_self,
                line: t.line,
                tok: i,
            });
        } else {
            let qualifier = if i >= 2 && toks[i - 1].is_punct("::") {
                match &toks[i - 2] {
                    q if q.kind == TokenKind::Ident => Some(q.text.clone()),
                    _ => None,
                }
            } else {
                None
            };
            syms[o].calls.push(CallSite {
                name: t.text.clone(),
                qualifier,
                is_method: false,
                receiver_is_self: false,
                line: t.line,
                tok: i,
            });
        }
    }
    syms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(src: &str) -> Vec<FnSym> {
        index_fns(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn impl_type_hint_covers_inherent_and_trait_impls() {
        let src = "
            struct WorkQueue<T> { x: T }
            impl<T: Clone> WorkQueue<T> { fn lease(&self) { helper(); } }
            impl<T> std::fmt::Debug for WorkQueue<T> {
                fn fmt(&self) { self.lease(); }
            }
            fn helper() {}
        ";
        let syms = index(src);
        let lease = syms.iter().find(|s| s.name == "lease").expect("lease");
        assert_eq!(lease.impl_type.as_deref(), Some("WorkQueue"));
        let fmt = syms.iter().find(|s| s.name == "fmt").expect("fmt");
        assert_eq!(fmt.impl_type.as_deref(), Some("WorkQueue"));
        assert!(fmt
            .calls
            .iter()
            .any(|c| c.name == "lease" && c.receiver_is_self));
        let helper = syms.iter().find(|s| s.name == "helper").expect("helper");
        assert_eq!(helper.impl_type, None);
    }

    #[test]
    fn calls_capture_qualifiers_and_skip_constructors() {
        let src = "
            fn go() {
                let m = Mat::from_vec(2, 2, data);
                let v = codec::take_u32(r);
                local();
                Some(3);
                let j = Job(1);
            }
        ";
        let syms = index(src);
        let go = &syms[0];
        let names: Vec<&str> = go.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["from_vec", "take_u32", "local"]);
        assert_eq!(go.calls[0].qualifier.as_deref(), Some("Mat"));
        assert_eq!(go.calls[1].qualifier.as_deref(), Some("codec"));
        assert_eq!(go.calls[2].qualifier, None);
    }

    #[test]
    fn nested_fn_bodies_belong_to_the_inner_fn() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }";
        let syms = index(src);
        let outer = syms.iter().find(|s| s.name == "outer").expect("outer");
        let inner = syms.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(
            outer.calls.iter().map(|c| &c.name).collect::<Vec<_>>(),
            vec!["shallow"]
        );
        assert_eq!(
            inner.calls.iter().map(|c| &c.name).collect::<Vec<_>>(),
            vec!["deep"]
        );
    }

    #[test]
    fn panic_sites_are_collected_but_not_in_test_fns_bodies() {
        let src = "
            fn hot(&self) { self.x.unwrap(); assert_eq!(a, b); debug_assert!(c); }
            #[cfg(test)]
            mod tests { fn t() { x.unwrap(); } }
        ";
        let syms = index(src);
        let hot = syms.iter().find(|s| s.name == "hot").expect("hot");
        let whats: Vec<&str> = hot.panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(whats, vec!["unwrap", "assert_eq!"]);
        let t = syms.iter().find(|s| s.name == "t").expect("t");
        assert!(t.is_test);
        assert!(t.panics.is_empty());
    }
}
