//! `lock-order` — guard-liveness tracking over the token stream: a
//! second lock acquired while one is held must follow the single
//! workspace-wide acquisition order, guards must not be held across a
//! call edge that itself locks, and guards must not be held across
//! blocking socket/console IO.
//!
//! Guard liveness is modeled on Rust's temporary-scope rules, which are
//! exactly the trap this rule exists for:
//!
//! - a guard bound by `let g = m.lock();` lives to the end of the
//!   enclosing block (or an explicit `drop(g)`);
//! - a **match-scrutinee** temporary (`match m.lock().lease(..) { .. }`)
//!   lives to the end of the whole `match` — the classic surprise: every
//!   arm body runs with the lock held;
//! - a `for`-loop iterator temporary (`for x in m.lock().iter()`) lives
//!   for the whole loop body;
//! - an `if`/`while` **condition** temporary drops before the body runs;
//! - anything else (a chained `m.lock().push(x)` statement) drops at the
//!   end of its statement.
//!
//! Lock identity is the receiver's final field name (`shared.queue` and
//! `self.queue` are both `queue`) — names, not objects, which matches
//! how this workspace names its shared state and is what a reviewer
//! reads in the blessed-order table. Acquisition is the zero-arg
//! `.lock()`/`.read()`/`.write()` pattern; the zero-arg requirement
//! separates `RwLock::read` from `io::Read::read(&mut buf)`.
//!
//! The ordered-pair graph is inferred from every site in the workspace:
//! pair (A→B) is a hazard exactly when B can already reach A through the
//! observed pairs (a 2-cycle is the AB/BA inversion; longer cycles are
//! reported with the full path), and the finding names both sites.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{is_lock_acquisition, Workspace};
use crate::lexer::{Token, TokenKind};
use crate::rules::{Finding, WorkspaceRule};
use crate::source::SourceFile;

/// Socket/console IO reached while a guard is live. Free/assoc calls
/// only — file IO (`atomic_write`) under a short-lived guard is how
/// serve's promote path stays atomic and is deliberately not flagged.
const BLOCKING_IO_CALLS: [&str; 4] = ["write_frame", "read_frame", "call_with_timeout", "connect"];
/// Console macros: stderr writes block on a slow consumer like any pipe.
const BLOCKING_IO_MACROS: [&str; 4] = ["eprintln", "println", "eprint", "print"];

/// One lock acquisition with its computed liveness range.
#[derive(Clone, Debug)]
struct Acq {
    /// Heuristic lock identity: final receiver field name.
    name: String,
    /// Token index of the `lock`/`read`/`write` ident.
    tok: usize,
    line: usize,
    /// Exclusive token index the guard is live until.
    live_end: usize,
    /// Variable a `let`-bound guard is named by (for `drop(var)`).
    bound_var: Option<String>,
}

/// A pair site: `first` held when `second` was acquired.
#[derive(Clone, Debug)]
struct PairSite {
    node: usize,
    first_line: usize,
    line: usize,
}

pub struct LockOrder;

fn is_ident_kw(t: &Token, kws: &[&str]) -> bool {
    t.kind == TokenKind::Ident && kws.iter().any(|k| t.text == *k)
}

/// Statement start: scan back from `i` to `lo` for `;`/`{`/`}`/`,` at
/// bracket depth 0 (depth over `()`/`[]` so `vec![0; n]` and argument
/// lists don't fake a boundary).
fn stmt_start(toks: &[Token], i: usize, lo: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j > lo {
        let t = &toks[j - 1];
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            depth -= 1;
        } else if depth == 0
            && (t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_punct(","))
        {
            return j;
        }
        j -= 1;
    }
    lo
}

/// End of the temporary scope for an acquisition at `i`: the `;`/`,`
/// closing its statement (brace/paren/bracket-balanced), or the token
/// where the enclosing block closes.
fn stmt_end(toks: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j <= hi && j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if depth == 0 && (t.is_punct(";") || t.is_punct(",")) {
            return j;
        }
        j += 1;
    }
    hi
}

/// Token index where the enclosing block closes (first `}` that takes
/// the running depth negative).
fn block_end(toks: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j <= hi && j < toks.len() {
        let t = &toks[j];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        }
        j += 1;
    }
    hi
}

/// First `{` at depth 0 (over `()`/`[]`) from `i`, then its matching `}`
/// — the span of a `match`/`for` statement's block.
fn block_stmt_end(toks: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j <= hi && j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("{") && depth <= 0 {
            // matching close of this brace
            let mut bd = 0i32;
            let mut k = j;
            while k <= hi && k < toks.len() {
                if toks[k].is_punct("{") {
                    bd += 1;
                } else if toks[k].is_punct("}") {
                    bd -= 1;
                    if bd == 0 {
                        return k;
                    }
                }
                k += 1;
            }
            return hi;
        }
        j += 1;
    }
    hi
}

/// The receiver's final field name: `shared.queue.lock()` → `queue`.
fn lock_name(toks: &[Token], acq_tok: usize) -> String {
    if acq_tok >= 2 && toks[acq_tok - 2].kind == TokenKind::Ident {
        toks[acq_tok - 2].text.clone()
    } else {
        "<expr>".to_string()
    }
}

/// Whether every token in `toks[lo..hi]` is plain receiver-path material
/// (ident/`.`/`&`/`*`/`::`/`mut`), i.e. the acquisition *is* the `let`
/// initializer value (possibly behind `&*` with temporary-lifetime
/// extension) rather than buried in a `match`/`if` scrutinee.
fn direct_let_init(toks: &[Token], lo: usize, hi: usize) -> bool {
    toks[lo..hi].iter().all(|t| {
        t.is_punct(".")
            || t.is_punct("&")
            || t.is_punct("*")
            || t.is_punct("::")
            || (t.kind == TokenKind::Ident
                && !is_ident_kw(
                    t,
                    &["match", "if", "while", "loop", "for", "unsafe", "return"],
                ))
    })
}

/// All lock acquisitions in the fn token span `[lo, hi]`, with liveness.
fn collect_acquisitions(file: &SourceFile, lo: usize, hi: usize) -> Vec<Acq> {
    let toks = &file.tokens;
    let mut acqs = Vec::new();
    for i in lo..=hi.min(toks.len().saturating_sub(1)) {
        if file.test_mask[i] || !is_lock_acquisition(toks, i) {
            continue;
        }
        let after_call = i + 3; // past `name ( )`
        let chained = matches!(toks.get(after_call), Some(t) if t.is_punct(".") || t.is_punct("?"));
        let s = stmt_start(toks, i, lo);
        let kw = &toks[s];
        let mut bound_var = None;
        let live_end = if is_ident_kw(kw, &["if", "while"]) {
            // Condition temporaries drop before the body runs.
            let mut depth = 0i32;
            let mut cond_open = hi;
            let mut j = s;
            while j <= hi && j < toks.len() {
                let t = &toks[j];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if t.is_punct("{") && depth <= 0 {
                    cond_open = j;
                    break;
                }
                j += 1;
            }
            if i < cond_open {
                cond_open
            } else {
                stmt_end(toks, after_call, hi)
            }
        } else if is_ident_kw(kw, &["match", "for"]) {
            // Scrutinee/iterator temporaries live for the whole block.
            block_stmt_end(toks, i, hi)
        } else if kw.is_ident("let") && !chained {
            // Find the `=` and require a direct initializer; otherwise the
            // guard is a plain temporary inside the initializer expression.
            let eq = (s..i).find(|&k| toks[k].is_punct("="));
            match eq {
                Some(eq) if direct_let_init(toks, eq + 1, i.saturating_sub(2).max(eq + 1)) => {
                    // `let [mut] name = ...` — remember the binding for drop().
                    let mut v = s + 1;
                    if matches!(toks.get(v), Some(t) if t.is_ident("mut")) {
                        v += 1;
                    }
                    if matches!(toks.get(v), Some(t) if t.kind == TokenKind::Ident) {
                        bound_var = Some(toks[v].text.clone());
                    }
                    block_end(toks, after_call, hi)
                }
                _ => stmt_end(toks, after_call, hi),
            }
        } else {
            stmt_end(toks, after_call, hi)
        };
        acqs.push(Acq {
            name: lock_name(toks, i),
            tok: i,
            line: toks[i].line,
            live_end,
            bound_var,
        });
    }
    // Explicit `drop(var)` truncates a bound guard's liveness.
    for a in acqs.iter_mut() {
        let Some(var) = a.bound_var.clone() else {
            continue;
        };
        for d in a.tok..a.live_end.min(toks.len().saturating_sub(3)) {
            if toks[d].is_ident("drop")
                && toks[d + 1].is_punct("(")
                && toks[d + 2].is_ident(&var)
                && toks[d + 3].is_punct(")")
            {
                a.live_end = d;
                break;
            }
        }
    }
    acqs
}

impl WorkspaceRule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "lock acquisitions must follow one workspace-wide order; guards must not be \
         held across a call that locks, nor across socket/console IO"
    }

    fn explain(&self) -> &'static str {
        "WHY: the serve and fleet layers juggle Mutex/RwLock state across handler \
         threads; two threads taking the same pair of locks in opposite orders is \
         a deadlock that only fires under load, and a guard held across a socket \
         write stalls every peer of that lock for a slow client's RTT. Rust makes \
         the hold easy to miss: a match-scrutinee temporary \
         (`match m.lock().lease(..) { .. }`) keeps the guard live through every \
         arm.\n\
         EXAMPLE: lock-order hazard: `queue` then `staged` here, but `staged` \
         then `queue` at crates/fleet/src/coordinator.rs:NN\n\
         FIX: hoist the locked call out of the scrutinee (`let outcome = \
         m.lock().lease(..); match outcome { .. }`), narrow critical sections so \
         IO happens after the guard drops, and keep nesting in the blessed order \
         (README table).\n\
         SUPPRESS: only with an argument why both orders can never contend (e.g. \
         one site is single-threaded startup); name the other site."
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let g = &ws.graph;
        let mut findings = Vec::new();
        // (first, second) -> sites, across the whole workspace.
        let mut pairs: BTreeMap<(String, String), Vec<PairSite>> = BTreeMap::new();

        for idx in ws.node_ids() {
            let node = &g.nodes[idx];
            if !(node.file.starts_with("crates/") && node.file.contains("/src/")) {
                continue;
            }
            let file = &ws.files[node.file_idx];
            let toks = &file.tokens;
            let acqs = collect_acquisitions(file, node.start, node.end);
            for a in &acqs {
                // Second acquisition while `a` is held.
                for b in &acqs {
                    if b.tok > a.tok && b.tok < a.live_end {
                        if b.name == a.name {
                            findings.push(Finding::new(
                                self.id(),
                                file,
                                b.line,
                                format!(
                                    "`{}` acquired at line {} is still held here — a second \
                                     acquisition of the same lock self-deadlocks",
                                    a.name, a.line
                                ),
                            ));
                        } else {
                            pairs
                                .entry((a.name.clone(), b.name.clone()))
                                .or_default()
                                .push(PairSite {
                                    node: idx,
                                    first_line: a.line,
                                    line: b.line,
                                });
                        }
                    }
                }
                // Guard held across a resolved call edge that itself locks.
                let mut seen: BTreeSet<usize> = BTreeSet::new();
                for e in &g.edges[idx] {
                    if e.tok > a.tok
                        && e.tok < a.live_end
                        && seen.insert(e.to)
                        && g.node_acquires_lock(&ws.files, e.to)
                    {
                        findings.push(Finding::new(
                            self.id(),
                            file,
                            e.line,
                            format!(
                                "`{}` guard (line {}) held across call to `{}` \
                                 ({}:{}), which itself acquires a lock — lock \
                                 acquisition through a call edge while holding a \
                                 guard hides the ordering from both sites",
                                a.name,
                                a.line,
                                g.nodes[e.to].display_name(),
                                g.nodes[e.to].file,
                                g.nodes[e.to].line
                            ),
                        ));
                    }
                }
                // Guard held across blocking socket/console IO.
                for i in (a.tok + 3)..a.live_end.min(toks.len()) {
                    if file.test_mask[i] || toks[i].kind != TokenKind::Ident {
                        continue;
                    }
                    let t = &toks[i];
                    let io_macro = BLOCKING_IO_MACROS.iter().any(|m| t.is_ident(m))
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"));
                    let io_call = BLOCKING_IO_CALLS.iter().any(|m| t.is_ident(m))
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct("("));
                    if io_macro || io_call {
                        findings.push(Finding::new(
                            self.id(),
                            file,
                            t.line,
                            format!(
                                "`{}` guard (line {}) held across blocking IO `{}{}` — \
                                 narrow the critical section so network/console IO runs \
                                 after the guard drops",
                                a.name,
                                a.line,
                                t.text,
                                if io_macro { "!" } else { "(..)" }
                            ),
                        ));
                    }
                }
            }
        }

        // Workspace-wide order: pair (a, b) is a hazard when b already
        // reaches a through observed pairs (2-cycle = direct inversion).
        let adj: BTreeMap<&str, BTreeSet<&str>> = {
            let mut m: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for (a, b) in pairs.keys() {
                m.entry(a.as_str()).or_default().insert(b.as_str());
            }
            m
        };
        let reaches = |from: &str, to: &str| -> bool {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack = vec![from];
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if !seen.insert(n) {
                    continue;
                }
                if let Some(outs) = adj.get(n) {
                    stack.extend(outs.iter().copied());
                }
            }
            false
        };
        for ((a, b), sites) in &pairs {
            if !reaches(b, a) {
                continue;
            }
            // Name the counterpart: a direct (b, a) site when one exists,
            // else the first hop of the reverse path.
            let counter = pairs
                .get(&(b.clone(), a.clone()))
                .and_then(|v| v.first())
                .or_else(|| {
                    adj.get(b.as_str()).and_then(|outs| {
                        outs.iter()
                            .find(|&&c| reaches(c, a))
                            .and_then(|&c| pairs.get(&(b.clone(), c.to_string())))
                            .and_then(|v| v.first())
                    })
                });
            for site in sites {
                let node = &g.nodes[site.node];
                let file = &ws.files[node.file_idx];
                let counter_txt = match counter {
                    Some(c) => {
                        let cn = &g.nodes[c.node];
                        format!("`{}` is held first at {}:{}", b, cn.file, c.line)
                    }
                    None => format!("`{}` is also acquired while other guards are held", b),
                };
                findings.push(Finding::new(
                    self.id(),
                    file,
                    site.line,
                    format!(
                        "lock-order hazard: `{}` (line {}) then `{}` here, but {} — \
                         opposite nesting deadlocks under contention; pick one global \
                         order",
                        a, site.first_line, b, counter_txt
                    ),
                ));
            }
        }
        findings
    }
}
