//! `no-wallclock-in-fingerprint` — cache, codec, and fingerprint modules
//! must not read wall-clock time.
//!
//! Every cache file in this workspace is keyed and validated by
//! content-derived fingerprints so that shard fleets and warm re-runs are
//! bitwise equal to cold runs. A timestamp folded into a fingerprint, a
//! cache header, or a temp-file name that later leaks into content would
//! silently vary per run — the same class of per-process nondeterminism
//! as hash iteration order, but guaranteed to differ every time.
//! (`atomic_write` deliberately derives temp names from the process id
//! plus an atomic counter, not the clock.)
//!
//! Scoped to files whose path mentions `cache`, `codec`, or
//! `fingerprint`, plus all of `crates/stream/src/**` — the incremental
//! service's whole value is that streamed state re-fingerprints and
//! checkpoints bitwise, so none of its modules may fold the clock into
//! state — and all of `crates/fleet/src/**`: the fleet ships cache files
//! between machines by fingerprint and re-dispatches work on lease
//! timeouts, so its library code takes time as an *injected* `now_ms`
//! (the bench binaries supply a monotonic epoch) rather than reading a
//! clock that could leak into retry schedules or shipped state. Timing
//! *measurement* (e.g. the coordinator binaries' wall-clock reports, the
//! incremental-retrain bench) is fine and stays out of scope.

use crate::rules::{Finding, Rule};
use crate::source::SourceFile;

pub struct NoWallclockInFingerprint;

impl Rule for NoWallclockInFingerprint {
    fn id(&self) -> &'static str {
        "no-wallclock-in-fingerprint"
    }

    fn description(&self) -> &'static str {
        "no SystemTime::now/Instant::now in cache/codec/fingerprint modules, \
         crates/stream/src/**, or crates/fleet/src/**; cached artifacts and \
         fleet schedules must be bitwise reproducible"
    }

    fn explain(&self) -> &'static str {
        "WHY: every cache artifact is keyed and validated by content-derived \
         fingerprints so warm re-runs and shard fleets reproduce cold runs \
         bitwise. A clock read folded into a fingerprint, header, or retry \
         schedule varies every run — guaranteed nondeterminism.\n\
         EXAMPLE: let stamp = SystemTime::now();  // in a cache/codec module\n\
         FIX: derive state from content (fingerprints, counters) and take time as \
         an injected `now_ms` parameter where scheduling needs it.\n\
         SUPPRESS: justified only for pure *measurement* (a bench report) that \
         provably never leaks into cached state."
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        if rel_path.starts_with("crates/stream/src/") || rel_path.starts_with("crates/fleet/src/") {
            return true;
        }
        let p = rel_path.to_ascii_lowercase();
        p.contains("cache") || p.contains("codec") || p.contains("fingerprint")
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let toks = &file.tokens;
        let mut findings = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if !(t.is_ident("SystemTime") || t.is_ident("Instant")) {
                continue;
            }
            if matches!(toks.get(i + 1), Some(a) if a.is_punct("::"))
                && matches!(toks.get(i + 2), Some(b) if b.is_ident("now"))
            {
                findings.push(Finding::new(
                    self.id(),
                    file,
                    t.line,
                    format!(
                        "`{}::now` in a cache/codec/fingerprint module: wall-clock values \
                         make cached artifacts differ per run, breaking bitwise \
                         reproducibility",
                        t.text
                    ),
                ));
            }
        }
        findings
    }
}
