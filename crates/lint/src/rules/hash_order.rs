//! `hash-order-float-sum` — flag hash-map/set iteration in functions whose
//! results are order-sensitive.
//!
//! The bug class: PR 5 found `Cooc::row_sums` accumulating `f64` counts in
//! `HashMap` iteration order. Float addition is not associative, and hash
//! iteration order varies per process (SipHash keys are randomized), so
//! the sums — and the PPMI statistics and every embedding trained from
//! them — differed bitwise between processes, silently breaking the
//! shard-fleet guarantee that a sharded run reproduces the unsharded run.
//!
//! Heuristic (no AST, so this is deliberately conservative in both
//! directions and backed by fixture tests):
//!
//! - a *hash iteration* is `.iter()` / `.iter_mut()` / `.keys()` /
//!   `.values()` / `.values_mut()` / `.into_iter()` / `.drain(..)` on a
//!   name the same file declares as `HashMap`/`HashSet` (let binding,
//!   struct field, or parameter annotation), or a `for .. in &name` loop
//!   over such a name;
//! - the enclosing function is *order-sensitive* when it also contains a
//!   `+=` accumulation or feeds an encode/fingerprint path
//!   (`encode`/`encode_into`/`fingerprint`/`put_*`/`to_le_bytes`/
//!   `write_all`/`hash`/`emit`);
//! - the function is *exonerated* when it visibly canonicalizes: any
//!   `sort*` call or a `BTreeMap`/`BTreeSet` in the same function.
//!
//! Test regions are skipped (tests iterate maps to assert membership, and
//! a test that cared about order would fail loudly, not silently).

use crate::lexer::TokenKind;
use crate::rules::{Finding, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

const ORDER_SENSITIVE_MARKERS: [&str; 10] = [
    "encode",
    "encode_into",
    "fingerprint",
    "put_f64",
    "put_u64",
    "put_u32",
    "to_le_bytes",
    "write_all",
    "hash",
    "emit",
];

pub struct HashOrderFloatSum;

/// Names declared with a `HashMap`/`HashSet` type in this file: catches
/// `name: HashMap<..>` annotations (fields, params, let bindings) and
/// `let [mut] name = HashMap::new()`-style initializations.
fn hash_declared_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut names = BTreeSet::new();
    for (k, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over path/reference noise: `std :: collections ::`, `&`.
        let mut j = k;
        while j > 0 {
            let p = &toks[j - 1];
            let is_path_noise = p.is_punct("::")
                || p.is_punct("&")
                || p.is_ident("std")
                || p.is_ident("collections")
                || p.kind == TokenKind::Lifetime;
            if is_path_noise {
                j -= 1;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        let before = &toks[j - 1];
        // `name : HashMap<..>` (annotation) or `name = HashMap::new()`.
        if (before.is_punct(":") || before.is_punct("=")) && j >= 2 {
            let name = &toks[j - 2];
            if name.kind == TokenKind::Ident {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

impl Rule for HashOrderFloatSum {
    fn id(&self) -> &'static str {
        "hash-order-float-sum"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet iteration in functions that accumulate floats or feed \
         encode/fingerprint paths; iterate sorted entries or use BTreeMap"
    }

    fn explain(&self) -> &'static str {
        "WHY: float addition is not associative and SipHash iteration order is \
         randomized per process, so a HashMap-order float sum differs bitwise \
         between processes. PR 5 found `Cooc::row_sums` doing exactly this — it \
         silently broke the shard-fleet guarantee that sharded == unsharded.\n\
         EXAMPLE: for (_, v) in counts.iter() { total += v; }  // counts: HashMap\n\
         FIX: collect-and-sort the keys first, or switch the container to \
         BTreeMap/BTreeSet so iteration is ordered.\n\
         SUPPRESS: only when the accumulation is provably order-free (integer \
         sums, max), with that argument written in the justification."
    }

    fn applies_to(&self, _rel_path: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let names = hash_declared_names(file);
        if names.is_empty() {
            return Vec::new();
        }
        let toks = &file.tokens;
        let mut findings = Vec::new();
        let mut flagged_lines = BTreeSet::new();
        let mut consider = |idx: usize, name: &str, findings: &mut Vec<Finding>| {
            if file.test_mask.get(idx).copied().unwrap_or(false) {
                return;
            }
            let Some(span) = file.enclosing_fn(idx) else {
                return;
            };
            let body = &toks[span.start..=span.end];
            let sensitive = body
                .iter()
                .any(|t| t.is_punct("+=") || ORDER_SENSITIVE_MARKERS.iter().any(|m| t.is_ident(m)));
            let canonicalized = body.iter().any(|t| {
                (t.kind == TokenKind::Ident && t.text.starts_with("sort"))
                    || t.is_ident("BTreeMap")
                    || t.is_ident("BTreeSet")
            });
            if sensitive && !canonicalized && flagged_lines.insert(toks[idx].line) {
                findings.push(Finding::new(
                    self.id(),
                    file,
                    toks[idx].line,
                    format!(
                        "iteration over hash-ordered `{name}` in `{}`, which accumulates \
                         floats or feeds an encode/fingerprint path; hash iteration order \
                         varies per process — iterate sorted entries or use BTreeMap/BTreeSet",
                        span.name
                    ),
                ));
            }
        };
        for i in 0..toks.len() {
            // `name.iter()` / `name.values()` / ... method iteration.
            if toks[i].kind == TokenKind::Ident
                && ITER_METHODS.iter().any(|m| toks[i].is_ident(m))
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
                && i >= 2
                && toks[i - 1].is_punct(".")
                && names.contains(&toks[i - 2].text)
            {
                let receiver = toks[i - 2].text.clone();
                consider(i, &receiver, &mut findings);
            }
            // `for pat in &name {` / `for pat in name {` loop iteration.
            if toks[i].is_ident("in") {
                let mut j = i + 1;
                while matches!(toks.get(j), Some(t) if t.is_punct("&") || t.is_ident("mut")) {
                    j += 1;
                }
                if let (Some(name_tok), Some(open)) = (toks.get(j), toks.get(j + 1)) {
                    if name_tok.kind == TokenKind::Ident
                        && names.contains(&name_tok.text)
                        && open.is_punct("{")
                    {
                        let receiver = name_tok.text.clone();
                        consider(j, &receiver, &mut findings);
                    }
                }
            }
        }
        findings
    }
}
