//! `unsafe-needs-safety-comment` — every `unsafe` occurrence must carry a
//! nearby SAFETY justification.
//!
//! The workspace's only `unsafe` lives in the AVX2+FMA micro-kernel
//! dispatch in `crates/linalg/src/gemm.rs`, where the obligation (runtime
//! ISA verification before calling a `#[target_feature]` function) is
//! documented. This rule keeps it that way: any new `unsafe` block, fn,
//! or impl must state its invariants either within the six raw source
//! lines ending at the `unsafe` keyword (`// SAFETY:` comment) or
//! anywhere in the contiguous doc-comment/attribute block directly above
//! the item (`# Safety` doc section, however long).
//!
//! Applies everywhere, including tests: undocumented unsafe in a test is
//! still undocumented unsafe.

use crate::rules::{Finding, Rule};
use crate::source::SourceFile;

pub struct UnsafeNeedsSafetyComment;

/// True if the contiguous run of comment/attribute/empty lines ending just
/// above `line` (1-based) mentions "safety". This lets a long `# Safety`
/// doc section sit arbitrarily far above the `unsafe fn` it documents, as
/// long as nothing but the doc block and attributes separate them.
fn doc_block_mentions_safety(file: &SourceFile, line: usize) -> bool {
    let mut i = line.saturating_sub(1); // 1-based line above `line`
    while i >= 1 {
        let text = file.line_text(i);
        let t = text.trim_start();
        let is_block = t.is_empty()
            || t.starts_with("//")
            || t.starts_with("#[")
            || t.starts_with("#!")
            || t.starts_with("*")
            || t.starts_with("/*");
        if !is_block {
            return false;
        }
        if t.to_ascii_lowercase().contains("safety") {
            return true;
        }
        i -= 1;
    }
    false
}

impl Rule for UnsafeNeedsSafetyComment {
    fn id(&self) -> &'static str {
        "unsafe-needs-safety-comment"
    }

    fn description(&self) -> &'static str {
        "every unsafe block/fn/impl needs a nearby SAFETY comment documenting its invariants"
    }

    fn explain(&self) -> &'static str {
        "WHY: the workspace's only `unsafe` is the AVX2+FMA micro-kernel dispatch, \
         whose obligation (runtime ISA check before a #[target_feature] call) is \
         documented where it is discharged. Undocumented unsafe rots: the next \
         editor cannot tell which invariant they are about to break.\n\
         EXAMPLE: unsafe { kernel_avx2(a, b, c) }  // no SAFETY comment in sight\n\
         FIX: a `// SAFETY: ...` comment within the six lines above, or a \
         `# Safety` doc section on the item.\n\
         SUPPRESS: never — write the comment instead; it is strictly cheaper."
    }

    fn applies_to(&self, _rel_path: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut findings = Vec::new();
        for t in &file.tokens {
            if !t.is_ident("unsafe") {
                continue;
            }
            let lo = t.line.saturating_sub(6);
            if file.lines_contain(lo, t.line, "safety") || doc_block_mentions_safety(file, t.line) {
                continue;
            }
            findings.push(Finding::new(
                self.id(),
                file,
                t.line,
                "`unsafe` without a nearby `// SAFETY:` comment (or `# Safety` doc \
                 section) stating the invariants the caller upholds"
                    .to_string(),
            ));
        }
        findings
    }
}
