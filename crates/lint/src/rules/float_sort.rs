//! `float-sort-total-order` — forbid `partial_cmp` inside sort/min/max
//! comparator closures.
//!
//! PR 5 swept ten float sorts whose comparators called
//! `partial_cmp(..).unwrap()`: `partial_cmp` is not a total order under
//! NaN, so a single degenerate value panics the sort (or, with
//! `unwrap_or(Equal)`, silently produces an ordering that depends on the
//! input permutation — a per-process nondeterminism in disguise). The
//! repo-wide replacements are `f64::total_cmp` and, where runtime NaNs
//! must rank after every finite value regardless of their sign bit,
//! `embedstab_core::stats::cmp_nan_last` / `cmp_desc_nan_last`.
//!
//! Applies to every non-vendored file, including tests: a NaN-panicking
//! comparator in a test is a flake waiting for a degenerate input.

use crate::rules::{Finding, Rule};
use crate::source::SourceFile;

const SORT_METHODS: [&str; 9] = [
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_by_cached_key",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
];

pub struct FloatSortTotalOrder;

impl Rule for FloatSortTotalOrder {
    fn id(&self) -> &'static str {
        "float-sort-total-order"
    }

    fn description(&self) -> &'static str {
        "comparator closures must not call partial_cmp; use f64::total_cmp or \
         core::stats::cmp_nan_last/cmp_desc_nan_last"
    }

    fn explain(&self) -> &'static str {
        "WHY: `partial_cmp` is not a total order under NaN. PR 5 swept ten float \
         sorts whose comparators called `partial_cmp(..).unwrap()` — one degenerate \
         value panics the sort, and `unwrap_or(Equal)` silently produces an ordering \
         that depends on the input permutation (per-process nondeterminism).\n\
         EXAMPLE: scores.sort_by(|a, b| a.partial_cmp(b).unwrap())\n\
         FIX: `f64::total_cmp`, or `core::stats::cmp_nan_last`/`cmp_desc_nan_last` \
         when runtime NaNs must rank last regardless of sign bit.\n\
         SUPPRESS: only for a comparator over a type proven NaN-free at \
         construction; say so in the lint-allow.toml justification."
    }

    fn applies_to(&self, _rel_path: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let toks = &file.tokens;
        let mut findings = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if !SORT_METHODS.iter().any(|m| t.is_ident(m)) {
                continue;
            }
            if !matches!(toks.get(i + 1), Some(n) if n.is_punct("(")) {
                continue;
            }
            // Scan the balanced argument list for a partial_cmp call.
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                } else if toks[j].is_ident("partial_cmp") {
                    findings.push(Finding::new(
                        self.id(),
                        file,
                        toks[j].line,
                        format!(
                            "`partial_cmp` inside `{}` is not a total order: NaN panics the \
                             unwrap (or permutes the result under unwrap_or); use \
                             `f64::total_cmp` or `core::stats::cmp_nan_last`/`cmp_desc_nan_last`",
                            t.text
                        ),
                    ));
                    break;
                }
                j += 1;
            }
        }
        findings
    }
}
