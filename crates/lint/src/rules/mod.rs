//! The rule registry. Each rule is grounded in a bug this repository
//! actually shipped (see the module docs of each rule) or a hazard it is
//! one edit away from; rules are path-scoped so they bind tightly to the
//! invariant they protect.
//!
//! Two rule shapes exist: per-file [`Rule`]s work on one
//! [`SourceFile`]'s token stream, and [`WorkspaceRule`]s see the whole
//! parsed tree plus its call graph ([`Workspace`]) — that's what lets
//! `no-transitive-panic-in-hot-path` follow a serve request into a
//! `linalg` assert two calls away.

use crate::callgraph::Workspace;
use crate::source::SourceFile;

mod alloc_check;
mod float_sort;
mod hash_order;
mod lock_order;
mod no_panic;
mod safety_comment;
mod transitive_panic;
mod truncating_cast;
mod wallclock;

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `float-sort-total-order`.
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
    /// The raw source line, trimmed — also what allowlist `contains`
    /// patterns match against.
    pub snippet: String,
}

impl Finding {
    pub fn new(rule: &str, file: &SourceFile, line: usize, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            path: file.rel_path.clone(),
            line,
            message,
            snippet: file.line_text(line).trim().to_string(),
        }
    }
}

/// A single per-file static-analysis rule.
pub trait Rule {
    /// Stable kebab-case id (used in reports and `lint-allow.toml`).
    fn id(&self) -> &'static str;
    /// One-line description for `--help` and the README.
    fn description(&self) -> &'static str;
    /// Long-form rationale, example finding, and suppression guidance
    /// for `--explain <rule>`.
    fn explain(&self) -> &'static str;
    /// Whether the rule runs on this workspace-relative path.
    fn applies_to(&self, rel_path: &str) -> bool;
    fn check(&self, file: &SourceFile) -> Vec<Finding>;
}

/// A rule that needs the whole workspace: every parsed file plus the
/// call graph over them. Path scoping happens inside `check` (entry-file
/// sets, per-crate scopes) because one finding can span files.
pub trait WorkspaceRule {
    fn id(&self) -> &'static str;
    fn description(&self) -> &'static str;
    fn explain(&self) -> &'static str;
    fn check(&self, ws: &Workspace) -> Vec<Finding>;
}

/// Every per-file rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(float_sort::FloatSortTotalOrder),
        Box::new(hash_order::HashOrderFloatSum),
        Box::new(safety_comment::UnsafeNeedsSafetyComment),
        Box::new(no_panic::NoPanicInHotPath),
        Box::new(wallclock::NoWallclockInFingerprint),
        Box::new(truncating_cast::NoTruncatingCastInCodec),
        Box::new(alloc_check::AllocBeforeLengthCheck),
    ]
}

/// Every workspace-level rule, in reporting order.
pub fn all_workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(transitive_panic::NoTransitivePanicInHotPath),
        Box::new(lock_order::LockOrder),
    ]
}

/// The ids of every registered rule (allowlist validation, `--help`).
pub fn rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = all_rules().iter().map(|r| r.id()).collect();
    ids.extend(all_workspace_rules().iter().map(|r| r.id()));
    ids
}

/// (id, description, explain) for every rule, file-level then
/// workspace-level — the `--help`/`--explain` catalog.
pub fn rule_catalog() -> Vec<(&'static str, &'static str, &'static str)> {
    let mut out: Vec<(&'static str, &'static str, &'static str)> = all_rules()
        .iter()
        .map(|r| (r.id(), r.description(), r.explain()))
        .collect();
    out.extend(
        all_workspace_rules()
            .iter()
            .map(|r| (r.id(), r.description(), r.explain())),
    );
    out
}
