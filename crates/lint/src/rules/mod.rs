//! The rule registry. Each rule is grounded in a bug this repository
//! actually shipped (see the module docs of each rule) or a hazard it is
//! one edit away from; rules are path-scoped so they bind tightly to the
//! invariant they protect.

use crate::source::SourceFile;

mod float_sort;
mod hash_order;
mod no_panic;
mod safety_comment;
mod truncating_cast;
mod wallclock;

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `float-sort-total-order`.
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
    /// The raw source line, trimmed — also what allowlist `contains`
    /// patterns match against.
    pub snippet: String,
}

impl Finding {
    pub fn new(rule: &str, file: &SourceFile, line: usize, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            path: file.rel_path.clone(),
            line,
            message,
            snippet: file.line_text(line).trim().to_string(),
        }
    }
}

/// A single static-analysis rule.
pub trait Rule {
    /// Stable kebab-case id (used in reports and `lint-allow.toml`).
    fn id(&self) -> &'static str;
    /// One-line description for `--help` and the README.
    fn description(&self) -> &'static str;
    /// Whether the rule runs on this workspace-relative path.
    fn applies_to(&self, rel_path: &str) -> bool;
    fn check(&self, file: &SourceFile) -> Vec<Finding>;
}

/// Every rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(float_sort::FloatSortTotalOrder),
        Box::new(hash_order::HashOrderFloatSum),
        Box::new(safety_comment::UnsafeNeedsSafetyComment),
        Box::new(no_panic::NoPanicInHotPath),
        Box::new(wallclock::NoWallclockInFingerprint),
        Box::new(truncating_cast::NoTruncatingCastInCodec),
    ]
}

/// The ids of every registered rule (allowlist validation).
pub fn rule_ids() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.id()).collect()
}
