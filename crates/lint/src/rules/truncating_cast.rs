//! `no-truncating-cast-in-codec` — narrowing `as` casts in codec encode
//! paths need a visible bounds check.
//!
//! The cache codecs write `u32` headers (`rows`, `cols`, section counts)
//! from `usize` values. A silent `as u32` truncation would not fail the
//! write — it would produce a *well-formed file describing a different
//! matrix*, which the length-validated decoders then accept. That is the
//! worst failure mode this repo has: bytes that decode cleanly but are
//! not the data that was encoded. So every narrowing cast on an encode
//! path must sit next to evidence the value fits: a `try_from`, an
//! `assert!`/`debug_assert!`, a `checked_*` call, a `::MAX` comparison,
//! or a `.min(..)` clamp within the six raw lines ending at the cast.
//!
//! Scoped to the codec/cache family (`crates/corpus/src/codec.rs`,
//! `crates/pipeline/src/cache.rs`, `crates/pipeline/src/world_cache.rs`,
//! `crates/serve/src/snapshot.rs`, `crates/serve/src/wire.rs`) and,
//! within those files, to functions named like encoders (`encode*`,
//! `put_*`, `store*`, `persist*`) — decoders already validate through
//! `take_len`/`try_from`.

use crate::rules::{Finding, Rule};
use crate::source::SourceFile;

const NARROW_TARGETS: [&str; 4] = ["u8", "u16", "u32", "usize"];
const EVIDENCE: [&str; 5] = ["try_from", "assert", "checked_", "::MAX", ".min("];

pub struct NoTruncatingCastInCodec;

fn is_encoder_fn(name: &str) -> bool {
    name.starts_with("encode")
        || name.starts_with("put_")
        || name.starts_with("store")
        || name.starts_with("persist")
}

impl Rule for NoTruncatingCastInCodec {
    fn id(&self) -> &'static str {
        "no-truncating-cast-in-codec"
    }

    fn description(&self) -> &'static str {
        "narrowing `as` casts in codec encode paths need a nearby bounds check \
         (try_from / assert / checked_* / ::MAX / .min)"
    }

    fn explain(&self) -> &'static str {
        "WHY: a silent `as u32` truncation on an encode path does not fail the \
         write — it produces a *well-formed file describing a different matrix*, \
         which the length-validated decoders then happily accept. Bytes that \
         decode cleanly but are not the data that was encoded is the worst \
         failure mode this repo has.\n\
         EXAMPLE: put_u32(out, rows as u32);  // rows: usize, no check anywhere\n\
         FIX: `u32::try_from(rows)` with a typed error, or an assert/debug_assert \
         within the six lines above the cast.\n\
         SUPPRESS: only when the value's range is pinned by construction (e.g. a \
         constant); cite the bound in the justification."
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        rel_path == "crates/corpus/src/codec.rs"
            || rel_path == "crates/pipeline/src/cache.rs"
            || rel_path == "crates/pipeline/src/world_cache.rs"
            || rel_path == "crates/serve/src/snapshot.rs"
            || rel_path == "crates/serve/src/wire.rs"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let toks = &file.tokens;
        let mut findings = Vec::new();
        for i in 0..toks.len() {
            if file.test_mask[i] {
                continue;
            }
            if !toks[i].is_ident("as") {
                continue;
            }
            let Some(target) = toks.get(i + 1) else {
                continue;
            };
            if !NARROW_TARGETS.iter().any(|ty| target.is_ident(ty)) {
                continue;
            }
            let Some(span) = file.enclosing_fn(i) else {
                continue; // `use x as y` and const items are not encode paths
            };
            if !is_encoder_fn(&span.name) {
                continue;
            }
            let line = toks[i].line;
            let lo = line.saturating_sub(6);
            if EVIDENCE.iter().any(|e| file.lines_contain(lo, line, e)) {
                continue;
            }
            findings.push(Finding::new(
                self.id(),
                file,
                line,
                format!(
                    "narrowing `as {}` cast in encoder `{}` without a nearby bounds \
                     check: a silent truncation writes a well-formed file describing \
                     the wrong data; use try_from or assert the range first",
                    target.text, span.name
                ),
            ));
        }
        findings
    }
}
