//! `no-transitive-panic-in-hot-path` — the call-graph extension of
//! `no-panic-in-hot-path`: a serve/fleet/codec/stream entry point must
//! not *reach* a panic through its callees either.
//!
//! The textual rule sees `unwrap()` written inside a hot file; it is
//! blind to `Mat::from_vec`'s `assert_eq!` two crates away. This rule
//! walks resolved call edges from every fn in the hot-path entry files
//! to [`MAX_DEPTH`] hops and reports the full chain for every panic site
//! reached, anchored at the entry's first call edge so the finding sits
//! on actionable code.
//!
//! Conservatism inherits from the resolver ([`crate::callgraph`]):
//! unresolved calls (std, vendored, capped fan-out) are assumed clean
//! but counted, and method-name fan-out can attribute a callee the
//! runtime would never pick — the fix for a false chain is the same as
//! for a real one (a typed-error variant of the callee), and on this
//! tree every chain the rule has raised was real.
//!
//! Depth is bounded at 2 call edges: deep enough to see through one
//! helper layer (serve → snapshot → linalg), shallow enough that the
//! assert-dense numeric core (`gemm`, quantization) doesn't flood the
//! report with chains no request can actually drive. Panics *at* the
//! entry itself (depth 0) belong to the textual rule.

use crate::callgraph::Workspace;
use crate::rules::{Finding, WorkspaceRule};

/// Call-edge budget from an entry fn.
pub const MAX_DEPTH: usize = 2;

/// Exact hot-path entry files…
const ENTRY_FILES: [&str; 5] = [
    "crates/serve/src/server.rs",
    "crates/serve/src/wire.rs",
    "crates/corpus/src/codec.rs",
    "crates/stream/src/delta.rs",
    "crates/stream/src/checkpoint.rs",
];

/// …plus everything the fleet's handler threads run.
fn is_entry_file(rel_path: &str) -> bool {
    ENTRY_FILES.contains(&rel_path) || rel_path.starts_with("crates/fleet/src/")
}

pub struct NoTransitivePanicInHotPath;

impl WorkspaceRule for NoTransitivePanicInHotPath {
    fn id(&self) -> &'static str {
        "no-transitive-panic-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "hot-path entry points (serve, fleet, codec, stream delta/checkpoint) must not \
         reach unwrap/expect/panic!/assert! through any callee within 2 call edges"
    }

    fn explain(&self) -> &'static str {
        "WHY: `no-panic-in-hot-path` is per-file, so a serve request that calls a \
         helper in core/linalg can still die on that helper's assert — same blast \
         radius (every tenant on the process), invisible to a textual scan. This \
         rule walks the workspace call graph from every fn in the hot entry files \
         (serve server/wire, corpus codec, all of fleet, stream delta/checkpoint) \
         to 2 call edges and reports the full chain.\n\
         EXAMPLE: `run_batch` reaches `assert_eq!` at crates/linalg/src/mat.rs:60 \
         via run_batch -> from_vec\n\
         FIX: give the callee a fallible variant (e.g. `Mat::try_from_vec`) and \
         convert the chain head to a typed error, or validate before the call.\n\
         NOTE: unresolved calls (std, vendored, >8-way fan-out) are assumed clean \
         but counted in callgraph-stats; method fan-out may attribute a callee the \
         runtime never picks — the typed-error fix is right either way.\n\
         SUPPRESS: only for a chain proven dead (caller validates the exact \
         invariant the callee asserts); name the validation site."
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let g = &ws.graph;
        let mut findings = Vec::new();
        for entry in ws.node_ids() {
            if !is_entry_file(&g.nodes[entry].file) {
                continue;
            }
            for chain in g.panic_chains(entry, MAX_DEPTH) {
                let hops: Vec<String> = chain
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(k, &n)| {
                        if k == 0 {
                            g.nodes[n].display_name()
                        } else {
                            format!(
                                "{} ({}:{})",
                                g.nodes[n].display_name(),
                                g.nodes[n].file,
                                g.nodes[n].line
                            )
                        }
                    })
                    .collect();
                let last = *chain.nodes.last().unwrap_or(&entry);
                let message = format!(
                    "`{}` reaches panicking `{}` at {}:{} via {}; hot-path callees must \
                     return typed errors — add a fallible variant or validate before \
                     the call",
                    g.nodes[entry].display_name(),
                    chain.what,
                    g.nodes[last].file,
                    chain.panic_line,
                    hops.join(" -> "),
                );
                let file = &ws.files[g.nodes[entry].file_idx];
                let line = chain.lines.first().copied().unwrap_or(g.nodes[entry].line);
                findings.push(Finding::new(self.id(), file, line, message));
            }
        }
        findings
    }
}
