//! `no-panic-in-hot-path` — serving request paths and codec decode paths
//! must degrade to typed errors or cache misses, never panic.
//!
//! PR 5 established the validated-decode rule: corrupt cache bytes are a
//! miss (`Option::None`), never an `AliasTable` assert or a NaN-poisoned
//! statistic. The serving layer extends it: a malformed request or a
//! corrupt snapshot must surface as `io::Error`/`Option`, because a panic
//! in `crates/serve` takes down every tenant on the process. This rule
//! pins both, forbidding `unwrap()`, `expect()`, `panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`, `assert!`, `assert_eq!`,
//! and `assert_ne!` in:
//!
//! - `crates/serve/src/**`
//! - `crates/corpus/src/codec.rs`
//! - `crates/stream/src/**` — the continuous retrainer's delta-apply and
//!   checkpoint paths run inside the same long-lived serving process; a
//!   malformed increment or corrupt checkpoint must surface as a
//!   `StreamError` or a resume miss, never take the service down.
//! - `crates/fleet/src/**` — every byte the coordinator and worker
//!   exchange crosses a machine boundary and is peer-controlled; a
//!   malformed frame, bad cache key, or corrupt transfer must cost one
//!   connection or one lease (a typed `FleetError`/`ErrorCode`), never
//!   the fleet.
//!
//! The assert macros joined the list with the wire front-end: a
//! "programmer invariant" on a value that ultimately arrives in
//! client-controlled bytes is a remote crash, and the serving layer's
//! whole contract is that malformed input degrades to a typed
//! [`QueryError`](../../serve/src/error.rs) response. `debug_assert!`
//! remains allowed — it vanishes in release builds, so it documents
//! invariants without creating a production panic path. Test modules are
//! exempt — `expect`/`assert` are the idiomatic test-failure path.

use crate::lexer::TokenKind;
use crate::rules::{Finding, Rule};
use crate::source::SourceFile;

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

pub struct NoPanicInHotPath;

impl Rule for NoPanicInHotPath {
    fn id(&self) -> &'static str {
        "no-panic-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/assert! in crates/serve/src/**, crates/stream/src/**, \
         crates/fleet/src/**, or crates/corpus/src/codec.rs; corrupt input must be a \
         typed error or a miss"
    }

    fn explain(&self) -> &'static str {
        "WHY: a panic in serve/stream/fleet code takes down every tenant on the \
         process, and much of what those paths touch is peer-controlled bytes off \
         a socket. Corrupt input must cost one request or one lease (a typed \
         QueryError/StreamError/FleetError), never the process.\n\
         EXAMPLE: let dim = header.dims.first().unwrap();\n\
         FIX: return a typed error (`ok_or`, `?`), degrade to a miss, or \
         `debug_assert!` when the invariant is internal and release-irrelevant. \
         See also no-transitive-panic-in-hot-path, which follows calls out of \
         these files.\n\
         SUPPRESS: only for a panic proven unreachable from untrusted input, with \
         the proof sketched in the justification."
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/serve/src/")
            || rel_path.starts_with("crates/stream/src/")
            || rel_path.starts_with("crates/fleet/src/")
            || rel_path == "crates/corpus/src/codec.rs"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let toks = &file.tokens;
        let mut findings = Vec::new();
        for i in 0..toks.len() {
            if file.test_mask[i] {
                continue;
            }
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let method_call = PANIC_METHODS.iter().any(|m| t.is_ident(m))
                && i >= 1
                && toks[i - 1].is_punct(".")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("("));
            let macro_call = PANIC_MACROS.iter().any(|m| t.is_ident(m))
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"));
            if method_call || macro_call {
                findings.push(Finding::new(
                    self.id(),
                    file,
                    t.line,
                    format!(
                        "panicking `{}` in a hot path: corrupt or unexpected input here \
                         must become a typed error or a cache miss, never a panic",
                        t.text
                    ),
                ));
            }
        }
        findings
    }
}
