//! `alloc-before-length-check` — a decoder must bound a freshly read
//! length *before* allocating by it.
//!
//! The bug class PR 7/9's frame pre-checks exist to prevent: a wire
//! decoder reads a `u32` length from peer-controlled bytes and calls
//! `Vec::with_capacity(len)` / `vec![0u8; len]` before comparing it
//! against anything — a four-byte frame then asks the process for 4 GiB.
//! `serve::wire::read_frame` does it right:
//!
//! ```text
//! let len = u32::from_le_bytes(len_bytes) as usize;
//! if len > MAX_FRAME_BYTES { return Err(oversize(len)); }
//! let mut body = vec![0u8; len];
//! ```
//!
//! Heuristic: inside decoder-named fns (`decode*`/`read*`/`parse*`/
//! `take*`) in the codec/wire/transfer/store/cache file family, find
//! `Vec::with_capacity(..)`, `vec![x; n]`, and `.reserve(..)` whose size
//! argument involves a variable whose `let` binding calls a reader
//! (`read_*`/`take_*`/`decode_*`/`parse_*`/`from_le_bytes`/...), or a
//! reader call directly in the argument. Such an allocation is clean
//! only when a comparison touching that variable (`len >`, `< len`,
//! `<=`, `>=`), a `.min(..)` clamp, or a `MAX`-named bound appears
//! between the binding and the allocation. Validating readers that
//! return pre-bounded lengths (`take_len`, `take_count`) are trusted.

use crate::lexer::TokenKind;
use crate::rules::{Finding, Rule};
use crate::source::SourceFile;

/// Fn-name prefixes that mark a decode path.
const DECODER_PREFIXES: [&str; 4] = ["decode", "read", "parse", "take"];
/// Call-name prefixes that produce a fresh, attacker-influenced integer.
const READER_PREFIXES: [&str; 7] = [
    "read_",
    "take_",
    "decode_",
    "parse_",
    "from_le_bytes",
    "from_be_bytes",
    "get_u",
];
/// Readers whose contract already bounds the returned length against the
/// remaining input (see `corpus::codec::take_len`, `serve::wire`'s
/// `take_count`).
const VALIDATING_READERS: [&str; 2] = ["take_len", "take_count"];

pub struct AllocBeforeLengthCheck;

fn is_decoder_fn(name: &str) -> bool {
    DECODER_PREFIXES.iter().any(|p| name.starts_with(p))
}

fn is_reader_call(name: &str) -> bool {
    READER_PREFIXES.iter().any(|p| name.starts_with(p)) && !VALIDATING_READERS.contains(&name)
}

impl Rule for AllocBeforeLengthCheck {
    fn id(&self) -> &'static str {
        "alloc-before-length-check"
    }

    fn description(&self) -> &'static str {
        "decoder fns in codec/wire/transfer/store/cache modules must bound a freshly \
         read length (MAX_* / ::MAX / len comparison / .min) before Vec::with_capacity, \
         vec![x; n], or reserve"
    }

    fn explain(&self) -> &'static str {
        "WHY: a wire decoder that allocates by an unchecked length turns a 4-byte \
         malicious frame into a multi-GiB allocation — denial of service by \
         arithmetic. Every length that crosses the wire must be compared against \
         a bound (MAX_FRAME_BYTES, remaining input len) before it sizes memory.\n\
         EXAMPLE: let len = take_u32(r)? as usize; let mut v = \
         Vec::with_capacity(len);  // no check between read and alloc\n\
         FIX: `if len > MAX_FRAME_BYTES { return ...; }` first, or clamp with \
         `.min(bound)`, or derive the capacity from the already-validated \
         remaining input (`take_len`/`take_count` are trusted for exactly this).\n\
         SUPPRESS: only when the bound is enforced by the caller on every path; \
         name that call site in the justification."
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        let p = rel_path.to_ascii_lowercase();
        p.contains("codec")
            || p.contains("wire")
            || p.contains("transfer")
            || p.contains("store")
            || p.contains("cache")
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let toks = &file.tokens;
        let mut findings = Vec::new();
        for i in 0..toks.len() {
            if file.test_mask[i] {
                continue;
            }
            // Locate an allocation site and its size-argument token range.
            let (arg_lo, arg_hi, alloc_desc) = if toks[i].is_ident("with_capacity")
                && i >= 1
                && toks[i - 1].is_punct("::")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            {
                let close = matching_close(toks, i + 1, "(", ")");
                (i + 2, close, "with_capacity")
            } else if (toks[i].is_ident("reserve") || toks[i].is_ident("reserve_exact"))
                && i >= 1
                && toks[i - 1].is_punct(".")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            {
                let close = matching_close(toks, i + 1, "(", ")");
                (i + 2, close, "reserve")
            } else if toks[i].is_ident("vec")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
                && matches!(toks.get(i + 2), Some(n) if n.is_punct("["))
            {
                let close = matching_close(toks, i + 2, "[", "]");
                // Only the `vec![elem; n]` form sizes by `n`.
                let Some(semi) = (i + 3..close)
                    .find(|&k| toks[k].is_punct(";") && bracket_depth(toks, i + 3, k) == 0)
                else {
                    continue;
                };
                (semi + 1, close, "vec![..; n]")
            } else {
                continue;
            };
            let Some(span) = file.enclosing_fn(i) else {
                continue;
            };
            if !is_decoder_fn(&span.name) {
                continue;
            }

            // The size argument is safe when it is all literals, carries a
            // MAX-style constant, or is visibly clamped in place.
            let arg = &toks[arg_lo..arg_hi.min(toks.len())];
            if arg.iter().any(|t| {
                (t.kind == TokenKind::Ident
                    && t.text.chars().all(|c| c.is_uppercase() || c == '_')
                    && t.text.len() > 1)
                    || t.is_ident("min")
                    || t.is_ident("MAX")
                    || t.is_ident("clamp")
            }) {
                continue;
            }

            // Directly reading inside the argument is never checked.
            let direct_read = arg
                .iter()
                .any(|t| t.kind == TokenKind::Ident && is_reader_call(&t.text));

            // Otherwise: find argument variables bound from a reader call
            // with no comparison between binding and allocation.
            let mut culprit: Option<String> = None;
            if direct_read {
                culprit = Some("<read value>".to_string());
            } else {
                for t in arg {
                    if t.kind != TokenKind::Ident
                        || t.text.chars().next().is_some_and(|c| !c.is_lowercase())
                    {
                        continue;
                    }
                    let v = t.text.as_str();
                    if !binding_reads_fresh(toks, span.start, i, v) {
                        continue;
                    }
                    if bound_evidence(toks, span.start, i, v) {
                        continue;
                    }
                    culprit = Some(v.to_string());
                    break;
                }
            }
            let Some(culprit) = culprit else { continue };
            findings.push(Finding::new(
                self.id(),
                file,
                toks[i].line,
                format!(
                    "`{}` in decoder `{}` sized by freshly read `{}` with no preceding \
                     bound check — a malicious length here is a giant allocation; \
                     compare against a MAX_*/remaining-input bound first",
                    alloc_desc, span.name, culprit
                ),
            ));
        }
        findings
    }
}

/// Index of the closer matching `toks[open]` (which must be `open_p`).
fn matching_close(toks: &[crate::lexer::Token], open: usize, open_p: &str, close_p: &str) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_p) {
            depth += 1;
        } else if t.is_punct(close_p) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Net `(`/`[` depth of `toks[lo..k]`.
fn bracket_depth(toks: &[crate::lexer::Token], lo: usize, k: usize) -> i32 {
    let mut depth = 0i32;
    for t in &toks[lo..k] {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        }
    }
    depth
}

/// Whether `let [mut] v = ...;` between `lo` and `hi` initializes `v`
/// from a reader call (and without an in-line clamp/bound).
fn binding_reads_fresh(toks: &[crate::lexer::Token], lo: usize, hi: usize, v: &str) -> bool {
    for k in lo..hi {
        if !toks[k].is_ident("let") {
            continue;
        }
        let mut n = k + 1;
        if matches!(toks.get(n), Some(t) if t.is_ident("mut")) {
            n += 1;
        }
        if !matches!(toks.get(n), Some(t) if t.is_ident(v)) {
            continue;
        }
        // Initializer tokens up to the statement's `;`.
        let mut fresh = false;
        let mut clamped = false;
        let mut j = n + 1;
        let mut depth = 0i32;
        while j < hi {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct(";") && depth <= 0 {
                break;
            } else if t.kind == TokenKind::Ident {
                if is_reader_call(&t.text) {
                    fresh = true;
                }
                if t.is_ident("min") || t.is_ident("clamp") || t.text.contains("MAX") {
                    clamped = true;
                }
            }
            j += 1;
        }
        if fresh && !clamped {
            return true;
        }
    }
    false
}

/// Whether a comparison or clamp touching `v` appears in `toks[lo..hi]`:
/// `v` adjacent to `<`/`>`/`<=`/`>=`, or `v.min(..)`.
fn bound_evidence(toks: &[crate::lexer::Token], lo: usize, hi: usize, v: &str) -> bool {
    const CMP: [&str; 4] = ["<", ">", "<=", ">="];
    for k in lo..hi {
        if !toks[k].is_ident(v) {
            continue;
        }
        let prev_cmp = k >= 1
            && toks[k - 1].kind == TokenKind::Punct
            && CMP.contains(&toks[k - 1].text.as_str());
        let next_cmp = matches!(
            toks.get(k + 1),
            Some(t) if t.kind == TokenKind::Punct && CMP.contains(&t.text.as_str())
        );
        let clamps = matches!(toks.get(k + 1), Some(t) if t.is_punct("."))
            && matches!(toks.get(k + 2), Some(t) if t.is_ident("min") || t.is_ident("clamp"));
        if prev_cmp || next_cmp || clamps {
            return true;
        }
    }
    false
}
