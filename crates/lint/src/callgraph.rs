//! Conservative name-based call-graph over [`crate::symbols`]: the
//! resolution a linker would do, minus types.
//!
//! Resolution policy (deliberately over-approximate — a false edge costs
//! a human a glance, a missed edge hides a panic):
//!
//! - **Free calls** resolve to free fns with that name — same-file
//!   definitions win, then a module qualifier (`codec::take_u32`) filters
//!   by file stem/directory, then every free fn with the name fans out.
//! - **Method calls** resolve by name to every `impl` method with that
//!   name (fan-out); a literal `self.` receiver or a `Self::`/`Type::`
//!   qualifier narrows to the impl type when it matches anything. Names
//!   that collide with ubiquitous std methods ([`STD_COLLIDING_METHODS`]
//!   — `push`, `load`, `insert`, ...) never fan out blind: without a
//!   narrowed receiver they are unresolved, because `out.push(b)` on a
//!   `Vec<u8>` resolving to some workspace type's `push` is how a
//!   name-only resolver drowns itself in false chains.
//! - **Unresolved** calls (std/vendored targets, or fan-out beyond
//!   [`FAN_OUT_CAP`]) are assumed clean but *counted* — CI fails when the
//!   unresolved ratio regresses, so resolver rot is loud, not silent.
//!
//! Vendored code never enters the index (the engine's walk skips
//! `vendor/`), so edges into `std` or stand-in crates are exactly the
//! unresolved ones.

use std::collections::BTreeMap;

use crate::source::SourceFile;
use crate::symbols::{index_fns, CallSite, FnSym, PanicSite};

/// A method/free call whose candidate set exceeds this is recorded as
/// unresolved rather than fanned out: beyond it the "edges" are noise
/// that would drown real chains (think `.get(` / `.len(`).
pub const FAN_OUT_CAP: usize = 8;

/// Method names shared with std's pervasive types (`Vec`, maps, atomics,
/// channels, iterators, `io`). A method call with one of these names and
/// no `self.`/`Self::`/`Type::` narrowing is recorded unresolved instead
/// of fanned out: on a name-only resolver, `out.push(OP_HELLO)` must not
/// become an edge into `SparseMatrix::push`, nor `flag.load(SeqCst)` into
/// `WorldCache::load`.
pub const STD_COLLIDING_METHODS: [&str; 44] = [
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "load",
    "store",
    "send",
    "recv",
    "clone",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "keys",
    "values",
    "entry",
    "iter",
    "into_iter",
    "extend",
    "drain",
    "clear",
    "take",
    "replace",
    "swap",
    "join",
    "append",
    "split_off",
    "next",
    "flush",
    "min",
    "max",
    "clamp",
    "abs",
    "sqrt",
    "find",
    "map",
    "filter",
    "collect",
    "sort",
    "retain",
    "write",
    "read",
];

/// One indexed fn with everything the workspace rules need.
#[derive(Clone, Debug)]
pub struct Node {
    /// Index into [`Workspace::files`].
    pub file_idx: usize,
    /// Workspace-relative path (denormalized for messages).
    pub file: String,
    pub name: String,
    pub impl_type: Option<String>,
    pub line: usize,
    /// Inclusive token span in the owning file.
    pub start: usize,
    pub end: usize,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
}

impl Node {
    /// `Type::name` or `name`, for messages.
    pub fn display_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved call edge.
#[derive(Clone, Debug)]
pub struct Edge {
    pub to: usize,
    /// Line of the call site in the caller's file.
    pub line: usize,
    /// Token index of the call site in the caller's file (guard-liveness
    /// range tests in the lock-order rule).
    pub tok: usize,
}

/// Resolver health counters (the CI artifact).
#[derive(Clone, Copy, Debug, Default)]
pub struct CallGraphStats {
    /// Indexed non-test fns.
    pub functions: usize,
    /// Syntactic call sites seen.
    pub calls: usize,
    /// Resolved caller→callee pairs (deduplicated).
    pub edges: usize,
    /// Call sites with no in-workspace candidate (or capped fan-out).
    pub unresolved_calls: usize,
}

impl CallGraphStats {
    pub fn unresolved_ratio(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.unresolved_calls as f64 / self.calls as f64
        }
    }

    pub fn render_json(&self) -> String {
        format!(
            "{{\"functions\":{},\"calls\":{},\"edges\":{},\"unresolved_calls\":{},\
             \"unresolved_ratio\":{:.4}}}",
            self.functions,
            self.calls,
            self.edges,
            self.unresolved_calls,
            self.unresolved_ratio()
        )
    }
}

/// A panic reachable from an entry fn through resolved call edges.
#[derive(Clone, Debug)]
pub struct PanicChain {
    /// Node ids, entry first, panicking fn last (≥ 2 entries).
    pub nodes: Vec<usize>,
    /// Call-site line for each hop (`lines[0]` is in the entry's file).
    pub lines: Vec<usize>,
    /// What panics (`unwrap`, `assert_eq!`, ...).
    pub what: String,
    /// Line of the panic site in the last node's file.
    pub panic_line: usize,
}

/// The whole-workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// `edges[i]` — resolved out-edges of node `i`, in call-site order.
    pub edges: Vec<Vec<Edge>>,
    pub stats: CallGraphStats,
}

impl CallGraph {
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes: Vec<Node> = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            for sym in index_fns(file) {
                let FnSym {
                    name,
                    impl_type,
                    line,
                    start,
                    end,
                    is_test,
                    calls,
                    panics,
                } = sym;
                if is_test {
                    continue;
                }
                nodes.push(Node {
                    file_idx,
                    file: file.rel_path.clone(),
                    name,
                    impl_type,
                    line,
                    start,
                    end,
                    calls,
                    panics,
                });
            }
        }

        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if n.impl_type.is_some() {
                methods_by_name.entry(&n.name).or_default().push(i);
            } else {
                free_by_name.entry(&n.name).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        let mut stats = CallGraphStats {
            functions: nodes.len(),
            ..CallGraphStats::default()
        };
        for i in 0..nodes.len() {
            for c in 0..nodes[i].calls.len() {
                stats.calls += 1;
                let call = &nodes[i].calls[c];
                match resolve(&nodes, &free_by_name, &methods_by_name, i, call) {
                    Some(targets) => {
                        for t in targets {
                            edges[i].push(Edge {
                                to: t,
                                line: call.line,
                                tok: call.tok,
                            });
                        }
                    }
                    None => stats.unresolved_calls += 1,
                }
            }
        }
        for (i, outs) in edges.iter().enumerate() {
            let mut seen: Vec<usize> = outs.iter().map(|e| e.to).collect();
            seen.sort_unstable();
            seen.dedup();
            seen.retain(|&t| t != i); // self-recursion is not an "edge" stat
            stats.edges += seen.len();
        }

        CallGraph {
            nodes,
            edges,
            stats,
        }
    }

    /// Panics reachable from `entry` in 1..=`max_depth` call edges. BFS
    /// with a visited set, so recursion and cycles terminate; the chain
    /// reported per panic site is a shortest one.
    pub fn panic_chains(&self, entry: usize, max_depth: usize) -> Vec<PanicChain> {
        let mut out = Vec::new();
        let mut visited = vec![false; self.nodes.len()];
        // parent[n] = (caller node, call line) on the BFS tree.
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; self.nodes.len()];
        visited[entry] = true;
        let mut frontier = vec![entry];
        for _depth in 0..max_depth {
            let mut next = Vec::new();
            for &n in &frontier {
                for e in &self.edges[n] {
                    if visited[e.to] {
                        continue;
                    }
                    visited[e.to] = true;
                    parent[e.to] = Some((n, e.line));
                    next.push(e.to);
                }
            }
            for &n in &next {
                for p in &self.nodes[n].panics {
                    let mut rev_nodes = vec![n];
                    let mut rev_lines = Vec::new();
                    let mut cur = n;
                    while let Some((up, line)) = parent[cur] {
                        rev_lines.push(line);
                        rev_nodes.push(up);
                        cur = up;
                    }
                    rev_nodes.reverse();
                    rev_lines.reverse();
                    out.push(PanicChain {
                        nodes: rev_nodes,
                        lines: rev_lines,
                        what: p.what.clone(),
                        panic_line: p.line,
                    });
                }
            }
            frontier = next;
        }
        out
    }

    /// Whether a node's body directly contains a lock acquisition
    /// (`.lock()` / zero-arg `.read()` / `.write()`); used by the
    /// lock-order rule's held-across-call check.
    pub fn node_acquires_lock(&self, files: &[SourceFile], idx: usize) -> bool {
        let n = &self.nodes[idx];
        let toks = &files[n.file_idx].tokens;
        (n.start..=n.end.min(toks.len().saturating_sub(1))).any(|i| is_lock_acquisition(toks, i))
    }
}

/// Token `i` is the method name of `.lock()` / `.read()` / `.write()`
/// with *no arguments* — the zero-arg requirement is what separates
/// `RwLock::read`/`write` from `io::Read::read(&mut buf)` and
/// `io::Write::write(&buf)`.
pub fn is_lock_acquisition(toks: &[crate::lexer::Token], i: usize) -> bool {
    let t = &toks[i];
    (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
        && i >= 1
        && toks[i - 1].is_punct(".")
        && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
        && matches!(toks.get(i + 2), Some(n) if n.is_punct(")"))
}

fn bounded(v: Vec<usize>) -> Option<Vec<usize>> {
    if v.is_empty() || v.len() > FAN_OUT_CAP {
        None
    } else {
        Some(v)
    }
}

/// True when `file` (a workspace-relative path) plausibly is module `q`:
/// its stem is `q` or a directory component is `q`.
fn file_matches_module(file: &str, q: &str) -> bool {
    let stem = file
        .rsplit('/')
        .next()
        .unwrap_or(file)
        .trim_end_matches(".rs");
    stem == q || file.split('/').any(|c| c == q)
}

fn resolve(
    nodes: &[Node],
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    call: &CallSite,
) -> Option<Vec<usize>> {
    let name = call.name.as_str();
    if call.is_method {
        let cands = methods_by_name.get(name)?;
        if call.receiver_is_self {
            if let Some(t) = &nodes[caller].impl_type {
                let own: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| nodes[i].impl_type.as_deref() == Some(t))
                    .collect();
                if !own.is_empty() {
                    return Some(own);
                }
            }
        }
        if STD_COLLIDING_METHODS.contains(&name) {
            return None;
        }
        // A non-`self` receiver is (almost) never the caller itself:
        // method recursion spells `self.f()` / `Self::f()`, both handled
        // above, so keeping the caller in its own fan-out only fabricates
        // spurious cycles.
        return bounded(cands.iter().copied().filter(|&i| i != caller).collect());
    }
    match call.qualifier.as_deref() {
        Some("Self") => {
            let t = nodes[caller].impl_type.clone()?;
            let own: Vec<usize> = methods_by_name
                .get(name)?
                .iter()
                .copied()
                .filter(|&i| nodes[i].impl_type.as_deref() == Some(t.as_str()))
                .collect();
            bounded(own)
        }
        Some(q) if q.chars().next().is_some_and(|c| c.is_uppercase()) => {
            // `Type::assoc_fn(...)` — methods of that impl type only.
            let own: Vec<usize> = methods_by_name
                .get(name)?
                .iter()
                .copied()
                .filter(|&i| nodes[i].impl_type.as_deref() == Some(q))
                .collect();
            bounded(own)
        }
        Some(q) => {
            // `module::free_fn(...)` — filter free fns by file/module.
            let frees = free_by_name.get(name)?;
            let scoped: Vec<usize> = frees
                .iter()
                .copied()
                .filter(|&i| file_matches_module(&nodes[i].file, q))
                .collect();
            if !scoped.is_empty() {
                Some(scoped)
            } else {
                bounded(frees.clone())
            }
        }
        None => {
            let frees = free_by_name.get(name)?;
            let same_file: Vec<usize> = frees
                .iter()
                .copied()
                .filter(|&i| nodes[i].file_idx == nodes[caller].file_idx)
                .collect();
            if !same_file.is_empty() {
                Some(same_file)
            } else {
                bounded(frees.clone())
            }
        }
    }
}

/// Everything the workspace-level rules see: the parsed files plus the
/// call graph over them.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub graph: CallGraph,
}

impl Workspace {
    pub fn build(files: Vec<SourceFile>) -> Workspace {
        let graph = CallGraph::build(&files);
        Workspace { files, graph }
    }

    /// Node ids in reporting order (file order, then position).
    pub fn node_ids(&self) -> std::ops::Range<usize> {
        0..self.graph.nodes.len()
    }
}
