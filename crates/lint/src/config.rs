//! `lint-allow.toml` — the only suppression mechanism.
//!
//! There are no inline `#[allow]`-style escapes: every suppression lives
//! in one reviewable file at the workspace root, and every entry must
//! carry a written justification. The format is a tiny TOML subset
//! (parsed here, dependency-free):
//!
//! ```toml
//! [[allow]]
//! rule = "hash-order-float-sum"          # a known rule id
//! path = "crates/corpus/src/cooc.rs"     # workspace-relative file
//! contains = "self.map.iter()"           # optional: must appear on the line
//! justification = "entries() sorts immediately after collecting"
//! ```
//!
//! Malformed entries are themselves findings (reported under the
//! `lint-allow` pseudo-rule and counted as failures): an entry with a
//! missing or empty justification, an unknown rule id, an unknown key, or
//! an entry that suppresses nothing (stale) all fail the run. The
//! allowlist can only ever shrink the finding set it was written for.

use crate::rules::Finding;

/// One parsed `[[allow]]` entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    /// Optional substring the flagged line must contain.
    pub contains: Option<String>,
    pub justification: String,
    /// 1-based line of the `[[allow]]` header, for error reporting.
    pub line: usize,
}

impl AllowEntry {
    /// True when this entry suppresses the finding.
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && self.path == f.path
            && self
                .contains
                .as_ref()
                .is_none_or(|c| f.snippet.contains(c.as_str()))
    }
}

/// The pseudo-rule id used for allowlist problems.
pub const ALLOWLIST_RULE: &str = "lint-allow";

fn config_finding(path: &str, line: usize, snippet: &str, message: String) -> Finding {
    Finding {
        rule: ALLOWLIST_RULE.to_string(),
        path: path.to_string(),
        line,
        message,
        snippet: snippet.trim().to_string(),
    }
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Unquotes a TOML basic string value (`"..."` with `\"`/`\\` escapes).
fn unquote(raw: &str) -> Option<String> {
    let raw = raw.trim();
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut escaped = false;
    for c in inner.chars() {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                other => other,
            });
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return None; // an unescaped quote inside means we mis-split
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Parses allowlist text. Returns the usable entries plus findings for
/// every malformed construct; `display_path` labels the findings.
pub fn parse_allowlist(
    text: &str,
    display_path: &str,
    known_rules: &[&str],
) -> (Vec<AllowEntry>, Vec<Finding>) {
    struct Partial {
        rule: Option<String>,
        path: Option<String>,
        contains: Option<String>,
        justification: Option<String>,
        line: usize,
    }
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    let mut current: Option<Partial> = None;

    let finish =
        |p: Option<Partial>, findings: &mut Vec<Finding>, entries: &mut Vec<AllowEntry>| {
            let Some(p) = p else { return };
            let missing: Vec<&str> = [
                ("rule", p.rule.is_none()),
                ("path", p.path.is_none()),
                ("justification", p.justification.is_none()),
            ]
            .iter()
            .filter(|(_, m)| *m)
            .map(|(k, _)| *k)
            .collect();
            if !missing.is_empty() {
                findings.push(config_finding(
                    display_path,
                    p.line,
                    "[[allow]]",
                    format!(
                        "allowlist entry is missing required key(s): {}; every suppression \
                     must name a rule, a path, and carry a written justification",
                        missing.join(", ")
                    ),
                ));
                return;
            }
            let (rule, path, justification) = (
                p.rule.unwrap_or_default(),
                p.path.unwrap_or_default(),
                p.justification.unwrap_or_default(),
            );
            if justification.trim().is_empty() {
                findings.push(config_finding(
                    display_path,
                    p.line,
                    "[[allow]]",
                    format!(
                        "allowlist entry for `{rule}` at `{path}` has an empty justification; \
                     a suppression without a written reason is itself an error"
                    ),
                ));
                return;
            }
            if !known_rules.contains(&rule.as_str()) {
                findings.push(config_finding(
                    display_path,
                    p.line,
                    "[[allow]]",
                    format!(
                        "allowlist entry names unknown rule `{rule}` (known: {})",
                        known_rules.join(", ")
                    ),
                ));
                return;
            }
            entries.push(AllowEntry {
                rule,
                path,
                contains: p.contains,
                justification,
                line: p.line,
            });
        };

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(current.take(), &mut findings, &mut entries);
            current = Some(Partial {
                rule: None,
                path: None,
                contains: None,
                justification: None,
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            findings.push(config_finding(
                display_path,
                lineno,
                raw_line,
                "unparseable allowlist line; expected `[[allow]]` or `key = \"value\"`".to_string(),
            ));
            continue;
        };
        let Some(p) = current.as_mut() else {
            findings.push(config_finding(
                display_path,
                lineno,
                raw_line,
                "key outside any [[allow]] entry".to_string(),
            ));
            continue;
        };
        let Some(value) = unquote(value) else {
            findings.push(config_finding(
                display_path,
                lineno,
                raw_line,
                "allowlist values must be double-quoted strings".to_string(),
            ));
            continue;
        };
        match key.trim() {
            "rule" => p.rule = Some(value),
            "path" => p.path = Some(value),
            "contains" => p.contains = Some(value),
            "justification" => p.justification = Some(value),
            other => findings.push(config_finding(
                display_path,
                lineno,
                raw_line,
                format!("unknown allowlist key `{other}`"),
            )),
        }
    }
    finish(current.take(), &mut findings, &mut entries);
    (entries, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: [&str; 2] = ["hash-order-float-sum", "no-panic-in-hot-path"];

    #[test]
    fn well_formed_entry_parses() {
        let text = r#"
# a comment
[[allow]]
rule = "hash-order-float-sum"
path = "crates/foo/src/bar.rs"
contains = "map.iter()"
justification = "entries are sorted immediately after collection"
"#;
        let (entries, findings) = parse_allowlist(text, "lint-allow.toml", &RULES);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "hash-order-float-sum");
        assert_eq!(entries[0].contains.as_deref(), Some("map.iter()"));
    }

    #[test]
    fn missing_justification_is_an_error() {
        let text = "[[allow]]\nrule = \"no-panic-in-hot-path\"\npath = \"a.rs\"\n";
        let (entries, findings) = parse_allowlist(text, "lint-allow.toml", &RULES);
        assert!(entries.is_empty());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("justification"));
    }

    #[test]
    fn empty_justification_is_an_error() {
        let text =
            "[[allow]]\nrule = \"no-panic-in-hot-path\"\npath = \"a.rs\"\njustification = \"  \"\n";
        let (entries, findings) = parse_allowlist(text, "lint-allow.toml", &RULES);
        assert!(entries.is_empty());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("empty justification"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let text = "[[allow]]\nrule = \"nope\"\npath = \"a.rs\"\njustification = \"x\"\n";
        let (_, findings) = parse_allowlist(text, "lint-allow.toml", &RULES);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let text = "[[allow]]\nrule = \"no-panic-in-hot-path\"\npath = \"a.rs\"\njustification = \"issue #42\"\n";
        let (entries, findings) = parse_allowlist(text, "lint-allow.toml", &RULES);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(entries[0].justification, "issue #42");
    }
}
