//! A lexed source file plus the two structural overlays rules need:
//! which tokens are test-only (`#[cfg(test)]` modules, `#[test]` fns) and
//! the token span of every `fn` item.

use crate::lexer::{lex, Token, TokenKind};

/// One `fn` item: name and inclusive token-index span of `fn ... { ... }`.
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

/// A parsed file ready for rule checks.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Raw source lines (comments intact — the SAFETY rule reads these).
    pub lines: Vec<String>,
    pub tokens: Vec<Token>,
    /// `test_mask[i]` is true when token `i` lives inside a
    /// `#[cfg(test)]` module or a `#[test]` function.
    pub test_mask: Vec<bool>,
    pub fn_spans: Vec<FnSpan>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let test_mask = compute_test_mask(&tokens);
        let fn_spans = compute_fn_spans(&tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            lines: src.lines().map(str::to_string).collect(),
            tokens,
            test_mask,
            fn_spans,
        }
    }

    /// The raw text of a 1-based line, or "" past the end.
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.saturating_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// The innermost `fn` item containing token `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fn_spans
            .iter()
            .filter(|s| s.start <= idx && idx <= s.end)
            .min_by_key(|s| s.end - s.start)
    }

    /// True when any of the raw lines `lo..=hi` (1-based, clamped)
    /// contains `needle` case-insensitively.
    pub fn lines_contain(&self, lo: usize, hi: usize, needle: &str) -> bool {
        let needle = needle.to_ascii_lowercase();
        (lo.max(1)..=hi).any(|l| self.line_text(l).to_ascii_lowercase().contains(&needle))
    }
}

/// True when the attribute token slice (the tokens between `#[` and `]`)
/// marks test-only code: exactly `test`, or a `cfg(...)` predicate in
/// which `test` appears positively — `cfg(test)`, `cfg(all(test, ...))`,
/// `cfg(any(test, ...))`, arbitrarily nested. A `test` under a `not(...)`
/// combinator never counts, so `cfg(not(test))` and
/// `cfg(all(not(test), unix))` stay unmasked (they are production code).
fn is_test_attr(attr: &[Token]) -> bool {
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    let Some(cfg) = attr
        .windows(2)
        .position(|w| w[0].is_ident("cfg") && w[1].is_punct("("))
    else {
        return false;
    };
    // Walk the predicate tracking, per open paren, whether it was opened
    // by a `not(...)` combinator.
    let mut negated: Vec<bool> = Vec::new();
    let mut i = cfg + 1; // the `(` after `cfg`
    while i < attr.len() {
        let t = &attr[i];
        if t.is_punct("(") {
            let by_not = i > 0 && attr[i - 1].is_ident("not");
            negated.push(by_not);
        } else if t.is_punct(")") {
            if negated.pop().is_none() {
                break; // left the cfg predicate
            }
        } else if t.is_ident("test") && !negated.iter().any(|&n| n) {
            return true;
        }
        i += 1;
    }
    false
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

fn compute_test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut pending = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") && matches!(toks.get(i + 1), Some(n) if n.is_punct("[")) {
            let mut depth = 1usize;
            let attr_start = i + 2;
            let mut j = attr_start;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            if is_test_attr(&toks[attr_start..j.saturating_sub(1)]) {
                pending = true;
            }
            i = j;
            continue;
        }
        if pending {
            match t.text.as_str() {
                "mod" | "fn" if t.kind == TokenKind::Ident => {
                    // Mask from the item keyword through the body's `}`.
                    let mut j = i;
                    while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                        j += 1;
                    }
                    if j < toks.len() && toks[j].is_punct("{") {
                        let end = matching_brace(toks, j);
                        for m in mask.iter_mut().take(end + 1).skip(i) {
                            *m = true;
                        }
                        i = end + 1;
                    } else {
                        i = j + 1;
                    }
                    pending = false;
                    continue;
                }
                // Tokens that may sit between the attribute and the item
                // keyword without cancelling it (`pub(crate)`, `async`...).
                "pub" | "async" | "unsafe" | "const" | "extern" | "crate" | "super" | "self"
                | "in"
                    if t.kind == TokenKind::Ident => {}
                "(" | ")" => {}
                _ => pending = false,
            }
        }
        i += 1;
    }
    mask
}

fn compute_fn_spans(toks: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        // `fn` in type position (`fn(u32) -> u32`) has no name ident next.
        let name = match toks.get(i + 1) {
            Some(n) if n.kind == TokenKind::Ident => n.text.clone(),
            _ => continue,
        };
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct("{") {
            spans.push(FnSpan {
                name,
                start: i,
                end: matching_brace(toks, j),
            });
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "
            fn live() { one(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { masked(); }
            }
            fn live2() { two(); }
        ";
        let f = SourceFile::parse("x.rs", src);
        let masked = |name: &str| {
            let idx = f
                .tokens
                .iter()
                .position(|t| t.is_ident(name))
                .expect("token");
            f.test_mask[idx]
        };
        assert!(!masked("one"));
        assert!(masked("masked"));
        assert!(!masked("two"));
    }

    #[test]
    fn test_attr_fn_is_masked_but_cfg_not_test_is_not() {
        let src = "
            #[test]
            fn t() { masked(); }
            #[cfg(not(test))]
            fn live() { one(); }
            #[cfg(test)]
            use std::fmt;
            fn live2() { two(); }
        ";
        let f = SourceFile::parse("x.rs", src);
        let masked = |name: &str| {
            let idx = f
                .tokens
                .iter()
                .position(|t| t.is_ident(name))
                .expect("token");
            f.test_mask[idx]
        };
        assert!(masked("masked"));
        assert!(!masked("one"));
        // The cfg(test) `use` must not leak its pending mark onto live2.
        assert!(!masked("two"));
    }

    #[test]
    fn cfg_all_and_any_test_modules_are_masked() {
        let src = r#"
            #[cfg(all(test, feature = "slow"))]
            mod slow_tests { fn t() { masked_all(); } }
            #[cfg(any(test, doc))]
            mod doc_tests { fn t() { masked_any(); } }
            #[cfg(all(not(test), unix))]
            fn live() { one(); }
            #[cfg(any(windows, not(test)))]
            fn live2() { two(); }
            fn live3() { three(); }
        "#;
        let f = SourceFile::parse("x.rs", src);
        let masked = |name: &str| {
            let idx = f
                .tokens
                .iter()
                .position(|t| t.is_ident(name))
                .expect("token");
            f.test_mask[idx]
        };
        assert!(masked("masked_all"));
        assert!(masked("masked_any"));
        assert!(!masked("one"));
        assert!(!masked("two"));
        assert!(!masked("three"));
    }

    #[test]
    fn fn_spans_find_innermost() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }";
        let f = SourceFile::parse("x.rs", src);
        let at = |name: &str| {
            f.tokens
                .iter()
                .position(|t| t.is_ident(name))
                .expect("token")
        };
        assert_eq!(f.enclosing_fn(at("deep")).expect("fn").name, "inner");
        assert_eq!(f.enclosing_fn(at("shallow")).expect("fn").name, "outer");
    }
}
