//! `embedstab-lint` — determinism & safety static analysis for the
//! embedstab workspace.
//!
//! This repo's headline guarantee is that shard-union, warm-cache, and
//! coordinator fleet runs are **bitwise** equal to the unsharded run.
//! That guarantee was broken twice by the same family of bugs —
//! `HashMap`-iteration-order float sums and NaN-panicking `partial_cmp`
//! sorts — which were found by hand. This crate makes those bug classes
//! mechanical: a dependency-free lexer (comment/string/lifetime-aware
//! token stream, no AST) feeds a rule engine that walks every
//! non-vendored `.rs` file and enforces nine rules, each grounded in a
//! bug the repo shipped or a hazard one edit away. Six are per-file
//! token-pattern rules; three ride on a whole-workspace symbol index and
//! conservative name-resolved call graph ([`callgraph`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `float-sort-total-order` | no `partial_cmp` in sort/min/max comparators |
//! | `hash-order-float-sum` | no hash-ordered iteration feeding float sums or encoders |
//! | `unsafe-needs-safety-comment` | every `unsafe` documents its invariants |
//! | `no-panic-in-hot-path` | serve + codec paths return typed errors, never panic |
//! | `no-wallclock-in-fingerprint` | cache/codec/fingerprint modules never read the clock |
//! | `no-truncating-cast-in-codec` | codec encoders bounds-check narrowing casts |
//! | `alloc-before-length-check` | decoders bound freshly read lengths before allocating |
//! | `no-transitive-panic-in-hot-path` | hot entry points reach no panic within 2 call edges |
//! | `lock-order` | one global lock order; no guard held across locking calls or socket IO |
//!
//! Suppressions live only in `lint-allow.toml` at the workspace root and
//! must carry a written justification (see [`config`]). The binary exits
//! nonzero on any unsuppressed finding, so CI fails when a rule is
//! reintroduced.

pub mod callgraph;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod symbols;

pub use callgraph::{CallGraph, CallGraphStats, Workspace};
pub use config::{parse_allowlist, AllowEntry};
pub use engine::{
    apply_allowlist, find_workspace_root, lint_root, lint_source, lint_sources, Report,
};
pub use rules::{all_rules, all_workspace_rules, rule_catalog, rule_ids, Finding, Rule};
