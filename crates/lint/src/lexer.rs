//! A lightweight Rust lexer: comment-, string-, and lifetime-aware token
//! stream with line numbers. No AST — the rule engine works on token
//! patterns plus two structural overlays computed here: which tokens live
//! inside `#[cfg(test)]` / `#[test]` regions, and the span of every `fn`
//! item.
//!
//! The lexer only needs to be right about *boundaries*: a `partial_cmp`
//! inside a string literal or a comment must not become an identifier
//! token, and a `'a` lifetime must not open a char literal that swallows
//! the rest of the file. Numeric literal values are never interpreted.

/// Token classes the rules distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `partial_cmp`, ...).
    Ident,
    /// Punctuation; multi-char operators from [`TWO_CHAR_OPS`] arrive as
    /// one token (`::`, `+=`, `->`, ...).
    Punct,
    /// String/char/byte/numeric literal. Content is not interpreted.
    Literal,
    /// A lifetime such as `'a` (text keeps the leading quote).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: usize) -> Self {
        Token {
            kind,
            text: text.into(),
            line,
        }
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Two-character operators lexed as single punctuation tokens. Longest
/// match wins; everything else is a single-char punct.
const TWO_CHAR_OPS: [&str; 20] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=", "<<", ">>", "..",
];

/// Lexes `src` into a token stream, skipping whitespace and comments.
/// Comments are dropped from the stream; rules that need them (the SAFETY
/// rule) read the raw source lines instead.
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (//, ///, //!).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // String-ish prefixes: r"", r#""#, b"", br#""#, b'', and raw
        // idents r#ident. Fall through to plain ident lexing when the
        // leading r/b starts an ordinary identifier.
        if c == 'r' || c == 'b' {
            if let Some((tok, next_i, next_line)) = lex_prefixed(&chars, i, line) {
                toks.push(tok);
                i = next_i;
                line = next_line;
                continue;
            }
        }
        if c == '"' {
            let (text, next_i, next_line) = scan_string(&chars, i + 1, line);
            toks.push(Token::new(TokenKind::Literal, text, line));
            i = next_i;
            line = next_line;
            continue;
        }
        if c == '\'' {
            // Lifetime vs char literal: `'x` followed by another `'` is a
            // char literal; `'\...'` always is; otherwise a lifetime.
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(ch) if ch.is_alphanumeric() || ch == '_' => after == Some('\''),
                Some(_) => true, // 'x' where x is punctuation, e.g. '+'
                None => false,
            };
            if is_char {
                let (text, next_i, next_line) = scan_char(&chars, i, line);
                toks.push(Token::new(TokenKind::Literal, text, line));
                i = next_i;
                line = next_line;
            } else {
                let start = i;
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Token::new(TokenKind::Lifetime, text, line));
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Token::new(TokenKind::Ident, text, line));
            continue;
        }
        if c.is_ascii_digit() {
            let (text, next_i) = scan_number(&chars, i);
            toks.push(Token::new(TokenKind::Literal, text, line));
            i = next_i;
            continue;
        }
        // Punctuation: longest-match against the two-char operator table.
        if let Some(d) = chars.get(i + 1) {
            let pair: String = [c, *d].iter().collect();
            if TWO_CHAR_OPS.contains(&pair.as_str()) {
                toks.push(Token::new(TokenKind::Punct, pair, line));
                i += 2;
                continue;
            }
        }
        toks.push(Token::new(TokenKind::Punct, c.to_string(), line));
        i += 1;
    }
    toks
}

/// Lexes the r/b-prefixed forms at `i`, or `None` if this is a plain
/// identifier start. Returns `(token, next_index, next_line)`.
fn lex_prefixed(chars: &[char], i: usize, line: usize) -> Option<(Token, usize, usize)> {
    let c = chars[i];
    let next = chars.get(i + 1).copied();
    // b'x' byte char.
    if c == 'b' && next == Some('\'') {
        let (text, next_i, next_line) = scan_char(chars, i + 1, line);
        return Some((
            Token::new(TokenKind::Literal, text, line),
            next_i,
            next_line,
        ));
    }
    // b"..." byte string.
    if c == 'b' && next == Some('"') {
        let (text, next_i, next_line) = scan_string(chars, i + 2, line);
        return Some((
            Token::new(TokenKind::Literal, text, line),
            next_i,
            next_line,
        ));
    }
    // br#"..."# / br"..."
    if c == 'b' && next == Some('r') {
        let mut j = i + 2;
        let mut hashes = 0;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) == Some(&'"') {
            let (text, next_i, next_line) = scan_raw_string(chars, j + 1, hashes, line);
            return Some((
                Token::new(TokenKind::Literal, text, line),
                next_i,
                next_line,
            ));
        }
        return None;
    }
    if c == 'r' {
        let mut j = i + 1;
        let mut hashes = 0;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) == Some(&'"') {
            let (text, next_i, next_line) = scan_raw_string(chars, j + 1, hashes, line);
            return Some((
                Token::new(TokenKind::Literal, text, line),
                next_i,
                next_line,
            ));
        }
        // r#ident: a raw identifier — emit the bare name so rules see it.
        if hashes == 1 {
            if let Some(ch) = chars.get(j) {
                if ch.is_alphabetic() || *ch == '_' {
                    let start = j;
                    let mut k = j;
                    while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
                        k += 1;
                    }
                    let text: String = chars[start..k].iter().collect();
                    return Some((Token::new(TokenKind::Ident, text, line), k, line));
                }
            }
        }
        return None;
    }
    None
}

/// Scans a normal (escaped) string body starting just past the opening
/// quote; returns `(text_with_quotes, next_index, next_line)`.
fn scan_string(chars: &[char], mut i: usize, mut line: usize) -> (String, usize, usize) {
    let mut out = String::from("\"");
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' {
            out.push(c);
            if let Some(e) = chars.get(i + 1) {
                out.push(*e);
                if *e == '\n' {
                    line += 1;
                }
            }
            i += 2;
            continue;
        }
        if c == '\n' {
            line += 1;
        }
        out.push(c);
        i += 1;
        if c == '"' {
            break;
        }
    }
    (out, i, line)
}

/// Scans a raw string body starting just past the opening quote, closed by
/// `"` followed by `hashes` `#`s.
fn scan_raw_string(
    chars: &[char],
    mut i: usize,
    hashes: usize,
    mut line: usize,
) -> (String, usize, usize) {
    let mut out = String::from("\"");
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
        }
        if c == '"' {
            let closed = (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'));
            if closed {
                out.push('"');
                return (out, i + 1 + hashes, line);
            }
        }
        out.push(c);
        i += 1;
    }
    (out, i, line)
}

/// Scans a char literal starting at the opening quote.
fn scan_char(chars: &[char], mut i: usize, line: usize) -> (String, usize, usize) {
    let mut out = String::new();
    out.push(chars[i]); // opening '
    i += 1;
    while i < chars.len() {
        let c = chars[i];
        out.push(c);
        if c == '\\' {
            if let Some(e) = chars.get(i + 1) {
                out.push(*e);
            }
            i += 2;
            continue;
        }
        i += 1;
        if c == '\'' {
            break;
        }
    }
    (out, i, line)
}

/// Scans a numeric literal (ints, floats, hex, suffixes). Must not eat a
/// trailing `..` or a method call after an integer (`0..n`, `1.max(2)`).
fn scan_number(chars: &[char], mut i: usize) -> (String, usize) {
    let start = i;
    while i < chars.len() {
        let c = chars[i];
        if c.is_alphanumeric() || c == '_' {
            i += 1;
            continue;
        }
        if c == '.' {
            // Part of the number only if followed by a digit and not `..`.
            match chars.get(i + 1) {
                Some(d) if d.is_ascii_digit() => {
                    i += 2;
                    continue;
                }
                _ => break,
            }
        }
        // Exponent sign: 1e-3 / 1E+9 (only directly after e/E).
        if (c == '+' || c == '-')
            && matches!(chars.get(i.wrapping_sub(1)), Some('e') | Some('E'))
            && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit())
        {
            i += 2;
            continue;
        }
        break;
    }
    (chars[start..i].iter().collect(), i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // partial_cmp in a comment
            /* unsafe in /* nested */ block */
            let s = "partial_cmp unsafe";
            let r = r#"SystemTime::now"#;
            let c = 'u';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"partial_cmp".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn lifetimes_do_not_swallow_source() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { partial_cmp(); x }";
        assert!(idents(src).contains(&"partial_cmp".to_string()));
        let lifetimes: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "let a = 'x'; let b: &'static str = \"s\"; let c = '\\n'; foo();";
        let toks = lex(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime));
        assert!(toks.iter().any(|t| t.is_ident("foo")));
    }

    #[test]
    fn ranges_and_float_methods_tokenize() {
        let toks = lex("for i in 0..n { let x = 1.5e-3; let y = 1.max(2); }");
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(toks.iter().any(|t| t.is_ident("max")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "1.5e-3"));
    }

    #[test]
    fn two_char_ops_fuse() {
        let toks = lex("sum += x; a::b; f() -> y;");
        assert!(toks.iter().any(|t| t.is_punct("+=")));
        assert!(toks.iter().any(|t| t.is_punct("::")));
        assert!(toks.iter().any(|t| t.is_punct("->")));
    }

    #[test]
    fn lines_track_through_multiline_constructs() {
        let src = "let a = \"one\ntwo\";\nlet b = 1;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn raw_idents_surface_bare() {
        assert!(idents("let r#match = 1;").contains(&"match".to_string()));
    }
}
