//! Positive pointwise mutual information (PPMI) matrices.
//!
//! Following Bullinaria & Levy (2007) and the paper's matrix-completion
//! setup, the co-occurrence table is transformed into the PPMI matrix
//! `max(0, log(p(i,j) / (p(i) p(j))))`, and only the positive (observed)
//! entries are kept.

use embedstab_linalg::{vecops, Mat, SketchOp};

use crate::codec;
use crate::cooc::Cooc;

/// A row-sparse matrix (list of `(col, value)` per row), used for PPMI
/// statistics consumed by the matrix-completion embedding trainer.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<Vec<(u32, f64)>>,
}

impl SparseMatrix {
    /// Creates an empty sparse matrix of the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        SparseMatrix {
            n_rows,
            n_cols,
            rows: vec![Vec::new(); n_rows],
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Inserts an entry (no dedup; callers insert each coordinate once).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn push(&mut self, i: u32, j: u32, v: f64) {
        assert!(
            (i as usize) < self.n_rows && (j as usize) < self.n_cols,
            "index out of bounds"
        );
        self.rows[i as usize].push((j, v));
    }

    /// The `(col, value)` entries of row `i`.
    pub fn row(&self, i: usize) -> &[(u32, f64)] {
        &self.rows[i]
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.iter().map(move |&(j, v)| (i as u32, j, v)))
    }

    /// Collects all entries into a vector (row-major order).
    pub fn to_entries(&self) -> Vec<(u32, u32, f64)> {
        self.iter_entries().collect()
    }

    /// Materializes as a dense matrix (tests / small inputs only).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.n_rows, self.n_cols);
        for (i, j, v) in self.iter_entries() {
            m[(i as usize, j as usize)] = v;
        }
        m
    }

    /// The value at `(i, j)`, zero if absent.
    pub fn get(&self, i: u32, j: u32) -> f64 {
        self.rows[i as usize]
            .iter()
            .find(|&&(c, _)| c == j)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Appends the matrix to `out` in the world-cache byte layout:
    /// `n_rows: u64, n_cols: u64`, then per row a `u64` entry count
    /// followed by `(col: u32, value: f64)` pairs in stored order.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.n_rows as u64);
        codec::put_u64(out, self.n_cols as u64);
        for row in &self.rows {
            codec::put_u64(out, row.len() as u64);
            for &(j, v) in row {
                codec::put_u32(out, j);
                codec::put_f64(out, v);
            }
        }
    }

    /// Reads one [`SparseMatrix::encode_into`]-encoded matrix from the
    /// front of `r`, advancing it; per-row entry order is preserved
    /// exactly. Returns `None` on truncated or inconsistent input —
    /// including non-finite values, which [`ppmi`] never stores and which
    /// would silently poison downstream training.
    pub fn decode_from(r: &mut &[u8]) -> Option<SparseMatrix> {
        let n_rows = usize::try_from(codec::take_u64(r)?).ok()?;
        let n_cols = usize::try_from(codec::take_u64(r)?).ok()?;
        if r.len() < n_rows.checked_mul(8)? {
            return None; // cheaper bound check before allocating rows
        }
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let len = codec::take_len(r, 12)?;
            let mut row = Vec::with_capacity(len);
            for _ in 0..len {
                let j = codec::take_u32(r)?;
                if (j as usize) >= n_cols {
                    return None;
                }
                let v = codec::take_f64(r)?;
                if !v.is_finite() {
                    return None;
                }
                row.push((j, v));
            }
            rows.push(row);
        }
        Some(SparseMatrix {
            n_rows,
            n_cols,
            rows,
        })
    }
}

/// Sparse products for the randomized SVD's range finder: the PPMI
/// matrix never has to be densified to be factorized. Each product costs
/// `O(nnz * k)` against the dense path's `O(n_rows * n_cols * k)` — the
/// difference between the warm incremental retrain and a retrain that
/// spends most of its time multiplying stored zeros.
impl SketchOp for SparseMatrix {
    fn op_shape(&self) -> (usize, usize) {
        (self.n_rows, self.n_cols)
    }

    /// `A * x`: accumulates `v * x[j]` into output row `i` per stored
    /// entry, in row-major stored order (deterministic).
    fn apply(&self, x: &Mat) -> Mat {
        assert_eq!(x.rows(), self.n_cols, "A * x shape mismatch");
        let mut out = Mat::zeros(self.n_rows, x.cols());
        for (i, row) in self.rows.iter().enumerate() {
            let out_row = out.row_mut(i);
            for &(j, v) in row {
                vecops::axpy(v, x.row(j as usize), out_row);
            }
        }
        out
    }

    /// `A^T * x`: scatters `v * x[i]` into output row `j` per stored
    /// entry, in row-major stored order (deterministic).
    fn apply_t(&self, x: &Mat) -> Mat {
        assert_eq!(x.rows(), self.n_rows, "A^T * x shape mismatch");
        let mut out = Mat::zeros(self.n_cols, x.cols());
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, v) in row {
                vecops::axpy(v, x.row(i), out.row_mut(j as usize));
            }
        }
        out
    }
}

/// Builds the PPMI matrix from a co-occurrence table.
///
/// `ppmi(i, j) = max(0, ln( c_ij * total / (r_i * r_j) ))` where `r` are row
/// marginals; zero entries are dropped.
pub fn ppmi(cooc: &Cooc) -> SparseMatrix {
    let n = cooc.n();
    let total = cooc.total();
    let row_sums = cooc.row_sums();
    let mut out = SparseMatrix::new(n, n);
    if total <= 0.0 {
        return out;
    }
    let mut entries = cooc.entries();
    entries.sort_unstable_by_key(|&(i, j, _)| ((i as u64) << 32) | j as u64);
    for (i, j, c) in entries {
        let ri = row_sums[i as usize];
        let rj = row_sums[j as usize];
        if ri <= 0.0 || rj <= 0.0 {
            continue;
        }
        let val = (c * total / (ri * rj)).ln();
        if val > 0.0 {
            out.push(i, j, val);
        }
    }
    out
}

/// Rebuilds the listed `rows` of a PPMI matrix against the *current*
/// co-occurrence table, copying every other row bitwise from `prev` —
/// the incremental-retrain entry point (`embedstab_stream`).
///
/// **Exactness contract.** `ppmi(i, j) = ln(c_ij · T / (r_i · r_j))`
/// depends on the global total `T` and the *column* marginal `r_j`, so
/// after a delta that adds any mass, every non-empty row's values shift —
/// not just the rows whose counts changed. Passing the full row range
/// (what the streaming service's exact path does) therefore reproduces
/// [`ppmi`] bitwise — same entries, same f64 bits — while still being
/// cheaper than [`ppmi`]: the table is traversed once through
/// [`Cooc::rows_sorted`] (per-row sorts instead of a global one) and the
/// marginals are summed from it in the same per-row sorted order
/// [`Cooc::row_sums`] uses, instead of re-collecting and re-sorting the
/// hash map three times. Passing only the count-dirty rows gives a
/// cheaper *approximate* refresh whose untouched rows keep their stale
/// normalization — itself a stability axis (Hellrich et al. 2018), which
/// is why the choice is the caller's, not hard-coded here.
///
/// # Panics
///
/// Panics if `prev`'s shape is not `(cooc.n(), cooc.n())` or a row id is
/// `>= cooc.n()` — shape drift between the cached PPMI and the table it
/// was built from is a caller logic error, not streamable input.
pub fn recompute_rows(prev: &SparseMatrix, cooc: &Cooc, rows: &[u32]) -> SparseMatrix {
    let n = cooc.n();
    assert!(
        prev.n_rows() == n && prev.n_cols() == n,
        "previous PPMI shape {:?} must match the table's vocabulary {n}",
        (prev.n_rows(), prev.n_cols())
    );
    let buckets = cooc.rows_sorted();
    // Bitwise-identical to `Cooc::row_sums`: a row's entries are summed
    // in the same j-sorted order (float `+=` per row never crosses rows,
    // so bucketing cannot change any sum's bits).
    let mut row_sums = vec![0.0; n];
    for (i, bucket) in buckets.iter().enumerate() {
        for &(_, v) in bucket {
            row_sums[i] += v;
        }
    }
    let total = cooc.total();
    let mut dirty = vec![false; n];
    for &r in rows {
        assert!((r as usize) < n, "row id {r} out of vocabulary (size {n})");
        dirty[r as usize] = true;
    }
    let mut out = SparseMatrix::new(n, n);
    if total > 0.0 {
        for (i, bucket) in buckets.iter().enumerate() {
            if !dirty[i] {
                continue;
            }
            let ri = row_sums[i];
            if ri <= 0.0 {
                continue;
            }
            for &(j, c) in bucket {
                let rj = row_sums[j as usize];
                if rj <= 0.0 {
                    continue;
                }
                let val = (c * total / (ri * rj)).ln();
                if val > 0.0 {
                    out.push(i as u32, j, val);
                }
            }
        }
    }
    for i in 0..n {
        if !dirty[i] {
            out.rows[i] = prev.rows[i].clone();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooc::CoocConfig;
    use crate::generate::Corpus;

    #[test]
    fn sketch_op_products_match_dense() {
        let docs = vec![vec![0u32, 1, 2, 0, 1], vec![2, 3, 1, 0], vec![3, 3, 0, 4]];
        let cooc = Cooc::count(&Corpus::from_docs(docs), 5, &CoocConfig::default());
        let p = ppmi(&cooc);
        let dense = p.to_dense();
        let x = Mat::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 0.25 - 1.0);
        let (ax, dax) = (p.apply(&x), dense.matmul(&x));
        let (atx, datx) = (p.apply_t(&x), dense.matmul_tn(&x));
        assert_eq!(p.op_shape(), (5, 5));
        for i in 0..5 {
            for j in 0..3 {
                assert!((ax[(i, j)] - dax[(i, j)]).abs() < 1e-12);
                assert!((atx[(i, j)] - datx[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ppmi_nonnegative_and_symmetric() {
        let docs = vec![vec![0, 1, 2, 0, 1], vec![2, 3, 1, 0], vec![3, 3, 0]];
        let cooc = Cooc::count(&Corpus::from_docs(docs), 4, &CoocConfig::default());
        let p = ppmi(&cooc);
        for (i, j, v) in p.iter_entries() {
            assert!(v > 0.0);
            assert!((p.get(j, i) - v).abs() < 1e-12, "asymmetric at ({i},{j})");
        }
    }

    #[test]
    fn ppmi_hand_computed() {
        // Single doc [0, 1], window 1: counts c(0,1)=c(1,0)=1, total=2,
        // r0=r1=1 => pmi = ln(1*2/(1*1)) = ln 2 for both entries.
        let cooc = Cooc::count(
            &Corpus::from_docs(vec![vec![0, 1]]),
            2,
            &CoocConfig {
                window: 1,
                distance_weighting: false,
            },
        );
        let p = ppmi(&cooc);
        assert_eq!(p.nnz(), 2);
        assert!((p.get(0, 1) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn independent_words_have_no_ppmi() {
        // A long alternating sequence of two words makes them *negatively*
        // associated beyond chance within window 1? Actually alternation is
        // perfect association. Instead: uniform random text should give PMI
        // near zero, so most entries are dropped or tiny.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let doc: Vec<u32> = (0..20_000).map(|_| rng.random_range(0..8u32)).collect();
        let cooc = Cooc::count(
            &Corpus::from_docs(vec![doc]),
            8,
            &CoocConfig {
                window: 2,
                distance_weighting: false,
            },
        );
        let p = ppmi(&cooc);
        for (_, _, v) in p.iter_entries() {
            assert!(v < 0.15, "uniform text should have near-zero PMI, got {v}");
        }
    }

    #[test]
    fn sparse_codec_round_trips_bitwise() {
        let docs = vec![vec![0, 1, 2, 0, 1], vec![2, 3, 1, 0], vec![3, 3, 0]];
        let cooc = Cooc::count(&Corpus::from_docs(docs), 4, &CoocConfig::default());
        let p = ppmi(&cooc);
        let mut bytes = Vec::new();
        p.encode_into(&mut bytes);
        let r = &mut bytes.as_slice();
        let back = SparseMatrix::decode_from(r).expect("decodes");
        assert!(r.is_empty());
        assert_eq!((back.n_rows(), back.n_cols()), (p.n_rows(), p.n_cols()));
        let bits = |m: &SparseMatrix| {
            m.iter_entries()
                .map(|(i, j, v)| (i, j, v.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&back), bits(&p));
        for cut in 0..bytes.len() {
            assert!(SparseMatrix::decode_from(&mut &bytes[..cut]).is_none());
        }
        // A value corrupted to a NaN/infinity is a miss, not a silently
        // poisoned matrix: the first entry's f64 sits right after the two
        // u64 dims, the first row length, and the u32 column index.
        assert!(!p.row(0).is_empty(), "fixture must exercise the value path");
        let first_value_end = 8 + 8 + 8 + 4 + 8;
        let mut corrupt = bytes;
        for b in corrupt[first_value_end - 8..first_value_end].iter_mut() {
            *b = 0xFF; // negative NaN bit pattern
        }
        assert!(SparseMatrix::decode_from(&mut corrupt.as_slice()).is_none());
    }

    fn bits(m: &SparseMatrix) -> Vec<(u32, u32, u64)> {
        m.iter_entries()
            .map(|(i, j, v)| (i, j, v.to_bits()))
            .collect()
    }

    #[test]
    fn recompute_all_rows_matches_from_scratch_bitwise() {
        let base = vec![vec![0u32, 1, 2, 0, 1], vec![2, 3, 1, 0]];
        let delta = vec![vec![3u32, 3, 0], vec![1, 2, 2]];
        let config = CoocConfig::default();
        let mut cooc = Cooc::count(&Corpus::from_docs(base.clone()), 4, &config);
        let prev = ppmi(&cooc);
        cooc.accumulate(&delta, &config).expect("valid delta");
        let all: Vec<u32> = (0..4).collect();
        let incremental = recompute_rows(&prev, &cooc, &all);
        let mut full = base;
        full.extend(delta);
        let scratch = ppmi(&Cooc::count(&Corpus::from_docs(full), 4, &config));
        assert_eq!(bits(&incremental), bits(&scratch));
    }

    #[test]
    fn partial_recompute_refreshes_dirty_rows_and_keeps_clean_rows_bitwise() {
        let config = CoocConfig::default();
        let mut cooc = Cooc::count(
            &Corpus::from_docs(vec![vec![0u32, 1, 2, 0, 1], vec![2, 3, 1, 0]]),
            4,
            &config,
        );
        let prev = ppmi(&cooc);
        let dirty = cooc
            .accumulate(&[vec![2, 3, 3]], &config)
            .expect("valid delta");
        let partial = recompute_rows(&prev, &cooc, &dirty);
        let fresh = ppmi(&cooc);
        for i in 0..4u32 {
            let (got, want) = if dirty.contains(&i) {
                (partial.row(i as usize), fresh.row(i as usize))
            } else {
                (partial.row(i as usize), prev.row(i as usize))
            };
            let as_bits =
                |r: &[(u32, f64)]| r.iter().map(|&(j, v)| (j, v.to_bits())).collect::<Vec<_>>();
            assert_eq!(as_bits(got), as_bits(want), "row {i}");
        }
    }

    #[test]
    fn recompute_on_unchanged_table_is_exact_for_any_row_subset() {
        let cooc = Cooc::count(
            &Corpus::from_docs(vec![vec![0u32, 1, 2, 0, 1], vec![2, 3, 1, 0]]),
            4,
            &CoocConfig::default(),
        );
        let prev = ppmi(&cooc);
        let partial = recompute_rows(&prev, &cooc, &[1, 3]);
        assert_eq!(bits(&partial), bits(&prev));
        let none = recompute_rows(&prev, &cooc, &[]);
        assert_eq!(bits(&none), bits(&prev));
    }

    #[test]
    fn sparse_matrix_basics() {
        let mut m = SparseMatrix::new(3, 3);
        m.push(0, 2, 1.5);
        m.push(2, 0, 2.5);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 2), 1.5);
        assert_eq!(m.get(0, 1), 0.0);
        let d = m.to_dense();
        assert_eq!(d[(2, 0)], 2.5);
        assert_eq!(d[(1, 1)], 0.0);
    }
}
