//! The latent semantic ground truth behind the synthetic corpora.

use embedstab_linalg::{vecops, Mat};
use rand::{Rng, RngExt, SeedableRng};

use crate::alias::AliasTable;
use crate::codec;
use crate::vocab::Vocab;

/// Configuration for a [`LatentModel`].
#[derive(Clone, Debug)]
pub struct LatentModelConfig {
    /// Vocabulary size `n`. Word ids are ordered by unigram frequency, most
    /// frequent first, matching the paper's "top-m most frequent words"
    /// convention for measures.
    pub vocab_size: usize,
    /// Dimension `D` of the latent semantic space.
    pub latent_dim: usize,
    /// Number of topic centers `K`.
    pub n_topics: usize,
    /// Euclidean norm of each topic center.
    pub topic_scale: f64,
    /// Standard deviation of the word-specific offset from its topic center.
    pub word_noise: f64,
    /// Zipf exponent for unigram frequencies (`freq_i ∝ 1/(i+1)^s`).
    pub zipf_exponent: f64,
    /// Softmax temperature of `p(word | topic)`; lower = more topical.
    pub temperature: f64,
    /// RNG seed for the model itself.
    pub seed: u64,
}

impl Default for LatentModelConfig {
    fn default() -> Self {
        LatentModelConfig {
            vocab_size: 1000,
            latent_dim: 16,
            n_topics: 20,
            topic_scale: 2.0,
            word_noise: 0.6,
            zipf_exponent: 1.05,
            temperature: 1.0,
            seed: 0,
        }
    }
}

/// How the latent space changes between the "Wiki'17" and "Wiki'18" corpora.
///
/// This is the substitution for a year of real-world edits: a fraction of
/// words move in latent space (semantic drift) while everything else stays
/// fixed, and the newer corpus is re-sampled (see
/// [`TemporalPairConfig`](crate::TemporalPairConfig) for the extra-token
/// knob).
#[derive(Clone, Debug)]
pub struct DriftConfig {
    /// Fraction of the vocabulary whose latent vectors drift.
    pub drifted_fraction: f64,
    /// Standard deviation of the Gaussian drift added to each drifted word.
    pub drift_sigma: f64,
    /// RNG seed for selecting and perturbing the drifted words.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            drifted_fraction: 0.1,
            drift_sigma: 0.8,
            seed: 1,
        }
    }
}

/// The latent semantic space: topic centers, per-word latent vectors,
/// Zipfian unigram frequencies, and per-topic word distributions.
///
/// A `LatentModel` is the *ground truth* that both the corpora and the
/// downstream tasks are generated from; word embeddings trained on the
/// generated corpora estimate `word_vecs` up to rotation.
#[derive(Clone, Debug)]
pub struct LatentModel {
    config: LatentModelConfig,
    /// `n x D` matrix of word latent vectors.
    pub word_vecs: Mat,
    /// `K x D` matrix of topic centers.
    pub topic_centers: Mat,
    /// Topic assignment of each word.
    pub word_topics: Vec<usize>,
    /// Normalized Zipfian unigram distribution (non-increasing in word id).
    pub unigram: Vec<f64>,
    /// Synthetic vocabulary strings.
    pub vocab: Vocab,
    topic_tables: Vec<AliasTable>,
}

impl LatentModel {
    /// Builds a latent model from its configuration (deterministic given the
    /// seed).
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size`, `latent_dim`, or `n_topics` is zero.
    pub fn new(config: &LatentModelConfig) -> Self {
        assert!(config.vocab_size > 0, "vocab_size must be positive");
        assert!(config.latent_dim > 0, "latent_dim must be positive");
        assert!(config.n_topics > 0, "n_topics must be positive");
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let (n, d, k) = (config.vocab_size, config.latent_dim, config.n_topics);

        let mut topic_centers = Mat::random_normal(k, d, &mut rng);
        for t in 0..k {
            let row = topic_centers.row_mut(t);
            vecops::normalize(row);
            vecops::scale(config.topic_scale, row);
        }

        let word_topics: Vec<usize> = (0..n).map(|_| rng.random_range(0..k)).collect();
        let noise = Mat::random_normal(n, d, &mut rng);
        let word_vecs = Mat::from_fn(n, d, |i, j| {
            topic_centers[(word_topics[i], j)] + config.word_noise * noise[(i, j)]
        });

        let mut unigram: Vec<f64> = (0..n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(config.zipf_exponent))
            .collect();
        let total: f64 = unigram.iter().sum();
        for u in unigram.iter_mut() {
            *u /= total;
        }

        let vocab = Vocab::synthetic(&word_topics);
        let topic_tables = build_topic_tables(&word_vecs, &topic_centers, &unigram, config);

        LatentModel {
            config: config.clone(),
            word_vecs,
            topic_centers,
            word_topics,
            unigram,
            vocab,
            topic_tables,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &LatentModelConfig {
        &self.config
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.config.vocab_size
    }

    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.config.n_topics
    }

    /// Samples a word id from topic `k`'s word distribution.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_topics`.
    pub fn sample_word(&self, k: usize, rng: &mut impl Rng) -> u32 {
        self.topic_tables[k].sample(rng) as u32
    }

    /// Builds a sampler over words given an arbitrary document vector `h`:
    /// `p(w) ∝ unigram_w * exp(theta_w . h / tau)`.
    ///
    /// This is how both corpus documents and downstream sentences draw
    /// their tokens, so the full `latent_dim`-dimensional geometry — not
    /// just the K topic directions — shapes co-occurrence statistics,
    /// giving the corpus the high intrinsic rank natural language has.
    ///
    /// # Panics
    ///
    /// Panics if `h` does not have `latent_dim` entries or `tau <= 0`.
    pub fn word_sampler(&self, h: &[f64], tau: f64) -> WordSampler {
        assert_eq!(
            h.len(),
            self.config.latent_dim,
            "document vector dimension mismatch"
        );
        assert!(tau > 0.0, "temperature must be positive");
        let n = self.config.vocab_size;
        let mut logits = Vec::with_capacity(n);
        let mut max_logit = f64::NEG_INFINITY;
        for w in 0..n {
            let l = vecops::dot(self.word_vecs.row(w), h) / tau;
            max_logit = max_logit.max(l);
            logits.push(l);
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for (w, l) in logits.into_iter().enumerate() {
            total += self.unigram[w] * (l - max_logit).exp();
            cumulative.push(total);
        }
        WordSampler { cumulative, total }
    }

    /// Ground-truth cosine similarity between two words' latent vectors.
    pub fn latent_similarity(&self, i: u32, j: u32) -> f64 {
        vecops::cosine_similarity(
            self.word_vecs.row(i as usize),
            self.word_vecs.row(j as usize),
        )
    }

    /// Appends the model to `out` in the world-cache byte layout: the
    /// configuration scalars, then `word_vecs`, `topic_centers`,
    /// `word_topics`, and `unigram`. The vocabulary and the per-topic
    /// sampling tables are **not** stored: both are deterministic
    /// functions of the stored fields and are rebuilt on decode, exactly
    /// as [`LatentModel::new`] builds them.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let c = &self.config;
        codec::put_u64(out, c.vocab_size as u64);
        codec::put_u64(out, c.latent_dim as u64);
        codec::put_u64(out, c.n_topics as u64);
        codec::put_f64(out, c.topic_scale);
        codec::put_f64(out, c.word_noise);
        codec::put_f64(out, c.zipf_exponent);
        codec::put_f64(out, c.temperature);
        codec::put_u64(out, c.seed);
        codec::put_mat(out, &self.word_vecs);
        codec::put_mat(out, &self.topic_centers);
        codec::put_u64_slice(
            out,
            &self
                .word_topics
                .iter()
                .map(|&t| t as u64)
                .collect::<Vec<_>>(),
        );
        codec::put_f64_slice(out, &self.unigram);
    }

    /// Reads one [`LatentModel::encode_into`]-encoded model from the front
    /// of `r`, advancing it. Returns `None` on truncated or inconsistent
    /// input (shape mismatches, out-of-range topic assignments). The
    /// decoded model is bitwise equivalent to the encoded one: same latent
    /// vectors, same vocabulary, same sampling tables.
    pub fn decode_from(r: &mut &[u8]) -> Option<LatentModel> {
        let config = LatentModelConfig {
            vocab_size: usize::try_from(codec::take_u64(r)?).ok()?,
            latent_dim: usize::try_from(codec::take_u64(r)?).ok()?,
            n_topics: usize::try_from(codec::take_u64(r)?).ok()?,
            topic_scale: codec::take_f64(r)?,
            word_noise: codec::take_f64(r)?,
            zipf_exponent: codec::take_f64(r)?,
            temperature: codec::take_f64(r)?,
            seed: codec::take_u64(r)?,
        };
        let word_vecs = codec::take_mat(r)?;
        let topic_centers = codec::take_mat(r)?;
        let word_topics: Vec<usize> = codec::take_u64_slice(r)?
            .into_iter()
            .map(|t| usize::try_from(t).ok())
            .collect::<Option<_>>()?;
        let unigram = codec::take_f64_slice(r)?;
        let (n, d, k) = (config.vocab_size, config.latent_dim, config.n_topics);
        if n == 0
            || d == 0
            || k == 0
            || word_vecs.shape() != (n, d)
            || topic_centers.shape() != (k, d)
            || word_topics.len() != n
            || unigram.len() != n
            || word_topics.iter().any(|&t| t >= k)
        {
            return None;
        }
        // Semantic validation, so corrupt-but-well-shaped bytes stay a
        // cache miss rather than a panic: rebuilding the sampling tables
        // feeds `unigram * exp(dot(vec, center)/temperature - max)` into
        // `AliasTable::new`, which asserts non-negative finite weights
        // with a positive sum. The bounds below guarantee that
        // arithmetically — and every legitimately encoded model (vectors
        // of magnitude O(10), a normalized positive unigram, temperature
        // near 1) sits far inside them.
        let bounded = |m: &Mat| {
            m.as_slice()
                .iter()
                .all(|x| x.is_finite() && x.abs() <= 1e100)
        };
        if !bounded(&word_vecs)
            || !bounded(&topic_centers)
            || !unigram.iter().all(|&u| u > 0.0 && u <= 1.0)
            || !(config.temperature.is_finite() && (1e-6..=1e6).contains(&config.temperature))
        {
            return None;
        }
        let vocab = Vocab::synthetic(&word_topics);
        let topic_tables = build_topic_tables(&word_vecs, &topic_centers, &unigram, &config);
        Some(LatentModel {
            config,
            word_vecs,
            topic_centers,
            word_topics,
            unigram,
            vocab,
            topic_tables,
        })
    }

    /// Returns a drifted copy of the model: the "Wiki'18" latent space.
    ///
    /// A `drifted_fraction` of words receive Gaussian perturbations of their
    /// latent vectors; the per-topic word distributions are rebuilt. Word
    /// ids, strings, topics, and unigram frequencies are unchanged, so
    /// embeddings trained on corpora from the two models are row-aligned.
    pub fn drifted(&self, drift: &DriftConfig) -> LatentModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(drift.seed);
        let n = self.config.vocab_size;
        let n_drift = ((n as f64) * drift.drifted_fraction).round() as usize;
        let mut indices: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates: the first n_drift entries are a uniform sample.
        for i in 0..n_drift.min(n.saturating_sub(1)) {
            let j = rng.random_range(i..n);
            indices.swap(i, j);
        }
        let mut word_vecs = self.word_vecs.clone();
        let d = self.config.latent_dim;
        for &w in indices.iter().take(n_drift) {
            let delta = Mat::random_normal(1, d, &mut rng);
            let row = word_vecs.row_mut(w);
            for (r, &dx) in row.iter_mut().zip(delta.row(0)) {
                *r += drift.drift_sigma * dx;
            }
        }
        let topic_tables =
            build_topic_tables(&word_vecs, &self.topic_centers, &self.unigram, &self.config);
        LatentModel {
            config: self.config.clone(),
            word_vecs,
            topic_centers: self.topic_centers.clone(),
            word_topics: self.word_topics.clone(),
            unigram: self.unigram.clone(),
            vocab: self.vocab.clone(),
            topic_tables,
        }
    }
}

/// A cumulative-distribution sampler over the vocabulary for one document
/// vector (see [`LatentModel::word_sampler`]).
#[derive(Clone, Debug)]
pub struct WordSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl WordSampler {
    /// Draws one word id.
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let u: f64 = rng.random_range(0.0..self.total);
        let idx = self.cumulative.partition_point(|&c| c <= u);
        idx.min(self.cumulative.len() - 1) as u32
    }

    /// Draws `len` word ids.
    pub fn sample_many(&self, len: usize, rng: &mut impl Rng) -> Vec<u32> {
        (0..len).map(|_| self.sample(rng)).collect()
    }
}

fn build_topic_tables(
    word_vecs: &Mat,
    topic_centers: &Mat,
    unigram: &[f64],
    config: &LatentModelConfig,
) -> Vec<AliasTable> {
    let n = word_vecs.rows();
    (0..topic_centers.rows())
        .map(|k| {
            let center = topic_centers.row(k);
            let mut logits: Vec<f64> = (0..n)
                .map(|w| vecops::dot(word_vecs.row(w), center) / config.temperature)
                .collect();
            let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for (l, u) in logits.iter_mut().zip(unigram) {
                *l = u * (*l - max).exp();
            }
            AliasTable::new(&logits)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> LatentModel {
        LatentModel::new(&LatentModelConfig {
            vocab_size: 300,
            n_topics: 6,
            ..Default::default()
        })
    }

    #[test]
    fn unigram_is_normalized_and_decreasing() {
        let m = small_model();
        let sum: f64 = m.unigram.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for w in m.unigram.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn words_cluster_near_their_topic() {
        let m = small_model();
        let mut own_closer = 0usize;
        for w in 0..m.vocab_size() {
            let own = m.word_topics[w];
            let d_own = vecops::sq_distance(m.word_vecs.row(w), m.topic_centers.row(own));
            let mut min_other = f64::INFINITY;
            for t in 0..m.n_topics() {
                if t != own {
                    let d = vecops::sq_distance(m.word_vecs.row(w), m.topic_centers.row(t));
                    min_other = min_other.min(d);
                }
            }
            if d_own < min_other {
                own_closer += 1;
            }
        }
        // With word_noise well below inter-center distance, most words stay
        // closest to their own topic.
        assert!(own_closer as f64 > 0.7 * m.vocab_size() as f64);
    }

    #[test]
    fn topic_sampling_prefers_topical_words() {
        use rand::SeedableRng;
        let m = small_model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let k = 2;
        let mut hits = 0usize;
        let draws = 5000;
        for _ in 0..draws {
            let w = m.sample_word(k, &mut rng) as usize;
            if m.word_topics[w] == k {
                hits += 1;
            }
        }
        // Baseline for uniform topics would be ~1/6; topical sampling should
        // be far above that.
        assert!(hits as f64 / draws as f64 > 0.3, "hits = {hits}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_model();
        let b = small_model();
        assert_eq!(a.word_vecs, b.word_vecs);
        assert_eq!(a.word_topics, b.word_topics);
    }

    #[test]
    fn drift_changes_only_a_fraction() {
        let m = small_model();
        let drifted = m.drifted(&DriftConfig {
            drifted_fraction: 0.2,
            drift_sigma: 1.0,
            seed: 9,
        });
        let mut changed = 0usize;
        for w in 0..m.vocab_size() {
            if m.word_vecs.row(w) != drifted.word_vecs.row(w) {
                changed += 1;
            }
        }
        assert_eq!(changed, (0.2f64 * 300.0).round() as usize);
        assert_eq!(m.unigram, drifted.unigram);
        assert_eq!(m.word_topics, drifted.word_topics);
    }

    #[test]
    fn codec_round_trips_model_and_samplers() {
        let m = small_model().drifted(&DriftConfig::default());
        let mut bytes = Vec::new();
        m.encode_into(&mut bytes);
        let r = &mut bytes.as_slice();
        let back = LatentModel::decode_from(r).expect("decodes");
        assert!(r.is_empty());
        assert_eq!(back.word_vecs, m.word_vecs);
        assert_eq!(back.topic_centers, m.topic_centers);
        assert_eq!(back.word_topics, m.word_topics);
        assert_eq!(back.unigram, m.unigram);
        assert_eq!(back.config().seed, m.config().seed);
        for i in 0..m.vocab_size() as u32 {
            assert_eq!(back.vocab.word(i), m.vocab.word(i));
        }
        // The rebuilt sampling tables draw identical sequences.
        let mut ra = rand::rngs::StdRng::seed_from_u64(11);
        let mut rb = rand::rngs::StdRng::seed_from_u64(11);
        for k in 0..m.n_topics() {
            for _ in 0..50 {
                assert_eq!(m.sample_word(k, &mut ra), back.sample_word(k, &mut rb));
            }
        }
        for cut in 0..bytes.len().min(200) {
            assert!(LatentModel::decode_from(&mut &bytes[..cut]).is_none());
        }
    }

    #[test]
    fn corrupt_floats_are_a_miss_not_a_panic() {
        let m = small_model();
        let mut bytes = Vec::new();
        m.encode_into(&mut bytes);
        // The unigram slice is the final section; smashing the last
        // value's top byte produces a negative/NaN weight, which must be
        // rejected before the sampling tables are rebuilt (AliasTable
        // asserts on bad weights — a corrupt cache file must decode to
        // None, never panic).
        let n = bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[n - 1] = 0xFF;
        assert!(LatentModel::decode_from(&mut corrupt.as_slice()).is_none());
        // Same for a non-finite latent vector entry: word_vecs starts
        // right after the 8 config scalars (mat header = 8 bytes).
        let vec_region = 8 * 8 + 8;
        let mut corrupt = bytes.clone();
        for b in corrupt[vec_region..vec_region + 8].iter_mut() {
            *b = 0xFF; // 0xFFFF... = a negative NaN
        }
        assert!(LatentModel::decode_from(&mut corrupt.as_slice()).is_none());
        // And an insane temperature (division hazard in the softmax).
        let mut corrupt = bytes;
        corrupt[6 * 8..7 * 8].copy_from_slice(&1e-300f64.to_le_bytes());
        assert!(LatentModel::decode_from(&mut corrupt.as_slice()).is_none());
    }

    #[test]
    fn zero_drift_is_identity_on_vectors() {
        let m = small_model();
        let drifted = m.drifted(&DriftConfig {
            drifted_fraction: 0.0,
            drift_sigma: 1.0,
            seed: 9,
        });
        assert_eq!(m.word_vecs, drifted.word_vecs);
    }
}
