//! Synthetic corpus substrate for the `embedstab` workspace.
//!
//! The paper trains embeddings on two full Wikipedia dumps collected a year
//! apart (Wiki'17 and Wiki'18, ~4.5B tokens each). This crate provides the
//! laptop-scale substitute: a seeded **latent-topic corpus generator** whose
//! ground truth is an explicit latent semantic space, together with a
//! **temporal drift model** that perturbs that space the way a year of
//! Wikipedia edits perturbs co-occurrence statistics.
//!
//! The pieces:
//!
//! - [`LatentModel`] — every word owns a latent vector near one of `K`
//!   topic centers; unigram frequencies are Zipfian.
//! - [`Corpus`] / [`LatentModel::generate_corpus`] — documents are sampled
//!   LDA-style: a document draws a small topic mixture, tokens draw a topic
//!   then a word.
//! - [`DriftConfig`] / [`LatentModel::drifted`] — the Wiki'17 → Wiki'18
//!   change: a fraction of words drift in latent space, and the newer corpus
//!   is re-sampled (optionally larger).
//! - [`Cooc`] — windowed co-occurrence counting (flat or `1/distance`
//!   weighted, GloVe-style).
//! - [`ppmi()`] — positive pointwise mutual information sparse matrices,
//!   the input to the matrix-completion embedding algorithm.
//!
//! # Example
//!
//! ```
//! use embedstab_corpus::{CorpusConfig, LatentModel, LatentModelConfig};
//!
//! let model = LatentModel::new(&LatentModelConfig { vocab_size: 200, ..Default::default() });
//! let corpus = model.generate_corpus(&CorpusConfig { n_tokens: 5_000, seed: 1, ..Default::default() });
//! assert!(corpus.n_tokens() >= 5_000);
//! ```

pub mod alias;
pub mod codec;
pub mod cooc;
pub mod generate;
pub mod latent;
pub mod ppmi;
pub mod vocab;

pub use alias::AliasTable;
pub use cooc::{Cooc, CoocConfig, CoocError};
pub use generate::{
    corpus_state_fingerprint, Corpus, CorpusConfig, TemporalPair, TemporalPairConfig,
};
pub use latent::{DriftConfig, LatentModel, LatentModelConfig};
pub use ppmi::{ppmi, recompute_rows, SparseMatrix};
pub use vocab::Vocab;
