//! Corpus generation from a latent model, and the temporal corpus pair.

use rand::{Rng, RngExt, SeedableRng};

use crate::codec;
use crate::latent::{DriftConfig, LatentModel, LatentModelConfig};

/// Configuration for sampling one corpus from a [`LatentModel`].
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Total token budget; generation stops at the first document boundary
    /// at or past this count.
    pub n_tokens: usize,
    /// Mean document length (lengths are uniform in `[mean/2, 3*mean/2]`).
    pub doc_len_mean: usize,
    /// Number of distinct topics mixed within one document.
    pub topics_per_doc: usize,
    /// Euclidean norm of the per-document latent noise vector added to the
    /// topic mixture. This is what gives the corpus full-rank latent
    /// structure: with zero noise, co-occurrence factorizes over the K
    /// topics only.
    pub doc_noise: f64,
    /// Word softmax temperature.
    pub temperature: f64,
    /// RNG seed for document sampling.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_tokens: 100_000,
            doc_len_mean: 40,
            topics_per_doc: 2,
            doc_noise: 3.0,
            temperature: 1.0,
            seed: 0,
        }
    }
}

/// A generated corpus: a list of documents, each a sequence of word ids.
///
/// Documents are the co-occurrence boundary: context windows never cross
/// document edges, mirroring the paper's Wikipedia preprocessing.
#[derive(Clone, Debug)]
pub struct Corpus {
    docs: Vec<Vec<u32>>,
    n_tokens: usize,
}

impl Corpus {
    /// Wraps pre-tokenized documents as a corpus.
    pub fn from_docs(docs: Vec<Vec<u32>>) -> Self {
        let n_tokens = docs.iter().map(Vec::len).sum();
        Corpus { docs, n_tokens }
    }

    /// The documents.
    pub fn docs(&self) -> &[Vec<u32>] {
        &self.docs
    }

    /// Total number of tokens.
    pub fn n_tokens(&self) -> usize {
        self.n_tokens
    }

    /// Appends documents in place — the corpus-increment primitive behind
    /// streaming retrains. Document order is append order, so a corpus
    /// grown by increments compares equal (and fingerprints equal) to
    /// [`Corpus::from_docs`] over the concatenated document list.
    pub fn append_docs(&mut self, docs: Vec<Vec<u32>>) {
        for doc in docs {
            self.n_tokens += doc.len();
            self.docs.push(doc);
        }
    }

    /// FNV-1a fingerprint of the corpus *content*: the document count,
    /// each document's length, and every token id, in order.
    ///
    /// Unlike the pipeline's world fingerprint — a hash of the generating
    /// *parameters* — this keys on what the corpus actually holds, so a
    /// corpus grown by streaming increments fingerprints as the corpus it
    /// now is, no matter how the documents arrived (one batch or many).
    pub fn content_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_mix(h, self.docs.len() as u64);
        for doc in &self.docs {
            h = fnv_mix(h, doc.len() as u64);
            for &t in doc {
                h = fnv_mix(h, t as u64);
            }
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_mix(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of a full counting state: vocabulary size, counting
/// configuration, and corpus content. This is the checkpoint/identity key
/// of the streaming retrainer and the pipeline's
/// `World::stream_fingerprint` — defined here, once, so the two sides
/// can never drift apart. Two services that reached the same final corpus
/// under the same configuration fingerprint identically, regardless of
/// how the corpus was split into increments.
pub fn corpus_state_fingerprint(
    corpus: &Corpus,
    vocab_size: usize,
    config: &crate::cooc::CoocConfig,
) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_mix(h, vocab_size as u64);
    h = fnv_mix(h, config.window as u64);
    h = fnv_mix(h, config.distance_weighting as u64);
    fnv_mix(h, corpus.content_fingerprint())
}

impl Corpus {
    /// Appends the corpus to `out` in the world-cache byte layout: a
    /// `u64` document count, then each document as a length-prefixed
    /// `u32` token list.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.docs.len() as u64);
        for doc in &self.docs {
            codec::put_u32_slice(out, doc);
        }
    }

    /// Reads one [`Corpus::encode_into`]-encoded corpus from the front of
    /// `r`, advancing it. Returns `None` on truncated input.
    pub fn decode_from(r: &mut &[u8]) -> Option<Corpus> {
        // Each document costs at least its 8-byte length prefix.
        let n_docs = codec::take_len(r, 8)?;
        let mut docs = Vec::with_capacity(n_docs);
        for _ in 0..n_docs {
            docs.push(codec::take_u32_slice(r)?);
        }
        Some(Corpus::from_docs(docs))
    }

    /// Per-word token counts over a vocabulary of the given size.
    ///
    /// # Panics
    ///
    /// Panics if a token id is `>= vocab_size`.
    pub fn token_counts(&self, vocab_size: usize) -> Vec<u64> {
        let mut counts = vec![0u64; vocab_size];
        for doc in &self.docs {
            for &w in doc {
                counts[w as usize] += 1;
            }
        }
        counts
    }
}

impl LatentModel {
    /// Samples a corpus of at least `config.n_tokens` tokens.
    ///
    /// Each document draws `topics_per_doc` distinct topics with
    /// exponential mixture weights plus a random latent noise vector of
    /// norm `doc_noise`; tokens are then drawn from the softmax word
    /// distribution around the resulting document vector. The noise gives
    /// the co-occurrence statistics full `latent_dim` rank (natural
    /// corpora are not rank-K), which the paper's eigenspace measures rely
    /// on.
    ///
    /// # Panics
    ///
    /// Panics if `topics_per_doc` is zero or exceeds the model's topic count.
    pub fn generate_corpus(&self, config: &CorpusConfig) -> Corpus {
        assert!(config.topics_per_doc > 0, "topics_per_doc must be positive");
        assert!(
            config.topics_per_doc <= self.n_topics(),
            "topics_per_doc exceeds the number of topics"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let d = self.word_vecs.cols();
        let mut docs = Vec::new();
        let mut total = 0usize;
        let lo = (config.doc_len_mean / 2).max(2);
        let hi = config.doc_len_mean + config.doc_len_mean / 2;
        while total < config.n_tokens {
            let len = rng.random_range(lo..=hi.max(lo));
            let (topics, weights) = sample_doc_mixture(self, config.topics_per_doc, &mut rng);
            // Document vector: topic mixture plus fixed-norm latent noise.
            let mut h = vec![0.0; d];
            for (&k, &w) in topics.iter().zip(&weights) {
                embedstab_linalg::vecops::axpy(w, self.topic_centers.row(k), &mut h);
            }
            if config.doc_noise > 0.0 {
                let mut g = embedstab_linalg::Mat::random_normal(1, d, &mut rng).into_vec();
                embedstab_linalg::vecops::normalize(&mut g);
                embedstab_linalg::vecops::axpy(config.doc_noise, &g, &mut h);
            }
            let sampler = self.word_sampler(&h, config.temperature);
            let doc = sampler.sample_many(len, &mut rng);
            total += doc.len();
            docs.push(doc);
        }
        Corpus {
            docs,
            n_tokens: total,
        }
    }
}

fn sample_doc_mixture(
    model: &LatentModel,
    topics_per_doc: usize,
    rng: &mut impl Rng,
) -> (Vec<usize>, Vec<f64>) {
    let k = model.n_topics();
    let mut topics = Vec::with_capacity(topics_per_doc);
    while topics.len() < topics_per_doc {
        let t = rng.random_range(0..k);
        if !topics.contains(&t) {
            topics.push(t);
        }
    }
    // Dirichlet(1, ..., 1) via normalized exponentials.
    let mut weights: Vec<f64> = (0..topics_per_doc)
        .map(|_| -(rng.random_range(f64::MIN_POSITIVE..1.0f64)).ln())
        .collect();
    let total: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= total;
    }
    (topics, weights)
}

/// Configuration for building a "Wiki'17 / Wiki'18" corpus pair.
#[derive(Clone, Debug, Default)]
pub struct TemporalPairConfig {
    /// The shared latent model.
    pub model: LatentModelConfig,
    /// How the latent space drifts between years.
    pub drift: DriftConfig,
    /// Corpus sampling parameters for the '17 corpus.
    pub corpus: CorpusConfig,
    /// Fractional extra tokens in the '18 corpus (the paper observes 15%
    /// disagreement from accumulating just 1% more data).
    pub extra_token_frac: f64,
}

/// A pair of corpora standing in for Wiki'17 and Wiki'18, plus the latent
/// models that generated them.
#[derive(Clone, Debug)]
pub struct TemporalPair {
    /// The '17 ("base year") latent model.
    pub model17: LatentModel,
    /// The '18 model: the base model after [`DriftConfig`] perturbation.
    pub model18: LatentModel,
    /// Corpus sampled from the '17 model.
    pub corpus17: Corpus,
    /// Corpus sampled from the '18 model (re-seeded, optionally larger).
    pub corpus18: Corpus,
}

impl TemporalPair {
    /// Appends the pair to `out` in the world-cache byte layout: both
    /// latent models, then both corpora.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.model17.encode_into(out);
        self.model18.encode_into(out);
        self.corpus17.encode_into(out);
        self.corpus18.encode_into(out);
    }

    /// Reads one [`TemporalPair::encode_into`]-encoded pair from the
    /// front of `r`, advancing it. Returns `None` on truncated or
    /// inconsistent input (including corpora whose tokens fall outside the
    /// models' shared vocabulary).
    pub fn decode_from(r: &mut &[u8]) -> Option<TemporalPair> {
        let model17 = LatentModel::decode_from(r)?;
        let model18 = LatentModel::decode_from(r)?;
        let corpus17 = Corpus::decode_from(r)?;
        let corpus18 = Corpus::decode_from(r)?;
        let vocab = model17.vocab_size();
        if model18.vocab_size() != vocab {
            return None;
        }
        for corpus in [&corpus17, &corpus18] {
            for doc in corpus.docs() {
                if doc.iter().any(|&w| (w as usize) >= vocab) {
                    return None;
                }
            }
        }
        Some(TemporalPair {
            model17,
            model18,
            corpus17,
            corpus18,
        })
    }

    /// Builds the pair deterministically from its configuration.
    pub fn build(config: &TemporalPairConfig) -> Self {
        let model17 = LatentModel::new(&config.model);
        let model18 = model17.drifted(&config.drift);
        let corpus17 = model17.generate_corpus(&config.corpus);
        let mut cfg18 = config.corpus.clone();
        cfg18.n_tokens =
            ((config.corpus.n_tokens as f64) * (1.0 + config.extra_token_frac)).round() as usize;
        cfg18.seed = config.corpus.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let corpus18 = model18.generate_corpus(&cfg18);
        TemporalPair {
            model17,
            model18,
            corpus17,
            corpus18,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_docs_matches_from_docs_and_fingerprints_by_content() {
        let all = vec![vec![0u32, 1, 2], vec![3, 1], vec![2, 2, 0, 3]];
        let whole = Corpus::from_docs(all.clone());
        let mut grown = Corpus::from_docs(vec![all[0].clone()]);
        grown.append_docs(all[1..].to_vec());
        assert_eq!(grown.n_tokens(), whole.n_tokens());
        assert_eq!(grown.docs(), whole.docs());
        assert_eq!(grown.content_fingerprint(), whole.content_fingerprint());
        // Content changes move the fingerprint; doc-boundary changes do too
        // (the same tokens split differently count differently).
        let mut other = Corpus::from_docs(all.clone());
        other.append_docs(vec![vec![1]]);
        assert_ne!(other.content_fingerprint(), whole.content_fingerprint());
        let merged = Corpus::from_docs(vec![all.concat()]);
        assert_ne!(merged.content_fingerprint(), whole.content_fingerprint());
    }

    #[test]
    fn state_fingerprint_covers_config_and_vocab() {
        use crate::cooc::CoocConfig;
        let corpus = Corpus::from_docs(vec![vec![0u32, 1, 2], vec![3, 1]]);
        let base = CoocConfig {
            window: 4,
            distance_weighting: false,
        };
        let fp = corpus_state_fingerprint(&corpus, 4, &base);
        assert_eq!(fp, corpus_state_fingerprint(&corpus, 4, &base));
        assert_ne!(fp, corpus_state_fingerprint(&corpus, 5, &base));
        assert_ne!(
            fp,
            corpus_state_fingerprint(&corpus, 4, &CoocConfig { window: 5, ..base })
        );
        assert_ne!(
            fp,
            corpus_state_fingerprint(
                &corpus,
                4,
                &CoocConfig {
                    distance_weighting: true,
                    ..base
                }
            )
        );
    }

    fn model() -> LatentModel {
        LatentModel::new(&LatentModelConfig {
            vocab_size: 200,
            n_topics: 5,
            ..Default::default()
        })
    }

    #[test]
    fn corpus_meets_token_budget() {
        let m = model();
        let c = m.generate_corpus(&CorpusConfig {
            n_tokens: 5000,
            ..Default::default()
        });
        assert!(c.n_tokens() >= 5000);
        assert!(c.n_tokens() < 5000 + 100); // at most one extra document
        assert_eq!(c.n_tokens(), c.docs().iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn tokens_in_vocab_range() {
        let m = model();
        let c = m.generate_corpus(&CorpusConfig {
            n_tokens: 2000,
            ..Default::default()
        });
        for doc in c.docs() {
            for &w in doc {
                assert!((w as usize) < m.vocab_size());
            }
        }
    }

    #[test]
    fn same_seed_same_corpus() {
        let m = model();
        let cfg = CorpusConfig {
            n_tokens: 3000,
            seed: 7,
            ..Default::default()
        };
        let a = m.generate_corpus(&cfg);
        let b = m.generate_corpus(&cfg);
        assert_eq!(a.docs(), b.docs());
    }

    #[test]
    fn different_seed_different_corpus() {
        let m = model();
        let a = m.generate_corpus(&CorpusConfig {
            n_tokens: 3000,
            seed: 7,
            ..Default::default()
        });
        let b = m.generate_corpus(&CorpusConfig {
            n_tokens: 3000,
            seed: 8,
            ..Default::default()
        });
        assert_ne!(a.docs(), b.docs());
    }

    #[test]
    fn frequent_words_are_frequent() {
        // Word ids are frequency-ordered in the latent model; the corpus
        // should roughly respect that ordering in aggregate.
        let m = model();
        let c = m.generate_corpus(&CorpusConfig {
            n_tokens: 100_000,
            ..Default::default()
        });
        let counts = c.token_counts(m.vocab_size());
        let head: u64 = counts[..20].iter().sum();
        let tail: u64 = counts[m.vocab_size() - 20..].iter().sum();
        assert!(head > 5 * tail, "head {head} should dwarf tail {tail}");
    }

    #[test]
    fn temporal_pair_codec_round_trips() {
        let pair = TemporalPair::build(&TemporalPairConfig {
            model: LatentModelConfig {
                vocab_size: 120,
                n_topics: 6,
                ..Default::default()
            },
            corpus: CorpusConfig {
                n_tokens: 1500,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut bytes = Vec::new();
        pair.encode_into(&mut bytes);
        let r = &mut bytes.as_slice();
        let back = TemporalPair::decode_from(r).expect("decodes");
        assert!(r.is_empty());
        assert_eq!(back.model17.word_vecs, pair.model17.word_vecs);
        assert_eq!(back.model18.word_vecs, pair.model18.word_vecs);
        assert_eq!(back.corpus17.docs(), pair.corpus17.docs());
        assert_eq!(back.corpus18.docs(), pair.corpus18.docs());
        assert_eq!(back.corpus18.n_tokens(), pair.corpus18.n_tokens());
    }

    #[test]
    fn temporal_pair_respects_extra_tokens() {
        let cfg = TemporalPairConfig {
            model: LatentModelConfig {
                vocab_size: 150,
                ..Default::default()
            },
            corpus: CorpusConfig {
                n_tokens: 4000,
                ..Default::default()
            },
            extra_token_frac: 0.25,
            ..Default::default()
        };
        let pair = TemporalPair::build(&cfg);
        assert!(pair.corpus18.n_tokens() as f64 >= 1.25 * 4000.0);
        // Drift must have changed some latent vectors.
        assert_ne!(pair.model17.word_vecs, pair.model18.word_vecs);
    }
}
