//! Walker's alias method for O(1) categorical sampling.

use rand::{Rng, RngExt};

/// A Walker alias table over `n` categories, supporting O(1) sampling from a
/// fixed discrete distribution.
///
/// Corpus generation draws hundreds of thousands of tokens per corpus from
/// per-topic word distributions; the alias method keeps that linear in the
/// token count instead of `O(tokens * vocab)`.
///
/// # Example
///
/// ```
/// use embedstab_corpus::AliasTable;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[1.0, 0.0, 3.0]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let s = table.sample(&mut rng);
/// assert!(s == 0 || s == 2); // category 1 has zero mass
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must be non-negative, finite, and not all zero"
        );
        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
                w * scale
            })
            .collect();

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &l in &large {
            prob[l as usize] = 1.0;
        }
        for &s in &small {
            prob[s as usize] = 1.0; // numerical leftovers
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matches_distribution() {
        let weights = [0.5, 0.0, 2.0, 1.5];
        let table = AliasTable::new(&weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for i in 0..4 {
            let expected = weights[i] / total;
            let got = counts[i] as f64 / draws as f64;
            assert!(
                (expected - got).abs() < 0.01,
                "category {i}: expected {expected}, got {got}"
            );
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
    }

    #[test]
    fn single_category() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "not all zero")]
    fn all_zero_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_panics() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    fn uniform_is_uniform() {
        let table = AliasTable::new(&[1.0; 10]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 100_000.0 - 0.1).abs() < 0.01);
        }
    }
}
