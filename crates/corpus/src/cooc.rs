//! Windowed co-occurrence counting.

use std::collections::HashMap;

use crate::codec;
use crate::generate::Corpus;

/// Configuration for co-occurrence counting.
#[derive(Clone, Copy, Debug)]
pub struct CoocConfig {
    /// Symmetric context window size.
    pub window: usize,
    /// If true, a pair at distance `d` contributes weight `1/d`
    /// (GloVe-style); otherwise weight `1`.
    pub distance_weighting: bool,
}

impl Default for CoocConfig {
    fn default() -> Self {
        CoocConfig {
            window: 8,
            distance_weighting: false,
        }
    }
}

/// A symmetric co-occurrence table over a vocabulary of size `n`.
///
/// Both `(i, j)` and `(j, i)` are stored, so row sums are the standard
/// marginals used by PPMI.
#[derive(Clone, Debug)]
pub struct Cooc {
    n: usize,
    map: HashMap<u64, f64>,
    total: f64,
}

#[inline]
fn key(i: u32, j: u32) -> u64 {
    ((i as u64) << 32) | j as u64
}

impl Cooc {
    /// Counts co-occurrences over all documents of a corpus. Windows do not
    /// cross document boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `config.window` is zero or a token id is `>= vocab_size`.
    pub fn count(corpus: &Corpus, vocab_size: usize, config: &CoocConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        let mut map: HashMap<u64, f64> = HashMap::new();
        let mut total = 0.0;
        for doc in corpus.docs() {
            for (t, &a) in doc.iter().enumerate() {
                assert!((a as usize) < vocab_size, "token id out of vocabulary");
                let end = (t + config.window + 1).min(doc.len());
                for (dist, &b) in doc[t + 1..end].iter().enumerate() {
                    let w = if config.distance_weighting {
                        1.0 / (dist + 1) as f64
                    } else {
                        1.0
                    };
                    *map.entry(key(a, b)).or_insert(0.0) += w;
                    *map.entry(key(b, a)).or_insert(0.0) += w;
                    total += 2.0 * w;
                }
            }
        }
        Cooc {
            n: vocab_size,
            map,
            total,
        }
    }

    /// Vocabulary size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (directed) non-zero entries.
    pub fn nnz(&self) -> usize {
        self.map.len()
    }

    /// Total mass (sum over all stored entries).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The count for pair `(i, j)`, zero if unobserved.
    pub fn get(&self, i: u32, j: u32) -> f64 {
        self.map.get(&key(i, j)).copied().unwrap_or(0.0)
    }

    /// All `(i, j, count)` entries, sorted by `(i, j)` for determinism.
    pub fn entries(&self) -> Vec<(u32, u32, f64)> {
        let mut out: Vec<(u32, u32, f64)> = self
            .map
            .iter()
            .map(|(&k, &v)| ((k >> 32) as u32, k as u32, v))
            .collect();
        out.sort_unstable_by_key(|&(i, j, _)| ((i as u64) << 32) | j as u64);
        out
    }

    /// Row marginals `r_i = sum_j count(i, j)`.
    ///
    /// Accumulated in sorted `(i, j)` order, **not** map-iteration order:
    /// float addition is order-sensitive, and hash-map iteration order
    /// varies per process, so summing the map directly would make the PPMI
    /// statistics (and everything trained from them) differ bitwise
    /// between processes — breaking the shard-fleet guarantee that a
    /// sharded run reproduces the unsharded run exactly.
    pub fn row_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.n];
        for (i, _, v) in self.entries() {
            sums[i as usize] += v;
        }
        sums
    }

    /// Appends the table to `out` in the world-cache byte layout:
    /// `n: u64, total: f64 (raw bits), nnz: u64, sorted (i: u32, j: u32,
    /// count: f64) entries`. The running `total` is stored rather than
    /// recomputed on decode because it was accumulated in counting order —
    /// re-summing the sorted entries would round differently.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.n as u64);
        codec::put_f64(out, self.total);
        codec::put_u64(out, self.map.len() as u64);
        for (i, j, v) in self.entries() {
            codec::put_u32(out, i);
            codec::put_u32(out, j);
            codec::put_f64(out, v);
        }
    }

    /// Reads one [`Cooc::encode_into`]-encoded table from the front of
    /// `r`, advancing it. Returns `None` on truncated or inconsistent
    /// input — including non-finite or negative counts, which no counting
    /// run can produce and which would silently poison PPMI (and
    /// everything trained from it) with NaNs; a decoded table answers
    /// [`Cooc::get`] / [`Cooc::entries`] / [`Cooc::row_sums`] bitwise
    /// identically to the one encoded.
    pub fn decode_from(r: &mut &[u8]) -> Option<Cooc> {
        let n = usize::try_from(codec::take_u64(r)?).ok()?;
        let total = codec::take_f64(r)?;
        if !total.is_finite() || total < 0.0 {
            return None;
        }
        let nnz = codec::take_len(r, 16)?;
        let mut map = HashMap::with_capacity(nnz);
        for _ in 0..nnz {
            let i = codec::take_u32(r)?;
            let j = codec::take_u32(r)?;
            if (i as usize) >= n || (j as usize) >= n {
                return None;
            }
            let v = codec::take_f64(r)?;
            if !v.is_finite() || v < 0.0 {
                return None;
            }
            if map.insert(key(i, j), v).is_some() {
                return None; // duplicate coordinates: corrupt input
            }
        }
        Some(Cooc { n, map, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        Corpus::from_docs(vec![vec![0, 1, 2], vec![1, 1]])
    }

    #[test]
    fn window_one_flat_counts() {
        let c = Cooc::count(
            &tiny_corpus(),
            3,
            &CoocConfig {
                window: 1,
                distance_weighting: false,
            },
        );
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(1, 2), 1.0);
        assert_eq!(c.get(0, 2), 0.0);
        // (1,1) appears once in doc 2, stored in both directions onto the
        // same key, so it accumulates 2.
        assert_eq!(c.get(1, 1), 2.0);
        // Three undirected pairs, each stored in both directions.
        assert_eq!(c.total(), 6.0);
    }

    #[test]
    fn window_two_distance_weighted() {
        let c = Cooc::count(
            &tiny_corpus(),
            3,
            &CoocConfig {
                window: 2,
                distance_weighting: true,
            },
        );
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(0, 2), 0.5);
        assert_eq!(c.get(2, 0), 0.5);
    }

    #[test]
    fn symmetric() {
        let docs = vec![vec![0, 1, 2, 3, 0, 2], vec![3, 2, 1]];
        let c = Cooc::count(&Corpus::from_docs(docs), 4, &CoocConfig::default());
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert_eq!(c.get(i, j), c.get(j, i), "asymmetry at ({i},{j})");
            }
        }
        let sums = c.row_sums();
        assert!((sums.iter().sum::<f64>() - c.total()).abs() < 1e-9);
    }

    #[test]
    fn no_cross_document_pairs() {
        let docs = vec![vec![0], vec![1]];
        let c = Cooc::count(
            &Corpus::from_docs(docs),
            2,
            &CoocConfig {
                window: 5,
                distance_weighting: false,
            },
        );
        assert_eq!(c.get(0, 1), 0.0);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_panics() {
        let docs = vec![vec![0, 9]];
        let _ = Cooc::count(&Corpus::from_docs(docs), 2, &CoocConfig::default());
    }

    #[test]
    fn codec_round_trips_bitwise() {
        let docs = vec![vec![2, 0, 1, 2, 0, 3, 1], vec![3, 2, 1]];
        let c = Cooc::count(
            &Corpus::from_docs(docs),
            4,
            &CoocConfig {
                window: 3,
                distance_weighting: true,
            },
        );
        let mut bytes = Vec::new();
        c.encode_into(&mut bytes);
        let r = &mut bytes.as_slice();
        let back = Cooc::decode_from(r).expect("decodes");
        assert!(r.is_empty());
        assert_eq!(back.n(), c.n());
        assert_eq!(back.total().to_bits(), c.total().to_bits());
        let bits = |c: &Cooc| {
            c.entries()
                .into_iter()
                .map(|(i, j, v)| (i, j, v.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&back), bits(&c));
        let sum_bits = |c: &Cooc| {
            c.row_sums()
                .into_iter()
                .map(f64::to_bits)
                .collect::<Vec<_>>()
        };
        assert_eq!(sum_bits(&back), sum_bits(&c));
        // Truncations decode to None, never panic.
        for cut in 0..bytes.len() {
            assert!(Cooc::decode_from(&mut &bytes[..cut]).is_none());
        }
        // A corrupt count (negative/NaN via a smashed sign-exponent byte)
        // is a miss, not NaN statistics: the first entry's f64 occupies
        // bytes 32..40 (n: 8, total: 8, nnz: 8, i+j: 8).
        let mut corrupt = bytes.clone();
        corrupt[39] = 0xFF;
        assert!(Cooc::decode_from(&mut corrupt.as_slice()).is_none());
        // Same for a corrupt total.
        let mut corrupt = bytes;
        corrupt[15] = 0xFF;
        assert!(Cooc::decode_from(&mut corrupt.as_slice()).is_none());
    }

    #[test]
    fn entries_sorted_and_deterministic() {
        let docs = vec![vec![2, 0, 1, 2, 0]];
        let corpus = Corpus::from_docs(docs);
        let a = Cooc::count(&corpus, 3, &CoocConfig::default()).entries();
        let b = Cooc::count(&corpus, 3, &CoocConfig::default()).entries();
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}
