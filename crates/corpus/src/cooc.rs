//! Windowed co-occurrence counting.

use std::collections::HashMap;
use std::fmt;

use crate::codec;
use crate::generate::Corpus;

/// A validation error from co-occurrence counting or delta streaming.
///
/// Counting used to be panic-only; the streaming path
/// (`embedstab_stream`) applies increments inside a long-lived service
/// where malformed input must surface as a typed error, never crash the
/// process. [`Cooc::count`] keeps its panicking contract by unwrapping
/// this type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoocError {
    /// `CoocConfig::window` was zero: every window would be empty, so the
    /// count would silently be an empty table — statistically meaningless
    /// and almost certainly a caller bug.
    ZeroWindow,
    /// A token id at or beyond the vocabulary size.
    TokenOutOfVocab {
        /// The offending token id.
        token: u32,
        /// The vocabulary size it failed against.
        vocab_size: usize,
    },
    /// A delta built for one vocabulary size was applied to a table with
    /// another.
    VocabMismatch {
        /// The table's vocabulary size.
        table: usize,
        /// The delta's vocabulary size.
        delta: usize,
    },
}

impl fmt::Display for CoocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CoocError::ZeroWindow => {
                write!(f, "window must be positive (window == 0 counts nothing)")
            }
            CoocError::TokenOutOfVocab { token, vocab_size } => {
                write!(f, "token id {token} out of vocabulary (size {vocab_size})")
            }
            CoocError::VocabMismatch { table, delta } => {
                write!(
                    f,
                    "vocabulary mismatch: table has {table} words, delta was built for {delta}"
                )
            }
        }
    }
}

impl std::error::Error for CoocError {}

/// Configuration for co-occurrence counting.
#[derive(Clone, Copy, Debug)]
pub struct CoocConfig {
    /// Symmetric context window size.
    pub window: usize,
    /// If true, a pair at distance `d` contributes weight `1/d`
    /// (GloVe-style); otherwise weight `1`.
    pub distance_weighting: bool,
}

impl Default for CoocConfig {
    fn default() -> Self {
        CoocConfig {
            window: 8,
            distance_weighting: false,
        }
    }
}

/// A symmetric co-occurrence table over a vocabulary of size `n`.
///
/// Both `(i, j)` and `(j, i)` are stored, so row sums are the standard
/// marginals used by PPMI.
#[derive(Clone, Debug)]
pub struct Cooc {
    n: usize,
    map: HashMap<u64, f64>,
    total: f64,
}

#[inline]
fn key(i: u32, j: u32) -> u64 {
    ((i as u64) << 32) | j as u64
}

impl Cooc {
    /// Counts co-occurrences over all documents of a corpus. Windows do not
    /// cross document boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `config.window` is zero or a token id is `>= vocab_size`.
    /// [`Cooc::try_count`] is the non-panicking equivalent.
    pub fn count(corpus: &Corpus, vocab_size: usize, config: &CoocConfig) -> Self {
        match Self::try_count(corpus, vocab_size, config) {
            Ok(c) => c,
            Err(CoocError::ZeroWindow) => panic!("window must be positive"),
            Err(e @ CoocError::TokenOutOfVocab { .. }) => {
                panic!("token id out of vocabulary: {e}")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Counts co-occurrences like [`Cooc::count`], but reports invalid
    /// input as a typed [`CoocError`] instead of panicking — the contract
    /// long-lived services (the streaming retrainer) need.
    ///
    /// # Errors
    ///
    /// [`CoocError::ZeroWindow`] if `config.window == 0`,
    /// [`CoocError::TokenOutOfVocab`] if any token id is `>= vocab_size`.
    pub fn try_count(
        corpus: &Corpus,
        vocab_size: usize,
        config: &CoocConfig,
    ) -> Result<Self, CoocError> {
        let mut c = Cooc::empty(vocab_size);
        c.accumulate(corpus.docs(), config)?;
        Ok(c)
    }

    /// An empty table over a vocabulary of size `vocab_size` — the
    /// starting point for [`Cooc::accumulate`] streaming.
    pub fn empty(vocab_size: usize) -> Self {
        Cooc {
            n: vocab_size,
            map: HashMap::new(),
            total: 0.0,
        }
    }

    /// Streams additional documents into the table, returning the sorted
    /// ids of rows whose counts changed (the dirty set).
    ///
    /// This is the streaming primitive behind `embedstab_stream`: because
    /// each map entry and the running `total` are plain `+=` accumulators,
    /// feeding documents in across any number of `accumulate` calls
    /// produces **bitwise-identical** state — map values, `total`,
    /// [`Cooc::entries`] and [`Cooc::row_sums`] — to one
    /// [`Cooc::count`] over the concatenated corpus: every accumulator
    /// sees the same additions in the same (document) order, and
    /// [`Cooc::row_sums`] re-sums in sorted-entry order regardless of how
    /// the map grew. Windows never cross document boundaries, so
    /// increments at document granularity leave earlier documents' pair
    /// contributions untouched.
    ///
    /// All tokens are validated *before* any mutation, so an error leaves
    /// the table exactly as it was (strong exception safety) — a
    /// half-applied increment would silently skew every statistic
    /// downstream.
    ///
    /// # Errors
    ///
    /// [`CoocError::ZeroWindow`] if `config.window == 0`,
    /// [`CoocError::TokenOutOfVocab`] on the first token id `>= self.n()`.
    pub fn accumulate(
        &mut self,
        docs: &[Vec<u32>],
        config: &CoocConfig,
    ) -> Result<Vec<u32>, CoocError> {
        if config.window == 0 {
            return Err(CoocError::ZeroWindow);
        }
        for doc in docs {
            for &t in doc {
                if (t as usize) >= self.n {
                    return Err(CoocError::TokenOutOfVocab {
                        token: t,
                        vocab_size: self.n,
                    });
                }
            }
        }
        let mut touched = vec![false; self.n];
        for doc in docs {
            for (t, &a) in doc.iter().enumerate() {
                let end = (t + config.window + 1).min(doc.len());
                for (dist, &b) in doc[t + 1..end].iter().enumerate() {
                    let w = if config.distance_weighting {
                        1.0 / (dist + 1) as f64
                    } else {
                        1.0
                    };
                    *self.map.entry(key(a, b)).or_insert(0.0) += w;
                    *self.map.entry(key(b, a)).or_insert(0.0) += w;
                    self.total += 2.0 * w;
                    touched[a as usize] = true;
                    touched[b as usize] = true;
                }
            }
        }
        Ok(touched
            .iter()
            .enumerate()
            .filter_map(|(i, &hit)| hit.then_some(i as u32))
            .collect())
    }

    /// Vocabulary size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (directed) non-zero entries.
    pub fn nnz(&self) -> usize {
        self.map.len()
    }

    /// Total mass (sum over all stored entries).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The count for pair `(i, j)`, zero if unobserved.
    pub fn get(&self, i: u32, j: u32) -> f64 {
        self.map.get(&key(i, j)).copied().unwrap_or(0.0)
    }

    /// All `(i, j, count)` entries, sorted by `(i, j)` for determinism.
    pub fn entries(&self) -> Vec<(u32, u32, f64)> {
        let mut out: Vec<(u32, u32, f64)> = self
            .map
            .iter()
            .map(|(&k, &v)| ((k >> 32) as u32, k as u32, v))
            .collect();
        out.sort_unstable_by_key(|&(i, j, _)| ((i as u64) << 32) | j as u64);
        out
    }

    /// Per-row views of the table: for each row `i`, its `(j, count)`
    /// entries sorted by `j`. This is [`Cooc::entries`] chunked by row —
    /// same entries, same within-row order — but built with one
    /// `O(len log len)` sort *per row* instead of one global sort, which
    /// is markedly cheaper at large `nnz` and what the incremental PPMI
    /// refresh ([`crate::ppmi::recompute_rows`]) iterates.
    pub fn rows_sorted(&self) -> Vec<Vec<(u32, f64)>> {
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); self.n];
        for (&k, &v) in &self.map {
            rows[(k >> 32) as usize].push((k as u32, v));
        }
        for row in rows.iter_mut() {
            row.sort_unstable_by_key(|&(j, _)| j);
        }
        rows
    }

    /// Row marginals `r_i = sum_j count(i, j)`.
    ///
    /// Accumulated in sorted `(i, j)` order, **not** map-iteration order:
    /// float addition is order-sensitive, and hash-map iteration order
    /// varies per process, so summing the map directly would make the PPMI
    /// statistics (and everything trained from them) differ bitwise
    /// between processes — breaking the shard-fleet guarantee that a
    /// sharded run reproduces the unsharded run exactly.
    pub fn row_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.n];
        for (i, _, v) in self.entries() {
            sums[i as usize] += v;
        }
        sums
    }

    /// Appends the table to `out` in the world-cache byte layout:
    /// `n: u64, total: f64 (raw bits), nnz: u64, sorted (i: u32, j: u32,
    /// count: f64) entries`. The running `total` is stored rather than
    /// recomputed on decode because it was accumulated in counting order —
    /// re-summing the sorted entries would round differently.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.n as u64);
        codec::put_f64(out, self.total);
        codec::put_u64(out, self.map.len() as u64);
        for (i, j, v) in self.entries() {
            codec::put_u32(out, i);
            codec::put_u32(out, j);
            codec::put_f64(out, v);
        }
    }

    /// Reads one [`Cooc::encode_into`]-encoded table from the front of
    /// `r`, advancing it. Returns `None` on truncated or inconsistent
    /// input — including non-finite or negative counts, which no counting
    /// run can produce and which would silently poison PPMI (and
    /// everything trained from it) with NaNs; a decoded table answers
    /// [`Cooc::get`] / [`Cooc::entries`] / [`Cooc::row_sums`] bitwise
    /// identically to the one encoded.
    pub fn decode_from(r: &mut &[u8]) -> Option<Cooc> {
        let n = usize::try_from(codec::take_u64(r)?).ok()?;
        let total = codec::take_f64(r)?;
        if !total.is_finite() || total < 0.0 {
            return None;
        }
        let nnz = codec::take_len(r, 16)?;
        let mut map = HashMap::with_capacity(nnz);
        for _ in 0..nnz {
            let i = codec::take_u32(r)?;
            let j = codec::take_u32(r)?;
            if (i as usize) >= n || (j as usize) >= n {
                return None;
            }
            let v = codec::take_f64(r)?;
            if !v.is_finite() || v < 0.0 {
                return None;
            }
            if map.insert(key(i, j), v).is_some() {
                return None; // duplicate coordinates: corrupt input
            }
        }
        Some(Cooc { n, map, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        Corpus::from_docs(vec![vec![0, 1, 2], vec![1, 1]])
    }

    #[test]
    fn window_one_flat_counts() {
        let c = Cooc::count(
            &tiny_corpus(),
            3,
            &CoocConfig {
                window: 1,
                distance_weighting: false,
            },
        );
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(1, 2), 1.0);
        assert_eq!(c.get(0, 2), 0.0);
        // (1,1) appears once in doc 2, stored in both directions onto the
        // same key, so it accumulates 2.
        assert_eq!(c.get(1, 1), 2.0);
        // Three undirected pairs, each stored in both directions.
        assert_eq!(c.total(), 6.0);
    }

    #[test]
    fn window_two_distance_weighted() {
        let c = Cooc::count(
            &tiny_corpus(),
            3,
            &CoocConfig {
                window: 2,
                distance_weighting: true,
            },
        );
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(0, 2), 0.5);
        assert_eq!(c.get(2, 0), 0.5);
    }

    #[test]
    fn symmetric() {
        let docs = vec![vec![0, 1, 2, 3, 0, 2], vec![3, 2, 1]];
        let c = Cooc::count(&Corpus::from_docs(docs), 4, &CoocConfig::default());
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert_eq!(c.get(i, j), c.get(j, i), "asymmetry at ({i},{j})");
            }
        }
        let sums = c.row_sums();
        assert!((sums.iter().sum::<f64>() - c.total()).abs() < 1e-9);
    }

    #[test]
    fn no_cross_document_pairs() {
        let docs = vec![vec![0], vec![1]];
        let c = Cooc::count(
            &Corpus::from_docs(docs),
            2,
            &CoocConfig {
                window: 5,
                distance_weighting: false,
            },
        );
        assert_eq!(c.get(0, 1), 0.0);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_panics() {
        let docs = vec![vec![0, 9]];
        let _ = Cooc::count(&Corpus::from_docs(docs), 2, &CoocConfig::default());
    }

    #[test]
    fn codec_round_trips_bitwise() {
        let docs = vec![vec![2, 0, 1, 2, 0, 3, 1], vec![3, 2, 1]];
        let c = Cooc::count(
            &Corpus::from_docs(docs),
            4,
            &CoocConfig {
                window: 3,
                distance_weighting: true,
            },
        );
        let mut bytes = Vec::new();
        c.encode_into(&mut bytes);
        let r = &mut bytes.as_slice();
        let back = Cooc::decode_from(r).expect("decodes");
        assert!(r.is_empty());
        assert_eq!(back.n(), c.n());
        assert_eq!(back.total().to_bits(), c.total().to_bits());
        let bits = |c: &Cooc| {
            c.entries()
                .into_iter()
                .map(|(i, j, v)| (i, j, v.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&back), bits(&c));
        let sum_bits = |c: &Cooc| {
            c.row_sums()
                .into_iter()
                .map(f64::to_bits)
                .collect::<Vec<_>>()
        };
        assert_eq!(sum_bits(&back), sum_bits(&c));
        // Truncations decode to None, never panic.
        for cut in 0..bytes.len() {
            assert!(Cooc::decode_from(&mut &bytes[..cut]).is_none());
        }
        // A corrupt count (negative/NaN via a smashed sign-exponent byte)
        // is a miss, not NaN statistics: the first entry's f64 occupies
        // bytes 32..40 (n: 8, total: 8, nnz: 8, i+j: 8).
        let mut corrupt = bytes.clone();
        corrupt[39] = 0xFF;
        assert!(Cooc::decode_from(&mut corrupt.as_slice()).is_none());
        // Same for a corrupt total.
        let mut corrupt = bytes;
        corrupt[15] = 0xFF;
        assert!(Cooc::decode_from(&mut corrupt.as_slice()).is_none());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics_in_count() {
        let _ = Cooc::count(
            &tiny_corpus(),
            3,
            &CoocConfig {
                window: 0,
                distance_weighting: false,
            },
        );
    }

    #[test]
    fn try_count_reports_typed_errors() {
        let zero = CoocConfig {
            window: 0,
            distance_weighting: false,
        };
        assert_eq!(
            Cooc::try_count(&tiny_corpus(), 3, &zero).expect_err("zero window"),
            CoocError::ZeroWindow
        );
        let oov = Cooc::try_count(
            &Corpus::from_docs(vec![vec![0, 9]]),
            2,
            &CoocConfig::default(),
        );
        assert_eq!(
            oov.expect_err("out-of-vocab token"),
            CoocError::TokenOutOfVocab {
                token: 9,
                vocab_size: 2
            }
        );
        let ok = Cooc::try_count(&tiny_corpus(), 3, &CoocConfig::default()).expect("valid corpus");
        let counted = Cooc::count(&tiny_corpus(), 3, &CoocConfig::default());
        assert_eq!(ok.total().to_bits(), counted.total().to_bits());
    }

    #[test]
    fn accumulate_error_leaves_table_untouched() {
        let config = CoocConfig::default();
        let mut c = Cooc::count(&tiny_corpus(), 3, &config);
        let before_total = c.total().to_bits();
        let before_entries = c.entries();
        // The bad token sits at the *end* of the batch: a validate-as-you-go
        // implementation would have already mutated the table by then.
        let err = c
            .accumulate(&[vec![0, 1], vec![2, 7]], &config)
            .expect_err("out-of-vocab batch must be rejected");
        assert_eq!(
            err,
            CoocError::TokenOutOfVocab {
                token: 7,
                vocab_size: 3
            }
        );
        assert_eq!(c.total().to_bits(), before_total);
        assert_eq!(c.entries(), before_entries);
    }

    #[test]
    fn accumulate_reports_sorted_dirty_rows() {
        let mut c = Cooc::empty(6);
        let dirty = c
            .accumulate(&[vec![5, 2], vec![2, 0]], &CoocConfig::default())
            .expect("valid batch");
        assert_eq!(dirty, vec![0, 2, 5]);
        // A batch with no in-window pairs dirties nothing.
        let dirty = c
            .accumulate(
                &[vec![4], vec![1]],
                &CoocConfig {
                    window: 3,
                    distance_weighting: false,
                },
            )
            .expect("valid batch");
        assert!(dirty.is_empty());
    }

    #[test]
    fn streamed_batches_match_one_shot_count_bitwise() {
        let docs = vec![
            vec![2, 0, 1, 2, 0, 3, 1],
            vec![3, 2, 1],
            vec![0, 0, 3],
            vec![1, 3, 2, 0],
        ];
        let config = CoocConfig {
            window: 2,
            distance_weighting: true,
        };
        let one_shot = Cooc::count(&Corpus::from_docs(docs.clone()), 4, &config);
        let mut streamed = Cooc::empty(4);
        for batch in docs.chunks(1) {
            streamed.accumulate(batch, &config).expect("valid batch");
        }
        assert_eq!(streamed.total().to_bits(), one_shot.total().to_bits());
        let bits = |c: &Cooc| {
            c.entries()
                .into_iter()
                .map(|(i, j, v)| (i, j, v.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&streamed), bits(&one_shot));
        let sum_bits = |c: &Cooc| {
            c.row_sums()
                .into_iter()
                .map(f64::to_bits)
                .collect::<Vec<_>>()
        };
        assert_eq!(sum_bits(&streamed), sum_bits(&one_shot));
    }

    #[test]
    fn entries_sorted_and_deterministic() {
        let docs = vec![vec![2, 0, 1, 2, 0]];
        let corpus = Corpus::from_docs(docs);
        let a = Cooc::count(&corpus, 3, &CoocConfig::default()).entries();
        let b = Cooc::count(&corpus, 3, &CoocConfig::default()).entries();
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}
