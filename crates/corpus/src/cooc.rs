//! Windowed co-occurrence counting.

use std::collections::HashMap;

use crate::generate::Corpus;

/// Configuration for co-occurrence counting.
#[derive(Clone, Copy, Debug)]
pub struct CoocConfig {
    /// Symmetric context window size.
    pub window: usize,
    /// If true, a pair at distance `d` contributes weight `1/d`
    /// (GloVe-style); otherwise weight `1`.
    pub distance_weighting: bool,
}

impl Default for CoocConfig {
    fn default() -> Self {
        CoocConfig {
            window: 8,
            distance_weighting: false,
        }
    }
}

/// A symmetric co-occurrence table over a vocabulary of size `n`.
///
/// Both `(i, j)` and `(j, i)` are stored, so row sums are the standard
/// marginals used by PPMI.
#[derive(Clone, Debug)]
pub struct Cooc {
    n: usize,
    map: HashMap<u64, f64>,
    total: f64,
}

#[inline]
fn key(i: u32, j: u32) -> u64 {
    ((i as u64) << 32) | j as u64
}

impl Cooc {
    /// Counts co-occurrences over all documents of a corpus. Windows do not
    /// cross document boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `config.window` is zero or a token id is `>= vocab_size`.
    pub fn count(corpus: &Corpus, vocab_size: usize, config: &CoocConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        let mut map: HashMap<u64, f64> = HashMap::new();
        let mut total = 0.0;
        for doc in corpus.docs() {
            for (t, &a) in doc.iter().enumerate() {
                assert!((a as usize) < vocab_size, "token id out of vocabulary");
                let end = (t + config.window + 1).min(doc.len());
                for (dist, &b) in doc[t + 1..end].iter().enumerate() {
                    let w = if config.distance_weighting {
                        1.0 / (dist + 1) as f64
                    } else {
                        1.0
                    };
                    *map.entry(key(a, b)).or_insert(0.0) += w;
                    *map.entry(key(b, a)).or_insert(0.0) += w;
                    total += 2.0 * w;
                }
            }
        }
        Cooc {
            n: vocab_size,
            map,
            total,
        }
    }

    /// Vocabulary size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (directed) non-zero entries.
    pub fn nnz(&self) -> usize {
        self.map.len()
    }

    /// Total mass (sum over all stored entries).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The count for pair `(i, j)`, zero if unobserved.
    pub fn get(&self, i: u32, j: u32) -> f64 {
        self.map.get(&key(i, j)).copied().unwrap_or(0.0)
    }

    /// All `(i, j, count)` entries, sorted by `(i, j)` for determinism.
    pub fn entries(&self) -> Vec<(u32, u32, f64)> {
        let mut out: Vec<(u32, u32, f64)> = self
            .map
            .iter()
            .map(|(&k, &v)| ((k >> 32) as u32, k as u32, v))
            .collect();
        out.sort_unstable_by_key(|&(i, j, _)| ((i as u64) << 32) | j as u64);
        out
    }

    /// Row marginals `r_i = sum_j count(i, j)`.
    pub fn row_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.n];
        for (&k, &v) in &self.map {
            sums[(k >> 32) as usize] += v;
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        Corpus::from_docs(vec![vec![0, 1, 2], vec![1, 1]])
    }

    #[test]
    fn window_one_flat_counts() {
        let c = Cooc::count(
            &tiny_corpus(),
            3,
            &CoocConfig {
                window: 1,
                distance_weighting: false,
            },
        );
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(1, 2), 1.0);
        assert_eq!(c.get(0, 2), 0.0);
        // (1,1) appears once in doc 2, stored in both directions onto the
        // same key, so it accumulates 2.
        assert_eq!(c.get(1, 1), 2.0);
        // Three undirected pairs, each stored in both directions.
        assert_eq!(c.total(), 6.0);
    }

    #[test]
    fn window_two_distance_weighted() {
        let c = Cooc::count(
            &tiny_corpus(),
            3,
            &CoocConfig {
                window: 2,
                distance_weighting: true,
            },
        );
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(0, 2), 0.5);
        assert_eq!(c.get(2, 0), 0.5);
    }

    #[test]
    fn symmetric() {
        let docs = vec![vec![0, 1, 2, 3, 0, 2], vec![3, 2, 1]];
        let c = Cooc::count(&Corpus::from_docs(docs), 4, &CoocConfig::default());
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert_eq!(c.get(i, j), c.get(j, i), "asymmetry at ({i},{j})");
            }
        }
        let sums = c.row_sums();
        assert!((sums.iter().sum::<f64>() - c.total()).abs() < 1e-9);
    }

    #[test]
    fn no_cross_document_pairs() {
        let docs = vec![vec![0], vec![1]];
        let c = Cooc::count(
            &Corpus::from_docs(docs),
            2,
            &CoocConfig {
                window: 5,
                distance_weighting: false,
            },
        );
        assert_eq!(c.get(0, 1), 0.0);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_panics() {
        let docs = vec![vec![0, 9]];
        let _ = Cooc::count(&Corpus::from_docs(docs), 2, &CoocConfig::default());
    }

    #[test]
    fn entries_sorted_and_deterministic() {
        let docs = vec![vec![2, 0, 1, 2, 0]];
        let corpus = Corpus::from_docs(docs);
        let a = Cooc::count(&corpus, 3, &CoocConfig::default()).entries();
        let b = Cooc::count(&corpus, 3, &CoocConfig::default()).entries();
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}
