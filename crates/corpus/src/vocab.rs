//! Synthetic vocabulary with morphologically structured word strings.

use std::collections::HashMap;

/// A vocabulary mapping between word ids (`u32`, dense from 0) and synthetic
/// word strings.
///
/// Word strings are synthesized with a topic-dependent prefix syllable plus a
/// consonant–vowel encoding of the word id. The shared prefixes give
/// character n-grams real signal, which is what the fastText subword
/// extension (paper Appendix E.1) needs to be meaningful on synthetic data.
///
/// # Example
///
/// ```
/// use embedstab_corpus::Vocab;
///
/// let vocab = Vocab::synthetic(&[0, 0, 1]);
/// assert_eq!(vocab.len(), 3);
/// let w = vocab.word(2);
/// assert_eq!(vocab.id(w), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct Vocab {
    words: Vec<String>,
    index: HashMap<String, u32>,
}

const PREFIXES: [&str; 24] = [
    "ba", "ke", "mu", "so", "ti", "re", "la", "po", "du", "vi", "no", "fa", "ga", "he", "zi", "wo",
    "cha", "ne", "ry", "qua", "lo", "sha", "pe", "tru",
];

const CONSONANTS: [char; 10] = ['b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'r', 's'];
const VOWELS: [char; 5] = ['a', 'e', 'i', 'o', 'u'];

/// Synthesizes a pronounceable word string for word `idx` in topic `topic`.
pub fn synth_word(idx: usize, topic: usize) -> String {
    let mut s = String::from(PREFIXES[topic % PREFIXES.len()]);
    let mut rest = idx;
    loop {
        s.push(CONSONANTS[rest % 10]);
        rest /= 10;
        s.push(VOWELS[rest % 5]);
        rest /= 5;
        if rest == 0 {
            break;
        }
    }
    s
}

impl Vocab {
    /// Builds a synthetic vocabulary, one word per entry of `word_topics`
    /// (word `i` gets a string derived from `word_topics[i]`).
    pub fn synthetic(word_topics: &[usize]) -> Self {
        let words: Vec<String> = word_topics
            .iter()
            .enumerate()
            .map(|(i, &t)| synth_word(i, t))
            .collect();
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as u32))
            .collect();
        Vocab { words, index }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The string for word id `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn word(&self, i: u32) -> &str {
        &self.words[i as usize]
    }

    /// The id for a word string, if present.
    pub fn id(&self, word: &str) -> Option<u32> {
        self.index.get(word).copied()
    }

    /// Iterator over `(id, word)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (i as u32, w.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_unique() {
        let topics: Vec<usize> = (0..500).map(|i| i % 7).collect();
        let vocab = Vocab::synthetic(&topics);
        let mut seen = std::collections::HashSet::new();
        for (_, w) in vocab.iter() {
            assert!(seen.insert(w.to_string()), "duplicate word {w}");
        }
        assert_eq!(vocab.len(), 500);
    }

    #[test]
    fn roundtrip_lookup() {
        let vocab = Vocab::synthetic(&[0, 1, 2, 3]);
        for i in 0..4u32 {
            assert_eq!(vocab.id(vocab.word(i)), Some(i));
        }
        assert_eq!(vocab.id("notaword"), None);
    }

    #[test]
    fn topic_prefix_shared() {
        // Two words in the same topic share their prefix syllable.
        let a = synth_word(10, 3);
        let b = synth_word(20, 3);
        assert_eq!(&a[..2], &b[..2]);
        // Different topics get different prefixes (for small topic ids).
        let c = synth_word(10, 4);
        assert_ne!(&a[..2], &c[..2]);
    }
}
