//! Little-endian byte-codec primitives for the corpus substrate.
//!
//! The pipeline's on-disk caches (the pair cache and the world cache) dump
//! `f64` bits raw so loads round-trip **bitwise**. This module is the one
//! definition of that byte layout: everything little-endian, matrices as
//! `rows: u32, cols: u32, row-major f64 entries`, sequences
//! length-prefixed. Corpus types (and, downstream, the dataset codecs)
//! build their `encode_into` / `decode_from` methods from these
//! primitives, and `embedstab_pipeline::cache` delegates its
//! `encode_mat`/`decode_mat`/`read_u32` here — so the pair-cache and
//! world-cache file families stay byte-compatible by construction.
//!
//! Decoders take a `&mut &[u8]` cursor and return `Option`: any truncated
//! or inconsistent input yields `None` (callers treat that as a cache
//! miss, never a panic), and no decoder trusts a length prefix before
//! checking the remaining input actually holds that many bytes — a corrupt
//! file must not trigger a giant allocation.

use embedstab_linalg::Mat;

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw little-endian bit pattern (round-trips
/// exactly, including NaN payloads and signed zeros).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed `u32` slice.
pub fn put_u32_slice(out: &mut Vec<u8>, vs: &[u32]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Appends a length-prefixed `u64` slice.
pub fn put_u64_slice(out: &mut Vec<u8>, vs: &[u64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u64(out, v);
    }
}

/// Appends a length-prefixed `f64` slice (raw bits).
pub fn put_f64_slice(out: &mut Vec<u8>, vs: &[f64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_f64(out, v);
    }
}

/// Appends a matrix as `rows: u32, cols: u32, row-major f64 entries` — the
/// pair-cache layout, so matrix bytes are interchangeable between the two
/// cache families.
pub fn put_mat(out: &mut Vec<u8>, m: &Mat) {
    // A dimension past u32::MAX would truncate into a well-formed header
    // describing a different matrix; no real vocab/dim comes close.
    debug_assert!(m.rows() <= u32::MAX as usize && m.cols() <= u32::MAX as usize);
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    for &x in m.as_slice() {
        put_f64(out, x);
    }
}

/// Reads a `u32` from the front of `r`, advancing it.
pub fn take_u32(r: &mut &[u8]) -> Option<u32> {
    let (head, rest) = r.split_first_chunk::<4>()?;
    *r = rest;
    Some(u32::from_le_bytes(*head))
}

/// Reads a `u64` from the front of `r`, advancing it.
pub fn take_u64(r: &mut &[u8]) -> Option<u64> {
    let (head, rest) = r.split_first_chunk::<8>()?;
    *r = rest;
    Some(u64::from_le_bytes(*head))
}

/// Reads an `f64` bit pattern from the front of `r`, advancing it.
pub fn take_f64(r: &mut &[u8]) -> Option<f64> {
    take_u64(r).map(f64::from_bits)
}

/// Reads a `u64` length prefix, refusing lengths the remaining input
/// cannot possibly hold (`elem_size` bytes per element).
pub fn take_len(r: &mut &[u8], elem_size: usize) -> Option<usize> {
    let n = usize::try_from(take_u64(r)?).ok()?;
    if r.len() < n.checked_mul(elem_size)? {
        return None;
    }
    Some(n)
}

/// Reads a length-prefixed `u32` slice.
pub fn take_u32_slice(r: &mut &[u8]) -> Option<Vec<u32>> {
    let n = take_len(r, 4)?;
    (0..n).map(|_| take_u32(r)).collect()
}

/// Reads a length-prefixed `u64` slice.
pub fn take_u64_slice(r: &mut &[u8]) -> Option<Vec<u64>> {
    let n = take_len(r, 8)?;
    (0..n).map(|_| take_u64(r)).collect()
}

/// Reads a length-prefixed `f64` slice.
pub fn take_f64_slice(r: &mut &[u8]) -> Option<Vec<f64>> {
    let n = take_len(r, 8)?;
    (0..n).map(|_| take_f64(r)).collect()
}

/// Reads a [`put_mat`]-encoded matrix.
pub fn take_mat(r: &mut &[u8]) -> Option<Mat> {
    let rows = take_u32(r)? as usize;
    let cols = take_u32(r)? as usize;
    let n = rows.checked_mul(cols)?;
    if r.len() < n.checked_mul(8)? {
        return None;
    }
    let data: Option<Vec<f64>> = (0..n).map(|_| take_f64(r)).collect();
    Mat::try_from_vec(rows, cols, data?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX - 3);
        put_f64(&mut out, -0.0);
        put_f64(&mut out, f64::NAN);
        put_u32_slice(&mut out, &[1, 2, 3]);
        put_f64_slice(&mut out, &[0.5, -1.25]);
        let r = &mut out.as_slice();
        assert_eq!(take_u32(r), Some(7));
        assert_eq!(take_u64(r), Some(u64::MAX - 3));
        assert_eq!(take_f64(r).map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(take_f64(r).map(f64::to_bits), Some(f64::NAN.to_bits()));
        assert_eq!(take_u32_slice(r), Some(vec![1, 2, 3]));
        assert_eq!(take_f64_slice(r), Some(vec![0.5, -1.25]));
        assert!(r.is_empty());
    }

    #[test]
    fn mat_round_trips_bitwise() {
        let m = Mat::from_rows(&[&[1.5, -2.0, 0.25], &[0.0, -0.0, 3.0]]);
        let mut out = Vec::new();
        put_mat(&mut out, &m);
        let r = &mut out.as_slice();
        let back = take_mat(r).expect("decodes");
        assert!(r.is_empty());
        assert_eq!(back.shape(), m.shape());
        let bits = |m: &Mat| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&m));
    }

    #[test]
    fn truncation_is_a_none_not_a_panic() {
        let mut out = Vec::new();
        put_mat(&mut out, &Mat::from_rows(&[&[1.0, 2.0]]));
        for cut in 0..out.len() {
            let r = &mut &out[..cut];
            assert!(take_mat(r).is_none(), "cut at {cut} must not decode");
        }
        // A huge claimed length with a short body must be rejected before
        // any allocation.
        let mut evil = Vec::new();
        put_u64(&mut evil, u64::MAX / 2);
        assert!(take_u64_slice(&mut evil.as_slice()).is_none());
        assert!(take_f64_slice(&mut evil.as_slice()).is_none());
    }
}
