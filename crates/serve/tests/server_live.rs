//! Live-traffic integration tests for the TCP front-end: hot
//! promote/rollback with zero dropped queries, and the no-panic contract
//! under a malformed-input storm.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use embedstab_embeddings::Embedding;
use embedstab_linalg::Mat;
use embedstab_pipeline::cache::scratch_dir;
use embedstab_quant::Precision;
use embedstab_serve::wire::{self, Request, Response};
use embedstab_serve::{serve, ServeHandle, ServerConfig, SnapshotStore, TenantConfig};
use rand::SeedableRng;

fn emb(seed: u64, n: usize, d: usize) -> Embedding {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Embedding::new(Mat::random_normal(n, d, &mut rng))
}

fn start_server(label: &str, base: &Embedding, max_pending: usize) -> (ServeHandle, String) {
    let dir = scratch_dir(label);
    std::fs::remove_dir_all(&dir).ok();
    let mut store = SnapshotStore::open(&dir).expect("open store");
    store
        .publish(base, Precision::new(8), None)
        .expect("bootstrap publish");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(
        listener,
        vec![TenantConfig {
            name: "t".into(),
            store,
            max_pending,
        }],
        ServerConfig {
            batch_window: Duration::from_micros(100),
            max_batch: 32,
            // Generous: tests must never hang on a stuck handler, but
            // must not flake under load either.
            io_timeout: Some(Duration::from_secs(30)),
        },
    )
    .expect("serve");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// The fixed request set whose answers must be bitwise stable across a
/// publish + rollback round trip.
fn probe_requests(dim: usize) -> Vec<Request> {
    vec![
        Request::LookupBatch {
            tenant: "t".into(),
            ids: vec![0, 3, 7, 19],
        },
        Request::NearestBatch {
            tenant: "t".into(),
            k: 5,
            queries: Mat::from_vec(1, dim, (0..dim).map(|i| (i as f64).sin()).collect()),
        },
    ]
}

/// Answers for the probe set, as encoded response bytes (bitwise).
fn probe_answers(addr: &str, dim: usize) -> Vec<Vec<u8>> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    probe_requests(dim)
        .iter()
        .map(|req| {
            let resp = wire::call(&mut conn, req).expect("call");
            assert!(!resp.is_error(), "probe answered with error: {resp:?}");
            wire::encode_response(&resp).expect("encode")
        })
        .collect()
}

#[test]
fn promote_and_rollback_drop_no_queries_and_restore_answers_bitwise() {
    let (n, d) = (60, 8);
    let before = emb(1, n, d);
    let after = emb(2, n, d);
    let (handle, addr) = start_server("server_live_swap", &before, 100_000);

    let baseline = probe_answers(&addr, d);

    // Clients hammer well-formed queries across the promote + rollback
    // window; every single one must get a non-error answer.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(&addr).expect("client connect");
                let mut answered = 0u64;
                let mut i = 0u32;
                while !stop.load(Ordering::SeqCst) {
                    let req = if i % 3 == 0 {
                        Request::NearestBatch {
                            tenant: "t".into(),
                            k: 3,
                            queries: Mat::from_vec(
                                1,
                                d,
                                (0..d).map(|j| ((c + 1) * (j + 1)) as f64).collect(),
                            ),
                        }
                    } else {
                        Request::LookupBatch {
                            tenant: "t".into(),
                            ids: vec![i % n as u32, (i + 7) % n as u32],
                        }
                    };
                    let resp = wire::call(&mut conn, &req)
                        .expect("transport failure: a query was dropped");
                    assert!(!resp.is_error(), "in-flight query errored: {resp:?}");
                    answered += 1;
                    i = i.wrapping_add(1);
                }
                answered
            })
        })
        .collect();

    // Let traffic build, then hot-swap forward and back under load.
    std::thread::sleep(Duration::from_millis(50));
    let v2 = handle.promote("t", &after).expect("promote");
    assert_eq!(v2.0, 2);
    // The new snapshot is what the server now answers from.
    let promoted = probe_answers(&addr, d);
    assert_ne!(
        baseline, promoted,
        "a different embedding must answer differently"
    );
    std::thread::sleep(Duration::from_millis(50));
    let back = handle.rollback("t").expect("rollback");
    assert_eq!(back.0, 1);
    std::thread::sleep(Duration::from_millis(50));

    stop.store(true, Ordering::SeqCst);
    let mut total = 0u64;
    for c in clients {
        total += c.join().expect("client thread");
    }
    assert!(total > 0, "clients must have exercised the swap window");

    // Post-rollback answers are bitwise the pre-publish answers.
    assert_eq!(
        probe_answers(&addr, d),
        baseline,
        "rollback must restore the exact pre-publish answers"
    );
    let (ok, errors) = handle.response_counts();
    assert!(ok > total, "server counted the traffic");
    assert_eq!(errors, 0, "no query may error across promote/rollback");
    handle.shutdown();
}

#[test]
fn malformed_input_storm_yields_only_error_responses_and_no_crash() {
    let (n, d) = (30, 6);
    let (handle, addr) = start_server("server_live_fuzz", &emb(3, n, d), 100_000);
    let mut conn = TcpStream::connect(&addr).expect("connect");

    // Every shape of bad query the wire can carry, as decodable requests.
    let bad_requests = vec![
        Request::LookupBatch {
            tenant: "t".into(),
            ids: vec![n as u32 + 5],
        },
        Request::LookupBatch {
            tenant: "t".into(),
            ids: Vec::new(),
        },
        Request::NearestBatch {
            tenant: "t".into(),
            k: 0,
            queries: Mat::zeros(1, d),
        },
        Request::NearestBatch {
            tenant: "t".into(),
            k: 3,
            queries: Mat::zeros(1, d + 2),
        },
        Request::NearestBatch {
            tenant: "t".into(),
            k: 3,
            queries: Mat::zeros(0, d),
        },
        Request::LookupBatch {
            tenant: "nobody".into(),
            ids: vec![0],
        },
    ];
    for req in &bad_requests {
        let resp = wire::call(&mut conn, req).expect("call");
        assert!(
            resp.is_error(),
            "bad request answered OK: {req:?} -> {resp:?}"
        );
    }

    // Undecodable bodies: garbage bytes, truncations, bad version byte.
    let good = wire::encode_request(&Request::LookupBatch {
        tenant: "t".into(),
        ids: vec![0, 1],
    })
    .expect("encode");
    let mut bad_version = good.clone();
    bad_version[0] ^= 0xFF;
    let garbage: Vec<Vec<u8>> = vec![
        vec![0xDE, 0xAD, 0xBE, 0xEF],
        good[..good.len() - 3].to_vec(),
        bad_version,
        Vec::new(),
    ];
    for body in &garbage {
        wire::write_frame(&mut conn, body).expect("write");
        let frame = wire::read_frame(&mut conn)
            .expect("server must answer, not die")
            .expect("server must answer, not close");
        let resp = wire::decode_response(&frame).expect("decode");
        assert!(resp.is_error(), "garbage answered OK: {resp:?}");
    }

    // The same connection still serves well-formed queries afterwards.
    let resp = wire::call(
        &mut conn,
        &Request::LookupBatch {
            tenant: "t".into(),
            ids: vec![0, 1, 2],
        },
    )
    .expect("call after storm");
    assert!(!resp.is_error(), "server must recover: {resp:?}");
    match resp {
        Response::Rows(rows) => assert_eq!((rows.rows(), rows.cols()), (3, d)),
        other => panic!("expected rows, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn overload_degrades_to_typed_refusals_not_queue_collapse() {
    // max_pending = 0: every queued query is refused up front, so the
    // admission path itself is what answers — deterministically.
    let (handle, addr) = start_server("server_live_overload", &emb(4, 20, 4), 0);
    let mut conn = TcpStream::connect(&addr).expect("connect");
    let resp = wire::call(
        &mut conn,
        &Request::LookupBatch {
            tenant: "t".into(),
            ids: vec![0],
        },
    )
    .expect("call");
    match resp {
        Response::Error { code, .. } => assert_eq!(code, wire::ErrorCode::Overloaded),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Info bypasses the queue and still works under overload.
    let resp = wire::call(&mut conn, &Request::Info { tenant: "t".into() }).expect("info");
    match resp {
        Response::Info(info) => assert_eq!((info.vocab_size, info.dim), (20, 4)),
        other => panic!("expected info, got {other:?}"),
    }
    handle.shutdown();
}
