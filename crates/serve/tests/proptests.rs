//! Property tests for the serving layer's two load-bearing invariants:
//!
//! 1. the snapshot store's promote -> rollback cycle restores the previous
//!    live snapshot *bitwise*, including across a reopen from disk, and
//! 2. the gate's shared-clip quantization (the `quantize_pair` convention:
//!    the clip comes from the live side) makes gate scores deterministic
//!    across repeated evaluations — no hidden state, no fresh randomness.

use embedstab_embeddings::Embedding;
use embedstab_linalg::Mat;
use embedstab_pipeline::cache::scratch_dir;
use embedstab_quant::{quantize_pair, Precision};
use embedstab_serve::{SnapshotStore, StabilityGate};
use proptest::prelude::*;

/// A pair of same-shape embeddings with entries in `[-1, 1]`, plus a
/// precision from the paper's sweep.
type Scenario = ((usize, usize, u8), (Vec<f64>, Vec<f64>));

fn scenario() -> impl Strategy<Value = Scenario> {
    (6usize..14, 2usize..5, 0usize..5).prop_flat_map(|(n, d, pi)| {
        let bits = [1u8, 2, 4, 8, 32][pi];
        (
            Just((n, d, bits)),
            (
                collection::vec(-1.0f64..1.0, n * d),
                collection::vec(-1.0f64..1.0, n * d),
            ),
        )
    })
}

fn emb(n: usize, d: usize, data: Vec<f64>) -> Embedding {
    Embedding::new(Mat::from_vec(n, d, data))
}

fn bits_of(e: &Embedding) -> Vec<u64> {
    e.mat().as_slice().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn promote_rollback_round_trips_the_live_snapshot_bitwise(
        ((n, d, bits), (a, b)) in scenario(),
    ) {
        let dir = scratch_dir("serve_prop_rollback");
        std::fs::remove_dir_all(&dir).ok();
        let prec = Precision::new(bits);
        let first = emb(n, d, a);
        let second = emb(n, d, b);

        let mut store = SnapshotStore::open(&dir).expect("open");
        let v1 = store.publish(&first, prec, None).expect("v1");
        let before = store.live().expect("live").clone();
        store.publish(&second, prec, Some(0.1)).expect("v2");
        let back = store.rollback().expect("rollback");
        prop_assert_eq!(back, v1);
        let after = store.live().expect("live");
        prop_assert_eq!(after.meta(), before.meta());
        prop_assert_eq!(bits_of(after.embedding()), bits_of(before.embedding()));

        // The same must hold through the on-disk representation: a fresh
        // open sees the rolled-back live snapshot bitwise.
        let reopened = SnapshotStore::open(&dir).expect("reopen");
        let disk = reopened.live().expect("live");
        prop_assert_eq!(disk.meta(), before.meta());
        prop_assert_eq!(bits_of(disk.embedding()), bits_of(before.embedding()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_clip_gate_scores_are_deterministic(
        ((n, d, bits), (a, b)) in scenario(),
    ) {
        let dir = scratch_dir("serve_prop_gate");
        std::fs::remove_dir_all(&dir).ok();
        let prec = Precision::new(bits);
        let live_src = emb(n, d, a);
        let candidate = emb(n, d, b);

        let mut store = SnapshotStore::open(&dir).expect("open");
        store.publish(&live_src, prec, None).expect("publish");
        let live = store.live().expect("live");
        let gate = StabilityGate::new();

        let eval1 = gate.score(live, &candidate).expect("score");
        let eval2 = gate.score(live, &candidate).expect("score");
        prop_assert_eq!(
            eval1.predicted_instability.to_bits(),
            eval2.predicted_instability.to_bits()
        );
        prop_assert_eq!(&eval1.measures, &eval2.measures);
        prop_assert_eq!(bits_of(&eval1.quantized), bits_of(&eval2.quantized));

        // A third evaluation against the reloaded on-disk snapshot agrees
        // too: the clip rides in the metadata, not in process state.
        let reopened = SnapshotStore::open(&dir).expect("reopen");
        let eval3 = gate
            .score(reopened.live().expect("live"), &candidate)
            .expect("score");
        prop_assert_eq!(
            eval1.predicted_instability.to_bits(),
            eval3.predicted_instability.to_bits()
        );
        prop_assert_eq!(&eval1.measures, &eval3.measures);

        // The gate's quantization *is* quantize_pair's shared-clip
        // convention: quantizing the (live source, aligned candidate)
        // pair reproduces both the served snapshot and the scored
        // candidate bitwise.
        let (q_live, q_cand) = quantize_pair(&live_src, &eval1.aligned, prec);
        prop_assert_eq!(bits_of(&q_live.embedding), bits_of(live.embedding()));
        prop_assert_eq!(bits_of(&q_cand.embedding), bits_of(&eval1.quantized));
        std::fs::remove_dir_all(&dir).ok();
    }
}
