//! Multi-tenant serving: each tenant gets a configuration picked on its
//! memory-budget line, its own snapshot store, and stability-gated
//! retrain promotion under its [`Slo`].

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;

use embedstab_core::selection::{candidates_in_budget, pick_lowest_measure, ConfigPoint};
use embedstab_embeddings::Embedding;
use embedstab_quant::Precision;

use crate::gate::{GateEvaluation, Slo, StabilityGate};
use crate::snapshot::{Snapshot, SnapshotStore, Version};

/// One tenant: a named consumer of embeddings with a serving contract.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    slo: Slo,
    dim: usize,
    precision: Precision,
    store: SnapshotStore,
}

impl Tenant {
    /// The tenant's name (also its snapshot subdirectory).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's serving contract.
    pub fn slo(&self) -> &Slo {
        &self.slo
    }

    /// The embedding dimension the tenant serves.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The precision the tenant's snapshots are quantized to.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The tenant's snapshot store.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The tenant's live snapshot, if one has been published.
    pub fn live(&self) -> Option<&Snapshot> {
        self.store.live()
    }

    /// Submits a full-precision retrained candidate through the gate; see
    /// [`TenantRegistry::submit`].
    pub fn submit(
        &mut self,
        gate: &StabilityGate,
        candidate: &Embedding,
    ) -> io::Result<GateOutcome> {
        if candidate.dim() != self.dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "candidate dimension {} does not match tenant '{}' configuration (dim {})",
                    candidate.dim(),
                    self.name,
                    self.dim
                ),
            ));
        }
        let Some(live) = self.store.live() else {
            let version = self.store.publish(candidate, self.precision, None)?;
            return Ok(GateOutcome::Bootstrapped { version });
        };
        // A retrain on accumulated data can grow the vocabulary; the gate's
        // measures need row-aligned vocabularies, so a serving process must
        // reject (not crash on) such a candidate — the operator truncates
        // or re-bootstraps deliberately.
        if candidate.vocab_size() != live.meta().vocab_size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "candidate vocabulary {} does not match the live snapshot's {} for tenant \
                     '{}'; truncate to the shared vocabulary before submitting",
                    candidate.vocab_size(),
                    live.meta().vocab_size,
                    self.name
                ),
            ));
        }
        let evaluation = gate.score(live, candidate)?;
        if gate.admits(&evaluation, &self.slo) {
            let version = self.store.publish(
                &evaluation.aligned,
                self.precision,
                Some(evaluation.predicted_instability),
            )?;
            Ok(GateOutcome::Promoted {
                version,
                evaluation,
            })
        } else {
            Ok(GateOutcome::Held { evaluation })
        }
    }
}

/// What the gate did with a submitted candidate.
#[derive(Debug)]
pub enum GateOutcome {
    /// First publish for this tenant — nothing live to compare against.
    Bootstrapped {
        /// The version the candidate was published as.
        version: Version,
    },
    /// The candidate satisfied the SLO and is now live.
    Promoted {
        /// The version the candidate was published as.
        version: Version,
        /// The gate scores that admitted it.
        evaluation: GateEvaluation,
    },
    /// The candidate violated the SLO; the previous snapshot stays live.
    Held {
        /// The gate scores that rejected it.
        evaluation: GateEvaluation,
    },
}

impl GateOutcome {
    /// True unless the candidate was held.
    pub fn is_live(&self) -> bool {
        !matches!(self, GateOutcome::Held { .. })
    }

    /// The published version, if the candidate went live.
    pub fn version(&self) -> Option<Version> {
        match self {
            GateOutcome::Bootstrapped { version } | GateOutcome::Promoted { version, .. } => {
                Some(*version)
            }
            GateOutcome::Held { .. } => None,
        }
    }

    /// The gate evaluation, absent only for a bootstrap publish.
    pub fn evaluation(&self) -> Option<&GateEvaluation> {
        match self {
            GateOutcome::Bootstrapped { .. } => None,
            GateOutcome::Promoted { evaluation, .. } | GateOutcome::Held { evaluation } => {
                Some(evaluation)
            }
        }
    }
}

/// The registry of tenants sharing one gate and one root directory (each
/// tenant's snapshots live under `root/<name>/`).
pub struct TenantRegistry {
    root: PathBuf,
    gate: StabilityGate,
    tenants: BTreeMap<String, Tenant>,
}

impl TenantRegistry {
    /// Creates a registry rooted at `root` with a default
    /// [`StabilityGate`].
    pub fn new(root: impl Into<PathBuf>) -> Self {
        TenantRegistry {
            root: root.into(),
            gate: StabilityGate::new(),
            tenants: BTreeMap::new(),
        }
    }

    /// Replaces the shared gate (measure configuration applies to every
    /// tenant).
    pub fn with_gate(mut self, gate: StabilityGate) -> Self {
        self.gate = gate;
        self
    }

    /// The shared gate.
    pub fn gate(&self) -> &StabilityGate {
        &self.gate
    }

    /// Registers a tenant, picking its (dimension, precision) from the
    /// measured `candidates` that sit on the SLO's memory-budget line —
    /// the same [`candidates_in_budget`] + [`pick_lowest_measure`] ranking
    /// path `core::selection::budget_selection` evaluates offline (paper
    /// Section 5.2, Table 3), so the pick's oracle gap is exactly what
    /// that evaluation reports.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if the name is taken or no
    /// candidate sits on the budget line, and any I/O error from opening
    /// the tenant's snapshot store.
    pub fn register(
        &mut self,
        name: &str,
        slo: Slo,
        candidates: &[ConfigPoint],
    ) -> io::Result<&Tenant> {
        let on_line = candidates_in_budget(candidates, slo.memory_budget_bits);
        let pick = pick_lowest_measure(&on_line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "no candidate on the {} bits/word budget line for tenant '{name}'",
                    slo.memory_budget_bits
                ),
            )
        })?;
        let (dim, precision) = (pick.dim, Precision::new(pick.bits));
        self.register_config(name, slo, dim, precision)
    }

    /// Registers a tenant with an explicitly chosen configuration (for
    /// callers that ran no measurement sweep). The configuration must sit
    /// on the SLO's budget line (`dim * bits == memory_budget_bits`) —
    /// the invariant [`TenantRegistry::register`] guarantees by
    /// construction — so the recorded SLO never misstates what the tenant
    /// actually serves.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if the name is invalid or
    /// taken, or the configuration is off the SLO's budget line, and any
    /// I/O error from opening the tenant's snapshot store.
    pub fn register_config(
        &mut self,
        name: &str,
        slo: Slo,
        dim: usize,
        precision: Precision,
    ) -> io::Result<&Tenant> {
        if name.is_empty() || name.contains(['/', '\\']) || name == "." || name == ".." {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("tenant name '{name}' is not a valid snapshot subdirectory"),
            ));
        }
        if self.tenants.contains_key(name) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("tenant '{name}' is already registered"),
            ));
        }
        let footprint = embedstab_quant::bits_per_word(dim, precision);
        if footprint != slo.memory_budget_bits {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "configuration (dim={dim}, {precision}) serves {footprint} bits/word but \
                     tenant '{name}' declares a {} bits/word budget",
                    slo.memory_budget_bits
                ),
            ));
        }
        let store = SnapshotStore::open(self.root.join(name))?;
        let tenant = Tenant {
            name: name.to_string(),
            slo,
            dim,
            precision,
            store,
        };
        Ok(self.tenants.entry(name.to_string()).or_insert(tenant))
    }

    /// A registered tenant by name.
    pub fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenants.get(name)
    }

    /// Registered tenant names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.tenants.keys().map(String::as_str).collect()
    }

    /// Iterates over the registered tenants in name order — what a
    /// retraining service walks to learn which (dimension, precision)
    /// candidates it must produce each step.
    pub fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.values()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True if no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Submits a full-precision retrained candidate for a tenant. With no
    /// live snapshot the candidate bootstraps the store; otherwise the
    /// gate aligns and scores it against the live snapshot and either
    /// promotes it (SLO satisfied) or holds it (the live snapshot keeps
    /// serving).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::NotFound`] for an unknown tenant,
    /// [`io::ErrorKind::InvalidInput`] if the candidate's dimension (or,
    /// once a snapshot is live, its vocabulary) does not match the
    /// tenant's serving shape, and any I/O error from persisting a
    /// promoted snapshot.
    pub fn submit(&mut self, name: &str, candidate: &Embedding) -> io::Result<GateOutcome> {
        let tenant = self.tenants.get_mut(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("tenant '{name}' is not registered"),
            )
        })?;
        tenant.submit(&self.gate, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_linalg::Mat;
    use embedstab_pipeline::cache::scratch_dir;
    use rand::SeedableRng;

    fn emb(seed: u64, n: usize, d: usize) -> Embedding {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Embedding::new(Mat::random_normal(n, d, &mut rng))
    }

    fn pt(dim: usize, bits: u8, measure: f64, instability: f64) -> ConfigPoint {
        ConfigPoint {
            dim,
            bits,
            measure,
            instability,
        }
    }

    fn scratch(label: &str) -> PathBuf {
        let dir = scratch_dir(label);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn register_picks_on_the_budget_line() {
        let root = scratch("tenant_pick");
        let mut registry = TenantRegistry::new(&root);
        let candidates = vec![
            pt(8, 4, 0.2, 0.06),   // 32 bits/word
            pt(4, 8, 0.1, 0.08),   // 32 bits/word, lowest measure
            pt(16, 4, 0.05, 0.01), // 64 bits/word: off the line
        ];
        let slo = Slo {
            max_predicted_instability: 0.5,
            memory_budget_bits: 32,
        };
        let tenant = registry
            .register("shared", slo, &candidates)
            .expect("register");
        assert_eq!((tenant.dim(), tenant.precision().bits()), (4, 8));
        // No candidate on a 48-bit line.
        let err = registry
            .register("other", Slo::unbounded(48), &candidates)
            .expect_err("no candidates");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Duplicate names are rejected.
        let err = registry
            .register("shared", slo, &candidates)
            .expect_err("duplicate");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn submit_bootstraps_then_gates() {
        let root = scratch("tenant_submit");
        let mut registry = TenantRegistry::new(&root);
        registry
            .register_config(
                "t",
                Slo {
                    max_predicted_instability: 1e-6,
                    memory_budget_bits: 4 * 32,
                },
                4,
                Precision::FULL,
            )
            .expect("register");
        let base = emb(0, 25, 4);
        let boot = registry.submit("t", &base).expect("bootstrap");
        assert!(boot.is_live());
        assert!(boot.evaluation().is_none());
        assert_eq!(boot.version(), Some(Version(1)));
        // An identical retrain passes the (tight) SLO.
        let again = registry.submit("t", &base).expect("same");
        assert!(again.is_live());
        assert_eq!(again.version(), Some(Version(2)));
        // An unrelated retrain is held; live stays at v2.
        let held = registry.submit("t", &emb(9, 25, 4)).expect("noise");
        assert!(!held.is_live());
        assert!(held.evaluation().expect("scored").predicted_instability > 1e-6);
        let tenant = registry.tenant("t").expect("tenant");
        assert_eq!(tenant.live().expect("live").meta().version, Version(2));
        assert_eq!(tenant.store().len(), 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn off_budget_configuration_is_rejected() {
        let root = scratch("tenant_budget");
        let mut registry = TenantRegistry::new(&root);
        // (dim=16, b=8) serves 128 bits/word, not the declared 32.
        let err = registry
            .register_config("t", Slo::unbounded(32), 16, Precision::new(8))
            .expect_err("off the budget line");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        registry
            .register_config("t", Slo::unbounded(128), 16, Precision::new(8))
            .expect("on the budget line");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn path_escaping_tenant_names_are_rejected() {
        let root = scratch("tenant_names");
        let mut registry = TenantRegistry::new(&root);
        for bad in ["", "a/b", "..", "a\\b"] {
            let err = registry
                .register_config(bad, Slo::unbounded(32), 4, Precision::FULL)
                .expect_err("invalid name");
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "name {bad:?}");
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn mismatched_candidate_shapes_are_errors_not_panics() {
        let root = scratch("tenant_shapes");
        let mut registry = TenantRegistry::new(&root);
        registry
            .register_config("t", Slo::unbounded(128), 4, Precision::FULL)
            .expect("register");
        // Wrong dimension: rejected before anything is published.
        let err = registry.submit("t", &emb(0, 20, 5)).expect_err("bad dim");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Bootstrap, then a grown-vocabulary retrain: rejected, live kept.
        registry.submit("t", &emb(1, 20, 4)).expect("bootstrap");
        let err = registry.submit("t", &emb(2, 25, 4)).expect_err("bad vocab");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let tenant = registry.tenant("t").expect("tenant");
        assert_eq!(tenant.live().expect("live").meta().version, Version(1));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn unknown_tenant_is_not_found() {
        let root = scratch("tenant_missing");
        let mut registry = TenantRegistry::new(&root);
        let err = registry
            .submit("ghost", &emb(0, 4, 2))
            .expect_err("missing");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&root).ok();
    }
}
