//! The serving layer: stability-gated embedding snapshots behind a
//! multi-tenant API.
//!
//! The paper's motivating setting is production serving — embeddings are
//! retrained on accumulated data, and every retrain risks downstream
//! prediction churn (15% disagreement from 1% more data). Its central
//! result is that this churn can be *predicted cheaply* from
//! embedding-distance measures, without retraining a single downstream
//! model. This crate turns that result into an operational surface:
//!
//! - [`SnapshotStore`] — versioned, quantized embedding snapshots with
//!   atomic on-disk persistence, a live pointer, and rollback
//!   ([`snapshot`]).
//! - [`StabilityGate`] — when a retrained candidate arrives, align it to
//!   the live snapshot (Procrustes), quantize it with the live clip
//!   (the paper's shared-clip convention), score it with the pluggable
//!   measure suite (EIS / k-NN / PIP via
//!   [`MeasureSuite`](embedstab_core::measures::MeasureSuite)), and check
//!   the tenant's [`Slo`] ([`gate`]).
//! - [`TenantRegistry`] — per-tenant SLOs and snapshot stores; each
//!   tenant's (dimension, precision) is picked on its memory-budget line
//!   through the same `core::selection` ranking path the paper's Table 3
//!   evaluates ([`tenant`]).
//! - Batched query paths — [`Snapshot::lookup_batch`] and
//!   [`Snapshot::nearest_batch`] answer whole batches through the blocked
//!   GEMM kernel, with `try_` variants that degrade malformed input to a
//!   typed [`QueryError`] instead of panicking ([`snapshot`], [`error`]).
//! - The network front-end — a length-prefixed binary protocol
//!   ([`wire`]) and a threaded TCP server ([`server`]) that coalesces
//!   concurrently arriving queries per tenant into single batched calls,
//!   with hot snapshot promote/rollback and zero dropped in-flight
//!   queries (`embedstab_bench`'s `serve_front` binary runs it;
//!   `serve_loadgen` drives it).
//!
//! # Example
//!
//! ```no_run
//! use embedstab_core::selection::ConfigPoint;
//! use embedstab_embeddings::Embedding;
//! use embedstab_linalg::Mat;
//! use embedstab_serve::{Slo, TenantRegistry};
//!
//! // Measured offline (e.g. by an `Experiment` sweep): per-configuration
//! // measure values and observed instabilities.
//! let candidates = vec![
//!     ConfigPoint { dim: 8, bits: 4, measure: 0.2, instability: 0.06 },
//!     ConfigPoint { dim: 4, bits: 8, measure: 0.1, instability: 0.04 },
//! ];
//! let mut registry = TenantRegistry::new("serve-data");
//! let slo = Slo { max_predicted_instability: 0.15, memory_budget_bits: 32 };
//! registry.register("search", slo, &candidates).unwrap();
//!
//! // Month 0 bootstraps; later retrains are gated against the live
//! // snapshot and promoted only if the predicted instability fits the SLO.
//! let retrained = Embedding::new(Mat::zeros(100, 4));
//! let outcome = registry.submit("search", &retrained).unwrap();
//! assert!(outcome.is_live());
//! ```

pub mod error;
pub mod gate;
pub mod server;
pub mod snapshot;
pub mod tenant;
pub mod wire;

pub use error::QueryError;
pub use gate::{GateEvaluation, Slo, StabilityGate};
pub use server::{serve, ServeHandle, ServerConfig, TenantConfig};
pub use snapshot::{Snapshot, SnapshotMeta, SnapshotStore, Version, SNAPSHOT_FORMAT_VERSION};
pub use tenant::{GateOutcome, Tenant, TenantRegistry};
