//! The TCP front-end: a threaded server that answers [`wire`] requests
//! from per-tenant [`SnapshotStore`]s, coalescing concurrently arriving
//! queries into single batched GEMM calls.
//!
//! Architecture (thread-per-connection; epoll and a v2 protocol are
//! tracked ROADMAP headroom):
//!
//! - an **accept thread** takes connections and spawns one handler thread
//!   per connection;
//! - each **connection thread** reads frames, decodes requests, and
//!   enqueues jobs on the addressed tenant's batcher, writing responses
//!   back in request order;
//! - one **batcher thread per tenant** drains its queue — after the first
//!   job arrives it waits one bounded *batch window* so concurrent
//!   clients' queries pile up, then answers the whole pile with **one**
//!   [`Snapshot::try_lookup_batch`] / [`Snapshot::try_nearest_batch`]
//!   call riding the blocked GEMM kernel.
//!
//! Safety properties, all pinned by `tests/server_live.rs`:
//!
//! - **No panics on client bytes.** Every malformed frame, unknown
//!   tenant, out-of-range id, wrong-dimension query, `k = 0`, or empty
//!   batch becomes a [`wire::ErrorCode`] response. This is why the
//!   typed [`QueryError`] paths exist — the lint's `no-panic-in-hot-path`
//!   rule enforces it mechanically for this whole crate.
//! - **Admission.** Each tenant bounds its queued jobs
//!   ([`TenantConfig::max_pending`]); past it, requests are answered
//!   [`wire::ErrorCode::Overloaded`] immediately instead of growing the
//!   queue without bound — the latency half of the tenant's [`Slo`]
//!   under overload (the instability half is the gate's job at publish
//!   time).
//! - **Hot promote/rollback with zero dropped queries.** The live
//!   snapshot is an `Arc` swapped under a lock; every batch clones the
//!   `Arc` once at execution, so in-flight queries finish against the
//!   snapshot they started with while [`ServeHandle::promote`] /
//!   [`ServeHandle::rollback`] move the store and the pointer.
//!
//! [`Slo`]: crate::Slo

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use embedstab_embeddings::Embedding;
use embedstab_linalg::Mat;
use parking_lot::{Mutex, RwLock};

use crate::error::QueryError;
use crate::snapshot::{Snapshot, SnapshotStore, Version};
use crate::wire::{self, ErrorCode, Request, Response, SnapshotInfo};

/// Server-wide batching knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// How long a batcher waits after the first job arrives before
    /// executing, so concurrent queries coalesce. Zero drains immediately
    /// (no added latency, batching only what is already queued).
    pub batch_window: Duration,
    /// Maximum jobs coalesced into one batched call.
    pub max_batch: usize,
    /// Per-connection socket read/write timeouts. `None` (the default)
    /// blocks forever — fine for trusted clients; set it when a stalled
    /// or half-dead peer must not pin a handler thread indefinitely.
    pub io_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_window: Duration::from_micros(200),
            max_batch: 64,
            io_timeout: None,
        }
    }
}

/// One tenant served by the front-end.
#[derive(Debug)]
pub struct TenantConfig {
    /// The tenant's name on the wire.
    pub name: String,
    /// Its snapshot store; must have a live snapshot.
    pub store: SnapshotStore,
    /// Admission bound: queued-but-unanswered jobs past this are refused
    /// with [`ErrorCode::Overloaded`].
    pub max_pending: usize,
}

impl TenantConfig {
    /// A tenant with the default admission bound (1024 queued jobs).
    pub fn new(name: impl Into<String>, store: SnapshotStore) -> TenantConfig {
        TenantConfig {
            name: name.into(),
            store,
            max_pending: 1024,
        }
    }
}

enum JobKind {
    Lookup(Vec<u32>),
    Nearest { k: usize, queries: Mat },
}

struct Job {
    kind: JobKind,
    resp: Sender<Response>,
}

struct TenantState {
    live: RwLock<Arc<Snapshot>>,
    store: Mutex<SnapshotStore>,
    /// `None` once shutdown has begun; taking the sender is what lets the
    /// batcher thread's `recv` disconnect and exit.
    tx: Mutex<Option<Sender<Job>>>,
    pending: AtomicUsize,
    max_pending: usize,
}

struct Shared {
    tenants: BTreeMap<String, Arc<TenantState>>,
    addr: SocketAddr,
    io_timeout: Option<Duration>,
    shutdown: AtomicBool,
    ok_responses: AtomicU64,
    error_responses: AtomicU64,
}

/// A handle to a running server: address, live-traffic snapshot
/// promotion/rollback, response counters, shutdown. Cloneable; the server
/// runs until [`ServeHandle::shutdown`] (or process exit).
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// `(ok, error)` response counts served so far.
    pub fn response_counts(&self) -> (u64, u64) {
        (
            self.shared.ok_responses.load(Ordering::SeqCst),
            self.shared.error_responses.load(Ordering::SeqCst),
        )
    }

    fn tenant(&self, name: &str) -> io::Result<&Arc<TenantState>> {
        self.shared.tenants.get(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("tenant '{name}' is not served"),
            )
        })
    }

    /// Publishes `candidate` to the tenant's store (quantized at the
    /// tenant's serving precision) and hot-swaps it live. In-flight
    /// queries finish against the snapshot they started with; no query is
    /// dropped or errored by the swap.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] for an unknown tenant, plus any store
    /// publish error.
    pub fn promote(&self, tenant: &str, candidate: &Embedding) -> io::Result<Version> {
        let state = self.tenant(tenant)?;
        let mut store = state.store.lock();
        let precision = state.live.read().meta().precision;
        let version = store.publish(candidate, precision, None)?;
        let snap = live_arc(&store)?;
        *state.live.write() = snap;
        Ok(version)
    }

    /// Reverts the tenant to its previous promoted version and hot-swaps
    /// it live, with the same zero-drop guarantee as
    /// [`ServeHandle::promote`].
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] for an unknown tenant, plus any store
    /// rollback error (e.g. fewer than two promoted versions).
    pub fn rollback(&self, tenant: &str) -> io::Result<Version> {
        let state = self.tenant(tenant)?;
        let mut store = state.store.lock();
        let version = store.rollback()?;
        let snap = live_arc(&store)?;
        *state.live.write() = snap;
        Ok(version)
    }

    /// Stops accepting connections and disconnects the batchers. Handler
    /// threads finish their current request/response exchange; lingering
    /// connections end when their peers close.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for state in self.shared.tenants.values() {
            state.tx.lock().take();
        }
        // Unblock the accept loop with one throwaway connection.
        TcpStream::connect(self.shared.addr).ok();
    }
}

fn live_arc(store: &SnapshotStore) -> io::Result<Arc<Snapshot>> {
    match store.live() {
        Some(snap) => Ok(Arc::new(snap.clone())),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "snapshot store has no live snapshot",
        )),
    }
}

/// Starts the server on `listener` and returns immediately with a
/// [`ServeHandle`]; all serving happens on background threads.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] for duplicate tenant names or
/// a store with nothing live, and any error from reading the listener
/// address or spawning threads.
pub fn serve(
    listener: TcpListener,
    tenants: Vec<TenantConfig>,
    config: ServerConfig,
) -> io::Result<ServeHandle> {
    let addr = listener.local_addr()?;
    let mut states = BTreeMap::new();
    let mut batchers = Vec::new();
    for tenant in tenants {
        let live = live_arc(&tenant.store)?;
        let (tx, rx) = channel();
        let state = Arc::new(TenantState {
            live: RwLock::new(live),
            store: Mutex::new(tenant.store),
            tx: Mutex::new(Some(tx)),
            pending: AtomicUsize::new(0),
            max_pending: tenant.max_pending,
        });
        if states.insert(tenant.name.clone(), state.clone()).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("tenant '{}' configured twice", tenant.name),
            ));
        }
        batchers.push((tenant.name, state, rx));
    }
    let shared = Arc::new(Shared {
        tenants: states,
        addr,
        io_timeout: config.io_timeout,
        shutdown: AtomicBool::new(false),
        ok_responses: AtomicU64::new(0),
        error_responses: AtomicU64::new(0),
    });
    for (name, state, rx) in batchers {
        thread::Builder::new()
            .name(format!("batcher-{name}"))
            .spawn(move || batcher_loop(&state, &rx, config))?;
    }
    let accept_shared = shared.clone();
    thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    Ok(ServeHandle { shared })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // Frames are small and latency-bound; Nagle would stall every
        // response behind the peer's delayed ACK.
        stream.set_nodelay(true).ok();
        // A stalled peer surfaces as a read/write timeout in the handler
        // (which drops the connection) instead of pinning it forever.
        wire::set_io_timeouts(&stream, shared.io_timeout).ok();
        let shared = shared.clone();
        // A failed thread spawn drops the connection; the server lives on.
        thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || connection_loop(stream, &shared))
            .ok();
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        let body = match wire::read_frame(&mut stream) {
            Ok(Some(body)) => body,
            // Clean EOF: the client is done.
            Ok(None) => return,
            Err(e) => {
                // An oversize length prefix cannot be resynchronized:
                // answer Malformed (best effort) and drop the connection.
                if e.kind() == io::ErrorKind::InvalidData {
                    respond(
                        &mut stream,
                        shared,
                        Response::Error {
                            code: ErrorCode::Malformed,
                            message: e.to_string(),
                        },
                    );
                }
                return;
            }
        };
        let response = match wire::decode_request(&body) {
            // A malformed body does not desync the framing; answer the
            // error and keep the connection.
            None => Response::Error {
                code: ErrorCode::Malformed,
                message: "request body did not decode".into(),
            },
            Some(req) => dispatch(shared, req),
        };
        if !respond(&mut stream, shared, response) {
            return;
        }
    }
}

/// Writes one response, updating the counters. Returns false if the
/// client is gone.
fn respond(stream: &mut TcpStream, shared: &Arc<Shared>, response: Response) -> bool {
    let counter = if response.is_error() {
        &shared.error_responses
    } else {
        &shared.ok_responses
    };
    let Ok(body) = wire::encode_response(&response) else {
        // Unencodable response (count overflow): last-resort typed error.
        let fallback = Response::Error {
            code: ErrorCode::Internal,
            message: "response exceeded wire limits".into(),
        };
        shared.error_responses.fetch_add(1, Ordering::SeqCst);
        return match wire::encode_response(&fallback) {
            Ok(body) => wire::write_frame(stream, &body).is_ok(),
            Err(_) => false,
        };
    };
    counter.fetch_add(1, Ordering::SeqCst);
    wire::write_frame(stream, &body).is_ok()
}

fn dispatch(shared: &Arc<Shared>, req: Request) -> Response {
    let tenant_name = req.tenant().to_string();
    let Some(state) = shared.tenants.get(&tenant_name) else {
        return Response::Error {
            code: ErrorCode::UnknownTenant,
            message: format!("tenant '{tenant_name}' is not served here"),
        };
    };
    let kind = match req {
        Request::Info { .. } => {
            let snap = state.live.read().clone();
            let meta = snap.meta();
            return Response::Info(SnapshotInfo {
                version: meta.version.0,
                vocab_size: meta.vocab_size.min(u32::MAX as usize) as u32,
                dim: meta.dim.min(u32::MAX as usize) as u32,
                precision_bits: meta.precision.bits(),
            });
        }
        Request::LookupBatch { ids, .. } => JobKind::Lookup(ids),
        Request::NearestBatch { k, queries, .. } => JobKind::Nearest {
            k: k as usize,
            queries,
        },
    };
    // Admission: bound the tenant's queue, refusing (not queueing) the
    // excess so overload degrades to fast typed errors.
    if state.pending.fetch_add(1, Ordering::SeqCst) >= state.max_pending {
        state.pending.fetch_sub(1, Ordering::SeqCst);
        return Response::Error {
            code: ErrorCode::Overloaded,
            message: format!(
                "tenant '{tenant_name}' has {} queries pending (admission bound)",
                state.max_pending
            ),
        };
    }
    let (resp_tx, resp_rx) = channel();
    let sent = match &*state.tx.lock() {
        Some(tx) => tx
            .send(Job {
                kind,
                resp: resp_tx,
            })
            .is_ok(),
        None => false,
    };
    if !sent {
        state.pending.fetch_sub(1, Ordering::SeqCst);
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is shutting down".into(),
        };
    }
    match resp_rx.recv() {
        Ok(response) => response,
        Err(_) => Response::Error {
            code: ErrorCode::Internal,
            message: "batcher dropped the query".into(),
        },
    }
}

fn batcher_loop(state: &Arc<TenantState>, rx: &Receiver<Job>, config: ServerConfig) {
    loop {
        // Block for the first job; a disconnected channel is shutdown.
        let Ok(first) = rx.recv() else { return };
        // The bounded batch window: let concurrent clients' queries pile
        // up, then take everything queued (up to max_batch).
        if !config.batch_window.is_zero() {
            thread::sleep(config.batch_window);
        }
        let mut jobs = vec![first];
        while jobs.len() < config.max_batch.max(1) {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        state.pending.fetch_sub(jobs.len(), Ordering::SeqCst);
        run_batch(state, jobs);
    }
}

/// Validates each job against the snapshot, answers the invalid ones with
/// typed errors, and answers all valid ones through ONE coalesced
/// `try_lookup_batch` and ONE `try_nearest_batch` call.
fn run_batch(state: &Arc<TenantState>, jobs: Vec<Job>) {
    // One snapshot for the whole batch: a concurrent promote/rollback
    // swaps the Arc for *future* batches and never tears this one.
    let snap = state.live.read().clone();
    let meta = snap.meta();
    let mut lookups: Vec<(Vec<u32>, Sender<Response>)> = Vec::new();
    let mut nearests: Vec<(usize, Mat, Sender<Response>)> = Vec::new();
    for job in jobs {
        match job.kind {
            JobKind::Lookup(ids) => match validate_lookup(&ids, meta.vocab_size) {
                Ok(()) => lookups.push((ids, job.resp)),
                Err(e) => {
                    job.resp.send(Response::from(e)).ok();
                }
            },
            JobKind::Nearest { k, queries } => match validate_nearest(&queries, k, meta.dim) {
                Ok(()) => nearests.push((k, queries, job.resp)),
                Err(e) => {
                    job.resp.send(Response::from(e)).ok();
                }
            },
        }
    }
    if !lookups.is_empty() {
        let all_ids: Vec<u32> = lookups
            .iter()
            .flat_map(|(ids, _)| ids.iter().copied())
            .collect();
        match snap.try_lookup_batch(&all_ids) {
            Ok(rows) => {
                let dim = meta.dim;
                let mut start = 0usize;
                for (ids, resp) in lookups {
                    let cnt = ids.len();
                    let data = rows.as_slice()[start * dim..(start + cnt) * dim].to_vec();
                    start += cnt;
                    // Fallible split: a shape mismatch here is a server
                    // bug, but it must fail the job, not the process.
                    let reply = match Mat::try_from_vec(cnt, dim, data) {
                        Some(m) => Response::Rows(m),
                        None => Response::Error {
                            code: ErrorCode::Internal,
                            message: "batch split produced a malformed row block".into(),
                        },
                    };
                    resp.send(reply).ok();
                }
            }
            // Unreachable after per-job validation, but a coalesced
            // failure must fail the jobs, not the process.
            Err(e) => {
                for (_, resp) in lookups {
                    resp.send(Response::from(e.clone())).ok();
                }
            }
        }
    }
    if !nearests.is_empty() {
        let dim = meta.dim;
        let total_rows: usize = nearests.iter().map(|(_, q, _)| q.rows()).sum();
        let mut data = Vec::with_capacity(total_rows * dim);
        for (_, queries, _) in &nearests {
            data.extend_from_slice(queries.as_slice());
        }
        let Some(coalesced) = Mat::try_from_vec(total_rows, dim, data) else {
            for (.., resp) in nearests {
                resp.send(Response::Error {
                    code: ErrorCode::Internal,
                    message: "coalesced query block has a malformed shape".into(),
                })
                .ok();
            }
            return;
        };
        let k_max = nearests.iter().map(|&(k, ..)| k).max().unwrap_or(1);
        match snap.try_nearest_batch(&coalesced, k_max) {
            Ok(per_query) => {
                // Split the answers back out, trimming each request to its
                // own k (a k_max prefix truncated to k equals the k answer:
                // the ranking is total and deterministic).
                let mut answers = per_query.into_iter();
                for (k, queries, resp) in nearests {
                    let mut mine: Vec<Vec<(u32, f64)>> =
                        answers.by_ref().take(queries.rows()).collect();
                    for neighbors in &mut mine {
                        neighbors.truncate(k);
                    }
                    resp.send(Response::Neighbors(mine)).ok();
                }
            }
            Err(e) => {
                for (.., resp) in nearests {
                    resp.send(Response::from(e.clone())).ok();
                }
            }
        }
    }
}

fn validate_lookup(ids: &[u32], vocab_size: usize) -> Result<(), QueryError> {
    if ids.is_empty() {
        return Err(QueryError::EmptyBatch);
    }
    for &id in ids {
        if (id as usize) >= vocab_size {
            return Err(QueryError::IdOutOfRange { id, vocab_size });
        }
    }
    Ok(())
}

fn validate_nearest(queries: &Mat, k: usize, dim: usize) -> Result<(), QueryError> {
    if queries.cols() != dim {
        return Err(QueryError::DimMismatch {
            got: queries.cols(),
            expected: dim,
        });
    }
    if queries.rows() == 0 {
        return Err(QueryError::EmptyBatch);
    }
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    Ok(())
}
