//! The stability gate: score a retrained candidate against the live
//! snapshot *before* promoting it, using the paper's embedding-distance
//! measures instead of retraining downstream models.
//!
//! This is the serving-side use of the paper's central result: downstream
//! prediction churn between two embeddings can be predicted cheaply from
//! the embeddings alone (Section 4, Table 1). The gate follows the
//! paper's pair-comparison protocol — align the candidate to the live
//! snapshot with orthogonal Procrustes, quantize it with the clip
//! threshold *shared from the live side* (Appendix C.2's convention, the
//! one [`quantize_pair`](embedstab_quant::quantize_pair) implements for
//! offline pairs), then run the [`MeasureSuite`] — and compares the
//! gating measure against the tenant's [`Slo`].
//!
//! One deliberate difference from the offline `Experiment` sweep: the
//! sweep anchors EIS on the highest-dimensional full-precision pair and
//! scores the top-m most frequent words, while the gate has only the live
//! snapshot to anchor on, so it references the (live, candidate) pair
//! itself over the full served vocabulary. Gate scores therefore track
//! sweep measures but are not on an identical numeric scale — calibrate
//! [`Slo::max_predicted_instability`] against observed *gate* scores
//! (e.g. dry-run a known-good retrain and set the ceiling with headroom
//! above its score) rather than copying sweep values verbatim.
//!
//! Because the live snapshot, its stored clip, and every measure are
//! deterministic, scoring the same candidate twice gives bitwise-identical
//! results (the `serve` proptests pin this).

use std::io;

use embedstab_core::measures::{
    overlap_distance_from_bases, DistanceMeasure, EisMeasure, KnnMeasure, MeasureKind,
    MeasureValues, PipLoss, SemanticDisplacement, SvdMethod,
};
use embedstab_embeddings::Embedding;
use embedstab_quant::quantize;

use crate::snapshot::Snapshot;

/// A tenant's serving contract: how much instability each retrain may
/// introduce, and how much memory the served snapshot may use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slo {
    /// Ceiling on the gate's predicted instability (the gating measure's
    /// value, e.g. EIS) for a candidate to be promoted.
    pub max_predicted_instability: f64,
    /// Memory budget in bits/word; the tenant registry picks the
    /// (dimension, precision) candidate on exactly this budget line.
    pub memory_budget_bits: u64,
}

impl Slo {
    /// An SLO that promotes every candidate — useful when the gate is run
    /// for its scores only (e.g. monitoring churn without blocking).
    pub fn unbounded(memory_budget_bits: u64) -> Slo {
        Slo {
            max_predicted_instability: f64::INFINITY,
            memory_budget_bits,
        }
    }
}

/// The result of scoring one candidate against the live snapshot.
#[derive(Clone, Debug)]
pub struct GateEvaluation {
    /// All five embedding distance measures over the (live, candidate)
    /// pair, computed by the shared [`MeasureSuite`].
    pub measures: MeasureValues,
    /// The gating measure's value — what the SLO is checked against.
    pub predicted_instability: f64,
    /// The candidate aligned to the live snapshot (full precision); this
    /// is what gets published if the gate admits it.
    pub aligned: Embedding,
    /// The aligned candidate quantized with the live snapshot's clip (the
    /// shared-clip convention) — the pair `(live, quantized)` is what the
    /// measures scored, and what downstream churn monitoring should
    /// compare.
    pub quantized: Embedding,
}

/// Scores candidates against live snapshots with the pluggable measure
/// suite. One gate is shared by every tenant of a registry; it holds only
/// measure configuration, no per-tenant state.
#[derive(Clone, Debug)]
pub struct StabilityGate {
    alpha: f64,
    knn_k: usize,
    knn_queries: usize,
    seed: u64,
    svd: SvdMethod,
    gating: MeasureKind,
}

impl Default for StabilityGate {
    fn default() -> Self {
        StabilityGate {
            alpha: 3.0,
            knn_k: 5,
            knn_queries: 1000,
            seed: 0,
            svd: SvdMethod::Auto,
            gating: MeasureKind::Eis,
        }
    }
}

impl StabilityGate {
    /// A gate at the paper's defaults: EIS gating with `alpha = 3`, k-NN
    /// at `k = 5` over 1000 queries (capped at the vocabulary), the
    /// auto-dispatched SVD backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the SVD backend behind the eigenspace measures (the
    /// integration tests pin `Exact` vs the default [`SvdMethod::Auto`]).
    pub fn with_svd_method(mut self, svd: SvdMethod) -> Self {
        self.svd = svd;
        self
    }

    /// Gates on a different measure than EIS (e.g. [`MeasureKind::Knn`],
    /// the paper's runner-up selector).
    pub fn with_gating_measure(mut self, kind: MeasureKind) -> Self {
        self.gating = kind;
        self
    }

    /// Overrides the EIS eigenvalue exponent (paper default 3).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the k-NN measure configuration.
    pub fn with_knn(mut self, k: usize, queries: usize) -> Self {
        self.knn_k = k;
        self.knn_queries = queries;
        self
    }

    /// Overrides the query-sampling seed shared by the measures.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The measure the SLO is checked against.
    pub fn gating_measure(&self) -> MeasureKind {
        self.gating
    }

    /// Scores a full-precision retrained `candidate` against the live
    /// snapshot: align (Procrustes), quantize with the live clip
    /// (shared-clip convention), compute all five measures.
    ///
    /// Each side is decomposed exactly once with the configured SVD
    /// backend; the decomposition feeds both the EIS references and the
    /// eigenspace bases (this is the serving hot path, so the redundant
    /// SVDs `MeasureSuite::new` + `compute_all` would spend on a
    /// self-referenced pair are avoided).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if the candidate's shape
    /// differs from the live snapshot's (the same taxonomy
    /// [`TenantRegistry::submit`](crate::TenantRegistry::submit) reports;
    /// a serving process must reject such a candidate, not crash on it).
    pub fn score(&self, live: &Snapshot, candidate: &Embedding) -> io::Result<GateEvaluation> {
        if candidate.shape() != live.embedding().shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "candidate shape {:?} must match the live snapshot's {:?}",
                    candidate.shape(),
                    live.embedding().shape()
                ),
            ));
        }
        let aligned = candidate.align_to(live.embedding());
        let q = quantize(&aligned, live.meta().precision, live.meta().clip);
        let svd_live = live.embedding().mat().svd_with(self.svd);
        let svd_cand = q.embedding.mat().svd_with(self.svd);
        // Rank truncation matches `left_singular_basis_with`'s tolerance.
        let u_live = svd_live.u_rank(1e-10);
        let u_cand = svd_cand.u_rank(1e-10);
        let eis = EisMeasure::from_reference_svds(
            &svd_live,
            &svd_cand,
            live.meta().vocab_size,
            self.alpha,
        );
        let knn = KnnMeasure::new(self.knn_k, self.knn_queries, self.seed);
        let measures = MeasureValues {
            eis: eis.distance_from_bases(&u_live, &u_cand),
            knn_dist: knn.distance(live.embedding(), &q.embedding),
            semantic_displacement: SemanticDisplacement.distance(live.embedding(), &q.embedding),
            pip_loss: PipLoss.distance(live.embedding(), &q.embedding),
            overlap_dist: overlap_distance_from_bases(&u_live, &u_cand),
        };
        Ok(GateEvaluation {
            predicted_instability: measures.get(self.gating),
            measures,
            aligned,
            quantized: q.embedding,
        })
    }

    /// Whether an evaluation satisfies the SLO (promote) or not (hold).
    pub fn admits(&self, evaluation: &GateEvaluation, slo: &Slo) -> bool {
        evaluation.predicted_instability <= slo.max_predicted_instability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_linalg::Mat;
    use embedstab_pipeline::cache::scratch_dir;
    use embedstab_quant::Precision;
    use rand::SeedableRng;

    use crate::snapshot::SnapshotStore;

    fn emb(seed: u64, n: usize, d: usize) -> Embedding {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Embedding::new(Mat::random_normal(n, d, &mut rng))
    }

    fn live_store(label: &str, base: &Embedding, prec: Precision) -> SnapshotStore {
        let dir = scratch_dir(label);
        std::fs::remove_dir_all(&dir).ok();
        let mut store = SnapshotStore::open(&dir).expect("open");
        store.publish(base, prec, None).expect("publish");
        store
    }

    #[test]
    fn identical_candidate_scores_near_zero_and_noise_scores_higher() {
        let base = emb(0, 40, 6);
        let store = live_store("gate_scores", &base, Precision::FULL);
        let live = store.live().expect("live");
        let gate = StabilityGate::new();
        let same = gate.score(live, &base).expect("score");
        assert!(
            same.predicted_instability < 1e-6,
            "identical retrain must score ~0, got {}",
            same.predicted_instability
        );
        let noisy = gate.score(live, &emb(99, 40, 6)).expect("score");
        assert!(
            noisy.predicted_instability > same.predicted_instability,
            "an unrelated retrain must score higher"
        );
        // The SLO line separates them.
        let slo = Slo {
            max_predicted_instability: (same.predicted_instability + noisy.predicted_instability)
                / 2.0,
            memory_budget_bits: 6 * 32,
        };
        assert!(gate.admits(&same, &slo));
        assert!(!gate.admits(&noisy, &slo));
        assert!(gate.admits(&noisy, &Slo::unbounded(6 * 32)));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn quantized_candidate_shares_the_live_clip() {
        let base = emb(1, 30, 4);
        let prec = Precision::new(4);
        let store = live_store("gate_clip", &base, prec);
        let live = store.live().expect("live");
        let gate = StabilityGate::new();
        let eval = gate.score(live, &emb(2, 30, 4)).expect("score");
        // Every quantized value sits on the live clip's uniform levels.
        let clip = live.meta().clip.expect("quantized snapshot has a clip");
        for &v in eval.quantized.mat().as_slice() {
            let requantized = embedstab_quant::quantize_value(v, clip, prec);
            assert_eq!(requantized.to_bits(), v.to_bits());
        }
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn explicit_svd_backend_agrees_with_auto() {
        let base = emb(3, 50, 5);
        let store = live_store("gate_svd", &base, Precision::FULL);
        let live = store.live().expect("live");
        let auto = StabilityGate::new()
            .score(live, &emb(4, 50, 5))
            .expect("score");
        let exact = StabilityGate::new()
            .with_svd_method(SvdMethod::Exact)
            .score(live, &emb(4, 50, 5))
            .expect("score");
        assert!((auto.predicted_instability - exact.predicted_instability).abs() < 1e-6);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let base = emb(5, 20, 4);
        let store = live_store("gate_shape", &base, Precision::FULL);
        let gate = StabilityGate::new();
        let err = gate
            .score(store.live().expect("live"), &emb(6, 20, 5))
            .expect_err("mismatched candidate shape must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
