//! The serving wire protocol: a vendored-only, length-prefixed binary
//! framing for snapshot queries over TCP.
//!
//! Everything is little-endian and length-checked, built on the same
//! [`embedstab_corpus::codec`] primitives as the cache file families — a
//! truncated or inconsistent frame decodes to `None`, never a panic or an
//! unbounded allocation, because every byte here is client-controlled.
//!
//! # Frame layout
//!
//! ```text
//! frame    := len: u32 (LE, body length, <= MAX_FRAME_BYTES) body
//! request  := version: u8 (= WIRE_VERSION)
//!             op: u8 (1 = LookupBatch, 2 = NearestBatch, 3 = Info)
//!             tenant_len: u16, tenant: utf8 bytes
//!             payload
//!   LookupBatch payload  := n: u32, n x id: u32
//!   NearestBatch payload := k: u32, queries: mat
//!   Info payload         := (empty)
//! response := version: u8 (= WIRE_VERSION)
//!             status: u8 (0 = ok, 1 = error)
//!   ok payload (LookupBatch)  := tag 1, rows: mat
//!   ok payload (NearestBatch) := tag 2, n: u32,
//!                                n x [cnt: u32, cnt x (id: u32, sim: f64)]
//!   ok payload (Info)         := tag 3, version: u64, vocab: u32,
//!                                dim: u32, precision_bits: u8
//!   error payload             := code: u16, msg_len: u32, msg: utf8
//! mat      := rows: u32, cols: u32, rows*cols x f64 (raw LE bits)
//! ```
//!
//! `f64`s travel as raw bit patterns (like the pair cache), so a looked-up
//! vector arrives bitwise identical to [`Snapshot::lookup`] on the server
//! — the serving layer's bitwise-reproducibility guarantee extends across
//! the wire.
//!
//! [`Snapshot::lookup`]: crate::Snapshot::lookup

use std::io::{self, Read, Write};

use embedstab_corpus::codec::{
    put_f64, put_mat, put_u32, put_u64, take_f64, take_mat, take_u32, take_u64,
};
use embedstab_linalg::Mat;

use crate::error::QueryError;

/// Protocol version byte leading every request and response body; a peer
/// speaking a different version is rejected as malformed rather than
/// misread.
pub const WIRE_VERSION: u8 = 1;

/// Hard ceiling on one frame's body size (16 MiB). A length prefix past
/// this is rejected before any allocation — the framing equivalent of
/// [`take_len`]'s refusal to trust a corrupt length.
pub const MAX_FRAME_BYTES: usize = 1 << 24;

const OP_LOOKUP_BATCH: u8 = 1;
const OP_NEAREST_BATCH: u8 = 2;
const OP_INFO: u8 = 3;

const STATUS_OK: u8 = 0;
const STATUS_ERROR: u8 = 1;

/// One client request: which tenant, which batched query path.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Fetch the vectors for a batch of word ids (one
    /// [`Snapshot::try_lookup_batch`](crate::Snapshot::try_lookup_batch)
    /// on the server, possibly coalesced with other clients' ids).
    LookupBatch {
        /// The tenant whose live snapshot answers.
        tenant: String,
        /// The word ids to fetch.
        ids: Vec<u32>,
    },
    /// Fetch the `k` nearest words for each query vector (one
    /// [`Snapshot::try_nearest_batch`](crate::Snapshot::try_nearest_batch)
    /// on the server, possibly coalesced).
    NearestBatch {
        /// The tenant whose live snapshot answers.
        tenant: String,
        /// Neighbors requested per query.
        k: u32,
        /// Query vectors, one per row.
        queries: Mat,
    },
    /// Fetch the live snapshot's shape and version (what a load generator
    /// needs to construct valid queries).
    Info {
        /// The tenant to describe.
        tenant: String,
    },
}

impl Request {
    /// The tenant the request addresses.
    pub fn tenant(&self) -> &str {
        match self {
            Request::LookupBatch { tenant, .. }
            | Request::NearestBatch { tenant, .. }
            | Request::Info { tenant } => tenant,
        }
    }
}

/// The live snapshot's shape, as reported by [`Request::Info`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The live snapshot's store-assigned version number.
    pub version: u64,
    /// Vocabulary size (valid word ids are `0..vocab_size`).
    pub vocab_size: u32,
    /// Embedding dimension (query vectors must have this many columns).
    pub dim: u32,
    /// The precision the snapshot is quantized to, in bits.
    pub precision_bits: u8,
}

/// One server response: the query's answer, or a typed error.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::LookupBatch`]: one row per requested id,
    /// bitwise identical to a server-side `lookup`.
    Rows(Mat),
    /// Answer to [`Request::NearestBatch`]: per query, the `k` nearest
    /// `(word id, cosine similarity)` pairs, descending.
    Neighbors(Vec<Vec<(u32, f64)>>),
    /// Answer to [`Request::Info`].
    Info(SnapshotInfo),
    /// The request could not be answered; the connection stays usable.
    Error {
        /// The error taxonomy entry.
        code: ErrorCode,
        /// Human-readable detail (mirrors the server-side error Display).
        message: String,
    },
}

impl Response {
    /// True for the `Error` variant.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }
}

/// The wire error taxonomy: protocol-level failures plus the
/// [`QueryError`] variants, one code each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame body did not decode as a request (bad version, bad op,
    /// truncated payload, non-UTF-8 tenant, trailing bytes).
    Malformed = 1,
    /// The named tenant is not served by this process.
    UnknownTenant = 2,
    /// The tenant's admission bound was hit; retry later.
    Overloaded = 3,
    /// A word id at or past the snapshot's vocabulary size.
    IdOutOfRange = 4,
    /// Query vectors whose dimension differs from the snapshot's.
    DimMismatch = 5,
    /// A batch with no ids / no query rows.
    EmptyBatch = 6,
    /// A nearest-neighbor request with `k = 0`.
    ZeroK = 7,
    /// The server failed internally; the query was not answered.
    Internal = 8,
    /// The server is shutting down and no longer accepts queries.
    ShuttingDown = 9,
}

impl ErrorCode {
    /// The on-wire discriminant. A match, not an `as` cast, so the
    /// codec-encoder lint's no-unchecked-narrowing rule holds trivially
    /// (and a new variant without a code is a compile error here).
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownTenant => 2,
            ErrorCode::Overloaded => 3,
            ErrorCode::IdOutOfRange => 4,
            ErrorCode::DimMismatch => 5,
            ErrorCode::EmptyBatch => 6,
            ErrorCode::ZeroK => 7,
            ErrorCode::Internal => 8,
            ErrorCode::ShuttingDown => 9,
        }
    }

    fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownTenant,
            3 => ErrorCode::Overloaded,
            4 => ErrorCode::IdOutOfRange,
            5 => ErrorCode::DimMismatch,
            6 => ErrorCode::EmptyBatch,
            7 => ErrorCode::ZeroK,
            8 => ErrorCode::Internal,
            9 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

impl From<&QueryError> for ErrorCode {
    fn from(e: &QueryError) -> ErrorCode {
        match e {
            QueryError::IdOutOfRange { .. } => ErrorCode::IdOutOfRange,
            QueryError::DimMismatch { .. } => ErrorCode::DimMismatch,
            QueryError::EmptyBatch => ErrorCode::EmptyBatch,
            QueryError::ZeroK => ErrorCode::ZeroK,
        }
    }
}

impl From<QueryError> for Response {
    fn from(e: QueryError) -> Response {
        Response::Error {
            code: ErrorCode::from(&e),
            message: e.to_string(),
        }
    }
}

fn oversize(len: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("frame body of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte frame limit"),
    )
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] if `body` exceeds
/// [`MAX_FRAME_BYTES`], or any transport error from `w`.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME_BYTES {
        return Err(oversize(body.len()));
    }
    let len = u32::try_from(body.len()).map_err(|_| oversize(body.len()))?;
    // One contiguous write: a separate 4-byte prefix write would become
    // its own TCP segment, and Nagle + delayed-ACK turns that into tens
    // of milliseconds of added round-trip per frame.
    let mut framed = Vec::with_capacity(4 + body.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(body);
    w.write_all(&framed)?;
    w.flush()
}

/// Reads one length-prefixed frame body. `Ok(None)` is a clean EOF (the
/// peer closed between frames); a length prefix past [`MAX_FRAME_BYTES`]
/// is [`io::ErrorKind::InvalidData`] *before* any allocation, because the
/// stream can no longer be resynchronized after an untrusted length.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(oversize(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Reads a `u32` count, refusing counts the remaining input cannot
/// possibly hold (`elem_size` bytes per element) — the frame-local
/// analogue of [`embedstab_corpus::codec::take_len`], which uses `u64`
/// prefixes in the cache files.
fn take_count(r: &mut &[u8], elem_size: usize) -> Option<usize> {
    let n = take_u32(r)? as usize;
    if r.len() < n.checked_mul(elem_size)? {
        return None;
    }
    Some(n)
}

fn put_tenant(out: &mut Vec<u8>, tenant: &str) -> io::Result<()> {
    let len = u16::try_from(tenant.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "tenant name of {} bytes exceeds the u16 length field",
                tenant.len()
            ),
        )
    })?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(tenant.as_bytes());
    Ok(())
}

fn take_tenant(r: &mut &[u8]) -> Option<String> {
    let (head, rest) = r.split_first_chunk::<2>()?;
    *r = rest;
    let len = u16::from_le_bytes(*head) as usize;
    if r.len() < len {
        return None;
    }
    let name = std::str::from_utf8(&r[..len]).ok()?.to_string();
    *r = &r[len..];
    Some(name)
}

/// Encodes a request body (frame it with [`write_frame`]).
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] if a length field overflows
/// its wire width (tenant names past `u16`, id batches past `u32`).
pub fn encode_request(req: &Request) -> io::Result<Vec<u8>> {
    let mut out = vec![WIRE_VERSION];
    match req {
        Request::LookupBatch { tenant, ids } => {
            out.push(OP_LOOKUP_BATCH);
            put_tenant(&mut out, tenant)?;
            let n = u32::try_from(ids.len()).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{} ids exceed the u32 count field", ids.len()),
                )
            })?;
            put_u32(&mut out, n);
            for &id in ids {
                put_u32(&mut out, id);
            }
        }
        Request::NearestBatch { tenant, k, queries } => {
            out.push(OP_NEAREST_BATCH);
            put_tenant(&mut out, tenant)?;
            put_u32(&mut out, *k);
            put_mat(&mut out, queries);
        }
        Request::Info { tenant } => {
            out.push(OP_INFO);
            put_tenant(&mut out, tenant)?;
        }
    }
    Ok(out)
}

/// Decodes a request body. Any truncation, version/op mismatch, bad
/// UTF-8, or trailing bytes is `None` — the server answers
/// [`ErrorCode::Malformed`], never panics.
pub fn decode_request(mut body: &[u8]) -> Option<Request> {
    let r = &mut body;
    let (head, rest) = r.split_first_chunk::<2>()?;
    *r = rest;
    let [version, op] = *head;
    if version != WIRE_VERSION {
        return None;
    }
    let tenant = take_tenant(r)?;
    let req = match op {
        OP_LOOKUP_BATCH => {
            let n = take_count(r, 4)?;
            let ids: Vec<u32> = (0..n).map(|_| take_u32(r)).collect::<Option<_>>()?;
            Request::LookupBatch { tenant, ids }
        }
        OP_NEAREST_BATCH => {
            let k = take_u32(r)?;
            let queries = take_mat(r)?;
            Request::NearestBatch { tenant, k, queries }
        }
        OP_INFO => Request::Info { tenant },
        _ => return None,
    };
    if !r.is_empty() {
        return None;
    }
    Some(req)
}

/// Encodes a response body (frame it with [`write_frame`]).
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] if a count overflows its `u32`
/// wire field.
pub fn encode_response(resp: &Response) -> io::Result<Vec<u8>> {
    fn count_u32(n: usize, what: &str) -> io::Result<u32> {
        u32::try_from(n).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{n} {what} exceed the u32 count field"),
            )
        })
    }
    let mut out = vec![WIRE_VERSION];
    match resp {
        Response::Rows(rows) => {
            out.push(STATUS_OK);
            out.push(OP_LOOKUP_BATCH);
            put_mat(&mut out, rows);
        }
        Response::Neighbors(per_query) => {
            out.push(STATUS_OK);
            out.push(OP_NEAREST_BATCH);
            put_u32(&mut out, count_u32(per_query.len(), "queries")?);
            for neighbors in per_query {
                put_u32(&mut out, count_u32(neighbors.len(), "neighbors")?);
                for &(id, sim) in neighbors {
                    put_u32(&mut out, id);
                    put_f64(&mut out, sim);
                }
            }
        }
        Response::Info(info) => {
            out.push(STATUS_OK);
            out.push(OP_INFO);
            put_u64(&mut out, info.version);
            put_u32(&mut out, info.vocab_size);
            put_u32(&mut out, info.dim);
            out.push(info.precision_bits);
        }
        Response::Error { code, message } => {
            out.push(STATUS_ERROR);
            out.extend_from_slice(&code.to_u16().to_le_bytes());
            // Truncate pathological messages instead of failing the send
            // (an error response must always be deliverable), backing off
            // to the nearest char boundary so the slice cannot panic.
            let mut cut = message.len().min(u16::MAX as usize);
            while cut > 0 && !message.is_char_boundary(cut) {
                cut -= 1;
            }
            let msg = &message[..cut];
            put_u32(&mut out, count_u32(msg.len(), "message bytes")?);
            out.extend_from_slice(msg.as_bytes());
        }
    }
    Ok(out)
}

/// Decodes a response body; `None` on any truncation or inconsistency.
pub fn decode_response(mut body: &[u8]) -> Option<Response> {
    let r = &mut body;
    let (head, rest) = r.split_first_chunk::<2>()?;
    *r = rest;
    let [version, status] = *head;
    if version != WIRE_VERSION {
        return None;
    }
    let resp = match status {
        STATUS_OK => {
            let (tag, rest) = r.split_first()?;
            *r = rest;
            match *tag {
                OP_LOOKUP_BATCH => Response::Rows(take_mat(r)?),
                OP_NEAREST_BATCH => {
                    let n = take_count(r, 4)?;
                    let per_query: Vec<Vec<(u32, f64)>> = (0..n)
                        .map(|_| {
                            let cnt = take_count(r, 12)?;
                            (0..cnt)
                                .map(|_| Some((take_u32(r)?, take_f64(r)?)))
                                .collect::<Option<Vec<_>>>()
                        })
                        .collect::<Option<_>>()?;
                    Response::Neighbors(per_query)
                }
                OP_INFO => {
                    let version = take_u64(r)?;
                    let vocab_size = take_u32(r)?;
                    let dim = take_u32(r)?;
                    let (bits, rest) = r.split_first()?;
                    *r = rest;
                    Response::Info(SnapshotInfo {
                        version,
                        vocab_size,
                        dim,
                        precision_bits: *bits,
                    })
                }
                _ => return None,
            }
        }
        STATUS_ERROR => {
            let (head, rest) = r.split_first_chunk::<2>()?;
            *r = rest;
            let code = ErrorCode::from_u16(u16::from_le_bytes(*head))?;
            let len = take_count(r, 1)?;
            let message = std::str::from_utf8(&r[..len]).ok()?.to_string();
            *r = &r[len..];
            Response::Error { code, message }
        }
        _ => return None,
    };
    if !r.is_empty() {
        return None;
    }
    Some(resp)
}

/// One synchronous request/response exchange over a framed transport —
/// the client half of the protocol, shared by the load generator and the
/// integration tests.
///
/// # Errors
///
/// Any transport error, plus [`io::ErrorKind::UnexpectedEof`] if the peer
/// closed before responding and [`io::ErrorKind::InvalidData`] if the
/// response does not decode.
pub fn call(stream: &mut (impl Read + Write), req: &Request) -> io::Result<Response> {
    write_frame(stream, &encode_request(req)?)?;
    let body = read_frame(stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        )
    })?;
    decode_response(&body)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "undecodable response frame"))
}

/// Applies one read/write timeout pair to a TCP stream (`None` restores
/// fully blocking I/O). Shared by the serve and fleet connection handlers
/// and their clients, so neither side can hang forever on a stalled peer.
///
/// # Errors
///
/// Any error from the socket option calls (e.g. a zero `Duration`, which
/// the OS rejects).
pub fn set_io_timeouts(
    stream: &std::net::TcpStream,
    timeout: Option<std::time::Duration>,
) -> io::Result<()> {
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)
}

/// [`call`] over a TCP stream with a per-exchange deadline: the timeouts
/// are applied before the exchange, and a stalled server surfaces as
/// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`] instead of
/// hanging the client.
///
/// # Errors
///
/// Everything [`call`] returns, plus socket-option and timeout errors.
pub fn call_with_timeout(
    stream: &mut std::net::TcpStream,
    req: &Request,
    timeout: Option<std::time::Duration>,
) -> io::Result<Response> {
    set_io_timeouts(stream, timeout)?;
    call(stream, req)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat() -> Mat {
        Mat::from_rows(&[&[1.5, -0.0, f64::NAN], &[0.25, 2.0, -3.5]])
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::LookupBatch {
                tenant: "search".into(),
                ids: vec![0, 7, u32::MAX],
            },
            Request::NearestBatch {
                tenant: "ads".into(),
                k: 5,
                queries: mat(),
            },
            Request::Info { tenant: "".into() },
        ];
        for req in &reqs {
            let body = encode_request(req).expect("encode");
            let back = decode_request(&body).expect("decode");
            // Mat equality is not bitwise for NaN; compare the encodings.
            assert_eq!(
                encode_request(&back).expect("re-encode"),
                body,
                "{req:?} must round-trip"
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Rows(mat()),
            Response::Neighbors(vec![vec![(3, 0.9), (1, 0.5)], vec![]]),
            Response::Info(SnapshotInfo {
                version: 12,
                vocab_size: 220,
                dim: 16,
                precision_bits: 4,
            }),
            Response::Error {
                code: ErrorCode::IdOutOfRange,
                message: "word id 999 out of range".into(),
            },
        ];
        for resp in &resps {
            let body = encode_response(resp).expect("encode");
            let back = decode_response(&body).expect("decode");
            assert_eq!(
                encode_response(&back).expect("re-encode"),
                body,
                "{resp:?} must round-trip"
            );
        }
    }

    #[test]
    fn truncated_bodies_decode_to_none() {
        let req_body = encode_request(&Request::NearestBatch {
            tenant: "t".into(),
            k: 3,
            queries: mat(),
        })
        .expect("encode");
        for cut in 0..req_body.len() {
            assert!(
                decode_request(&req_body[..cut]).is_none(),
                "request cut at {cut} must not decode"
            );
        }
        let resp_body =
            encode_response(&Response::Neighbors(vec![vec![(3, 0.9)]])).expect("encode");
        for cut in 0..resp_body.len() {
            assert!(
                decode_response(&resp_body[..cut]).is_none(),
                "response cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_bad_versions_and_bad_ops_are_rejected() {
        let mut body = encode_request(&Request::Info { tenant: "t".into() }).expect("encode");
        body.push(0);
        assert!(decode_request(&body).is_none(), "trailing byte");
        let mut body = encode_request(&Request::Info { tenant: "t".into() }).expect("encode");
        body[0] = WIRE_VERSION + 1;
        assert!(decode_request(&body).is_none(), "future version");
        let mut body = encode_request(&Request::Info { tenant: "t".into() }).expect("encode");
        body[1] = 200;
        assert!(decode_request(&body).is_none(), "unknown op");
        // Unknown error codes don't decode either.
        let mut body = encode_response(&Response::Error {
            code: ErrorCode::Malformed,
            message: String::new(),
        })
        .expect("encode");
        body[2] = 0xFF;
        assert!(decode_response(&body).is_none(), "unknown error code");
    }

    #[test]
    fn oversize_frames_are_rejected_before_allocation() {
        let mut sink = Vec::new();
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(write_frame(&mut sink, &big).is_err());
        // A length prefix claiming 2^32-1 bytes errors without allocating.
        let evil = u32::MAX.to_le_bytes();
        let mut r = &evil[..];
        assert_eq!(
            read_frame(&mut r).expect_err("oversize").kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let body = encode_request(&Request::LookupBatch {
            tenant: "t".into(),
            ids: vec![1, 2, 3],
        })
        .expect("encode");
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).expect("write");
        write_frame(&mut buf, &body).expect("write");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("frame 1"), Some(body.clone()));
        assert_eq!(read_frame(&mut r).expect("frame 2"), Some(body));
        assert_eq!(read_frame(&mut r).expect("eof"), None);
    }

    #[test]
    fn query_errors_map_to_stable_codes() {
        let cases = [
            (
                QueryError::IdOutOfRange {
                    id: 9,
                    vocab_size: 5,
                },
                ErrorCode::IdOutOfRange,
            ),
            (
                QueryError::DimMismatch {
                    got: 3,
                    expected: 4,
                },
                ErrorCode::DimMismatch,
            ),
            (QueryError::EmptyBatch, ErrorCode::EmptyBatch),
            (QueryError::ZeroK, ErrorCode::ZeroK),
        ];
        for (err, code) in cases {
            let resp = Response::from(err.clone());
            match resp {
                Response::Error { code: c, message } => {
                    assert_eq!(c, code);
                    assert_eq!(message, err.to_string());
                }
                other => panic!("expected error response, got {other:?}"),
            }
        }
    }
}
