//! Typed errors for the serving query paths.
//!
//! Every query a [`Snapshot`](crate::Snapshot) answers can be driven by
//! bytes a network client controls (the wire front-end decodes straight
//! into `try_lookup_batch` / `try_nearest_batch` arguments), so a bad
//! query must degrade to a value the server can turn into an error
//! *response* — never a panic, which would take down every tenant on the
//! process. This module is the vocabulary of those degradations.

use std::fmt;

/// Why a snapshot query could not be answered.
///
/// Each variant corresponds to one way client-controlled input can be
/// invalid against the served snapshot. The wire layer maps these 1:1
/// onto [`ErrorCode`](crate::wire::ErrorCode)s, so a client sees the same
/// taxonomy the library exposes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A word id at or past the snapshot's vocabulary size.
    IdOutOfRange {
        /// The offending id.
        id: u32,
        /// The snapshot's vocabulary size (valid ids are `0..vocab_size`).
        vocab_size: usize,
    },
    /// Query vectors whose dimension differs from the snapshot's.
    DimMismatch {
        /// The queries' column count.
        got: usize,
        /// The snapshot's embedding dimension.
        expected: usize,
    },
    /// A batch with no ids / no query rows: nothing to answer, and almost
    /// certainly a client bug, so it is reported instead of silently
    /// returning an empty result.
    EmptyBatch,
    /// `k = 0` nearest-neighbor request: zero neighbors is never what a
    /// client wants, so it is reported instead of answering `[]`.
    ZeroK,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::IdOutOfRange { id, vocab_size } => {
                write!(
                    f,
                    "word id {id} out of range (vocabulary size {vocab_size})"
                )
            }
            QueryError::DimMismatch { got, expected } => {
                write!(
                    f,
                    "query dimension {got} does not match the snapshot's {expected}"
                )
            }
            QueryError::EmptyBatch => write!(f, "empty query batch"),
            QueryError::ZeroK => write!(f, "nearest-neighbor request with k = 0"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<QueryError> for std::io::Error {
    fn from(e: QueryError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e)
    }
}
