//! Versioned, quantized embedding snapshots and their on-disk store.
//!
//! A [`Snapshot`] is what a tenant actually serves: an embedding quantized
//! to the tenant's precision, plus the metadata the stability gate needs
//! to score the *next* retrain against it (the quantization clip, the
//! version lineage, the gate score that admitted it). The
//! [`SnapshotStore`] persists every published snapshot with the same
//! atomic tmp+rename convention as the pipeline's
//! [`PairCache`](embedstab_pipeline::cache::PairCache) — readers never see
//! a partial file, and re-opening a store round-trips every snapshot
//! bitwise (`f64` bits are dumped raw, exactly like the pair cache).
//!
//! Promotion history is a stack: [`SnapshotStore::publish`] pushes a new
//! live version, [`SnapshotStore::rollback`] pops back to the previous
//! one. Rolled-back snapshot files stay on disk for audit; only the `LIVE`
//! pointer moves.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read as _};
use std::path::{Path, PathBuf};

use crate::error::QueryError;
use embedstab_embeddings::Embedding;
use embedstab_linalg::Mat;
use embedstab_pipeline::cache::{atomic_write, decode_mat, encode_mat, read_u32};
use embedstab_quant::{quantize, Precision};
use serde::{Deserialize, Serialize};

/// Bump when the snapshot file layout changes; old files are rejected at
/// [`SnapshotStore::open`], not misread.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"ESSN";
const LIVE_FILE: &str = "LIVE";

/// A monotonically increasing snapshot version, assigned by the store at
/// publish time (the first published snapshot is `v1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Version(pub u64);

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Everything about a snapshot except the embedding matrix itself.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// The store-assigned version.
    pub version: Version,
    /// Embedding dimension.
    pub dim: usize,
    /// Vocabulary size (number of rows).
    pub vocab_size: usize,
    /// The precision the snapshot is quantized to.
    pub precision: Precision,
    /// The clip threshold the snapshot was quantized with — the shared-clip
    /// anchor for gate evaluations of future candidates (`None` at full
    /// precision, where quantization is the identity).
    pub clip: Option<f64>,
    /// The gate score that admitted this snapshot (`None` for a bootstrap
    /// publish, which had no live predecessor to compare against).
    pub predicted_instability: Option<f64>,
}

/// One served embedding snapshot: quantized values plus metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    meta: SnapshotMeta,
    embedding: Embedding,
    /// Per-row L2 norms, precomputed once at construction: the snapshot
    /// is immutable and [`Snapshot::nearest_batch`] is the serving hot
    /// path, so cosine denominators must not be recomputed per query
    /// batch. Derived from `embedding`, not persisted.
    row_norms: Vec<f64>,
}

fn row_norms(embedding: &Embedding) -> Vec<f64> {
    (0..embedding.vocab_size())
        .map(|i| {
            let r = embedding.mat().row(i);
            r.iter().map(|x| x * x).sum::<f64>().sqrt()
        })
        .collect()
}

impl Snapshot {
    /// Quantizes `embedding` at `precision` with its own MSE-optimal clip
    /// and wraps it in snapshot form (the store calls this on publish).
    fn quantized(
        version: Version,
        embedding: &Embedding,
        precision: Precision,
        predicted_instability: Option<f64>,
    ) -> Snapshot {
        let q = quantize(embedding, precision, None);
        let (vocab_size, dim) = embedding.shape();
        Snapshot {
            meta: SnapshotMeta {
                version,
                dim,
                vocab_size,
                precision,
                clip: if precision.is_full() {
                    None
                } else {
                    Some(q.clip)
                },
                predicted_instability,
            },
            row_norms: row_norms(&q.embedding),
            embedding: q.embedding,
        }
    }

    /// The snapshot's metadata.
    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// The quantized embedding being served.
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// The vector for one word id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range. Wire-facing callers use
    /// [`Snapshot::try_lookup`] instead.
    pub fn lookup(&self, id: u32) -> &[f64] {
        self.embedding.vector(id)
    }

    /// Like [`Snapshot::lookup`], but an out-of-range id is a typed
    /// [`QueryError`] instead of a panic — the form the wire front-end
    /// must use, since the id arrives in client-controlled bytes.
    pub fn try_lookup(&self, id: u32) -> Result<&[f64], QueryError> {
        self.check_id(id)?;
        Ok(self.embedding.vector(id))
    }

    /// The vectors for a batch of word ids, as one `ids.len() x dim`
    /// matrix. Row `i` is bitwise identical to `lookup(ids[i])` (the
    /// `serve_integration` test pins this), so batching is purely a
    /// throughput optimization for downstream consumers.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range. Wire-facing callers use
    /// [`Snapshot::try_lookup_batch`] instead.
    pub fn lookup_batch(&self, ids: &[u32]) -> Mat {
        let rows: Vec<usize> = ids.iter().map(|&id| id as usize).collect();
        self.embedding.mat().select_rows(&rows)
    }

    /// Like [`Snapshot::lookup_batch`], but malformed input degrades to a
    /// typed [`QueryError`]: an out-of-range id (reported with the first
    /// offender) or an empty batch. This is the entry point the TCP
    /// front-end's coalesced batches go through.
    pub fn try_lookup_batch(&self, ids: &[u32]) -> Result<Mat, QueryError> {
        if ids.is_empty() {
            return Err(QueryError::EmptyBatch);
        }
        for &id in ids {
            self.check_id(id)?;
        }
        Ok(self.lookup_batch(ids))
    }

    fn check_id(&self, id: u32) -> Result<(), QueryError> {
        if (id as usize) < self.meta.vocab_size {
            Ok(())
        } else {
            Err(QueryError::IdOutOfRange {
                id,
                vocab_size: self.meta.vocab_size,
            })
        }
    }

    /// The `k` nearest words (by cosine similarity) to each query vector,
    /// for a whole batch of queries at once. The `queries x vocab` score
    /// matrix is one `matmul_nt` call, so the batch rides the blocked GEMM
    /// kernel instead of `queries` separate vocabulary scans.
    ///
    /// Each result is sorted by descending similarity; ties break toward
    /// the lower word id, so answers are deterministic.
    ///
    /// # Panics
    ///
    /// Panics (inside the GEMM shape check) if the query dimension
    /// differs from the snapshot's. Wire-facing callers use
    /// [`Snapshot::try_nearest_batch`] instead.
    pub fn nearest_batch(&self, queries: &Mat, k: usize) -> Vec<Vec<(u32, f64)>> {
        let vocab = self.meta.vocab_size;
        let k = k.min(vocab);
        let scores = queries.matmul_nt(self.embedding.mat());
        let norms = &self.row_norms;
        (0..queries.rows())
            .map(|qi| {
                let qnorm = {
                    let r = queries.row(qi);
                    r.iter().map(|x| x * x).sum::<f64>().sqrt()
                };
                let mut ranked: Vec<(u32, f64)> = scores
                    .row(qi)
                    .iter()
                    .enumerate()
                    .map(|(w, &dot)| {
                        let denom = qnorm * norms[w];
                        let sim = if denom > 0.0 { dot / denom } else { 0.0 };
                        (w as u32, sim)
                    })
                    .collect();
                // A NaN similarity (degenerate snapshot row) must not
                // panic the serving path — and must rank below every real
                // neighbor, whatever its sign bit, so the top-k answer
                // stays meaningful and deterministic.
                ranked.sort_unstable_by(|a, b| {
                    embedstab_core::stats::cmp_desc_nan_last(a.1, b.1).then(a.0.cmp(&b.0))
                });
                ranked.truncate(k);
                ranked
            })
            .collect()
    }

    /// Like [`Snapshot::nearest_batch`], but malformed input degrades to
    /// a typed [`QueryError`]: a query-dimension mismatch, an empty query
    /// batch, or `k = 0`. The happy path is byte-for-byte the panicking
    /// variant's (one blocked GEMM + deterministic ranking), so batching
    /// through this entry point changes no answers.
    pub fn try_nearest_batch(
        &self,
        queries: &Mat,
        k: usize,
    ) -> Result<Vec<Vec<(u32, f64)>>, QueryError> {
        if queries.cols() != self.meta.dim {
            return Err(QueryError::DimMismatch {
                got: queries.cols(),
                expected: self.meta.dim,
            });
        }
        if queries.rows() == 0 {
            return Err(QueryError::EmptyBatch);
        }
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        Ok(self.nearest_batch(queries, k))
    }

    fn encode(&self) -> io::Result<Vec<u8>> {
        let meta = serde_json::to_string(&self.meta).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("snapshot meta: {e}"))
        })?;
        let meta_len = u32::try_from(meta.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot meta exceeds the format's u32 length header",
            )
        })?;
        let (n, d) = self.embedding.shape();
        let mut out = Vec::with_capacity(16 + meta.len() + 8 + n * d * 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&meta_len.to_le_bytes());
        out.extend_from_slice(meta.as_bytes());
        encode_mat(&mut out, self.embedding.mat());
        Ok(out)
    }

    fn decode(mut bytes: &[u8]) -> Option<Snapshot> {
        let r = &mut bytes;
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).ok()?;
        if magic != MAGIC || read_u32(r)? != SNAPSHOT_FORMAT_VERSION {
            return None;
        }
        let meta_len = read_u32(r)? as usize;
        if r.len() < meta_len {
            return None;
        }
        let meta_bytes = &r[..meta_len];
        let meta: SnapshotMeta =
            serde_json::from_str(std::str::from_utf8(meta_bytes).ok()?).ok()?;
        *r = &r[meta_len..];
        let mat = decode_mat(r)?;
        if mat.shape() != (meta.vocab_size, meta.dim) || !r.is_empty() {
            return None;
        }
        let embedding = Embedding::new(mat);
        Some(Snapshot {
            meta,
            row_norms: row_norms(&embedding),
            embedding,
        })
    }
}

/// A directory of published snapshots plus the `LIVE` promotion history.
///
/// Persistence guarantees (the `serve` proptests pin both):
///
/// - every publish and every history move is an atomic tmp+rename write,
///   so a crash leaves either the old or the new state, never a torn one;
/// - re-opening a store loads every snapshot bitwise identical to what was
///   published (raw `f64` bit dumps, as in the pipeline's pair cache);
/// - version numbers are **never reused**: the highest version ever
///   issued is persisted in the `LIVE` file, so a publish after a
///   rollback — even across a reopen, even if the rolled-back snapshot's
///   file was archived away in the meantime — always allocates a fresh
///   version instead of overwriting an audit file.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    snapshots: BTreeMap<u64, Snapshot>,
    history: Vec<u64>,
    /// Highest version ever issued by this store (not merely the highest
    /// currently on disk). Persisted in `LIVE`; monotonic.
    max_issued: u64,
}

/// The persisted `LIVE` state: the promotion history plus the
/// version-allocation high-water mark.
///
/// Serialized as a JSON object. Stores written before `max_issued`
/// existed hold a bare JSON history array; [`SnapshotStore::open`] still
/// accepts that layout and infers the high-water mark from the snapshot
/// files and history.
#[derive(Serialize, Deserialize)]
struct LiveState {
    history: Vec<u64>,
    max_issued: u64,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot store in `dir`, loading every
    /// published snapshot and the promotion history.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory cannot be created or read, or
    /// if a snapshot file or the `LIVE` pointer is corrupt (a serving
    /// store must not silently drop versions the history refers to).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut snapshots = BTreeMap::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !name.starts_with("snap_") || !name.ends_with(".bin") {
                continue;
            }
            let snap = Snapshot::decode(&fs::read(&path)?).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt snapshot file {}", path.display()),
                )
            })?;
            snapshots.insert(snap.meta.version.0, snap);
        }
        let live_path = dir.join(LIVE_FILE);
        let (history, recorded_max) = match fs::read_to_string(&live_path) {
            Ok(body) => match serde_json::from_str::<LiveState>(&body) {
                Ok(state) => (state.history, state.max_issued),
                // Pre-`max_issued` stores persisted a bare history array;
                // accept it and infer the high-water mark below.
                Err(_) => {
                    let history: Vec<u64> = serde_json::from_str(&body).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("corrupt LIVE pointer {}: {e}", live_path.display()),
                        )
                    })?;
                    (history, 0)
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => (Vec::new(), 0),
            Err(e) => return Err(e),
        };
        for v in &history {
            if !snapshots.contains_key(v) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("LIVE history names v{v} but no snapshot file holds it"),
                ));
            }
        }
        // Snapshot files (or history entries) can outrun the recorded mark
        // — e.g. a crash between a snapshot write and its history write —
        // so the allocator floor is the max over all three sources.
        let max_issued = recorded_max
            .max(snapshots.keys().last().copied().unwrap_or(0))
            .max(history.iter().copied().max().unwrap_or(0));
        Ok(SnapshotStore {
            dir,
            snapshots,
            history,
            max_issued,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The currently live snapshot, if any version has been published.
    pub fn live(&self) -> Option<&Snapshot> {
        self.history.last().map(|v| &self.snapshots[v])
    }

    /// A published snapshot by version (including rolled-back ones, which
    /// stay on disk for audit).
    pub fn get(&self, version: Version) -> Option<&Snapshot> {
        self.snapshots.get(&version.0)
    }

    /// All published versions, ascending.
    pub fn versions(&self) -> Vec<Version> {
        self.snapshots.keys().map(|&v| Version(v)).collect()
    }

    /// The promotion history, oldest first; the last entry is live.
    pub fn history(&self) -> Vec<Version> {
        self.history.iter().map(|&v| Version(v)).collect()
    }

    /// Number of published snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Quantizes `embedding` at `precision` (with its own MSE-optimal
    /// clip, which future gate evaluations then share) and publishes it as
    /// the next version, promoting it live. `predicted_instability`
    /// records the gate score that admitted it, if any.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from persisting the snapshot or the history.
    pub fn publish(
        &mut self,
        embedding: &Embedding,
        precision: Precision,
        predicted_instability: Option<f64>,
    ) -> io::Result<Version> {
        // Allocate off the persisted high-water mark, NOT the highest
        // version currently on disk: after a rollback the popped version's
        // file may be archived or pruned, and `max present + 1` would then
        // reissue its number and overwrite the audit trail.
        let version = Version(self.max_issued + 1);
        let snap = Snapshot::quantized(version, embedding, precision, predicted_instability);
        let bytes = snap.encode()?;
        atomic_write(&self.snapshot_path(version), &bytes)?;
        self.snapshots.insert(version.0, snap);
        self.history.push(version.0);
        self.max_issued = version.0;
        if let Err(e) = self.persist_history() {
            // Keep memory and disk agreeing on what happened: a failed
            // history write means the publish did not happen, so take the
            // snapshot file back out too (best effort — a leftover file
            // would resurface as a phantom published version on reopen).
            self.history.pop();
            self.snapshots.remove(&version.0);
            self.max_issued = version.0 - 1;
            std::fs::remove_file(self.snapshot_path(version)).ok();
            return Err(e);
        }
        Ok(version)
    }

    /// Reverts the live pointer to the previous promoted version. The
    /// rolled-back snapshot's file stays on disk (it remains loadable via
    /// [`SnapshotStore::get`]); only the history moves.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if fewer than two versions
    /// have been promoted, or any I/O error from persisting the history.
    pub fn rollback(&mut self) -> io::Result<Version> {
        if self.history.len() < 2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "nothing to roll back to: fewer than two promoted versions",
            ));
        }
        let Some(popped) = self.history.pop() else {
            // Unreachable given the length check, but serving code returns
            // a typed error rather than trusting that across refactors.
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty history"));
        };
        if let Err(e) = self.persist_history() {
            self.history.push(popped); // memory must keep agreeing with disk
            return Err(e);
        }
        match self.history.last() {
            Some(&live) => Ok(Version(live)),
            None => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "history empty after rollback",
            )),
        }
    }

    fn snapshot_path(&self, version: Version) -> PathBuf {
        self.dir.join(format!(
            "snap_v{SNAPSHOT_FORMAT_VERSION}_{:012}.bin",
            version.0
        ))
    }

    fn persist_history(&self) -> io::Result<()> {
        let state = LiveState {
            history: self.history.clone(),
            max_issued: self.max_issued,
        };
        let body = serde_json::to_string(&state)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("live state: {e}")))?;
        atomic_write(&self.dir.join(LIVE_FILE), body.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn scratch(label: &str) -> PathBuf {
        let dir = embedstab_pipeline::cache::scratch_dir(label);
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn emb(seed: u64, n: usize, d: usize) -> Embedding {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Embedding::new(Mat::random_normal(n, d, &mut rng))
    }

    #[test]
    fn publish_reload_round_trips_bitwise() {
        let dir = scratch("snap_roundtrip");
        let mut store = SnapshotStore::open(&dir).expect("open");
        assert!(store.is_empty());
        assert!(store.live().is_none());
        let e = emb(0, 9, 4);
        let v = store
            .publish(&e, Precision::new(4), Some(0.02))
            .expect("publish");
        assert_eq!(v, Version(1));
        let reloaded = SnapshotStore::open(&dir).expect("reopen");
        let live = reloaded.live().expect("live");
        assert_eq!(live, store.live().expect("live"));
        assert_eq!(live.meta().predicted_instability, Some(0.02));
        assert_eq!(live.meta().dim, 4);
        assert_eq!(live.meta().vocab_size, 9);
        // Quantized with its own clip, recorded in the metadata.
        let q = quantize(&e, Precision::new(4), None);
        assert_eq!(live.embedding(), &q.embedding);
        assert_eq!(live.meta().clip, Some(q.clip));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_precision_snapshot_has_no_clip() {
        let dir = scratch("snap_full");
        let mut store = SnapshotStore::open(&dir).expect("open");
        let e = emb(1, 6, 3);
        store.publish(&e, Precision::FULL, None).expect("publish");
        let live = store.live().expect("live");
        assert_eq!(live.meta().clip, None);
        assert_eq!(live.embedding(), &e);
        // And the absent clip survives the JSON round trip.
        let reloaded = SnapshotStore::open(&dir).expect("reopen");
        assert_eq!(reloaded.live().expect("live").meta().clip, None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollback_pops_history_and_keeps_files() {
        let dir = scratch("snap_rollback");
        let mut store = SnapshotStore::open(&dir).expect("open");
        let v1 = store
            .publish(&emb(2, 8, 3), Precision::new(2), None)
            .expect("v1");
        let v2 = store
            .publish(&emb(3, 8, 3), Precision::new(2), Some(0.5))
            .expect("v2");
        assert_eq!(store.live().expect("live").meta().version, v2);
        let back = store.rollback().expect("rollback");
        assert_eq!(back, v1);
        assert_eq!(store.live().expect("live").meta().version, v1);
        // The rolled-back version stays published and loadable.
        assert!(store.get(v2).is_some());
        assert_eq!(store.versions(), vec![v1, v2]);
        // A further rollback has nowhere to go.
        assert_eq!(
            store.rollback().expect_err("empty").kind(),
            io::ErrorKind::InvalidInput
        );
        // History survives a reopen; the next publish continues numbering.
        let mut reloaded = SnapshotStore::open(&dir).expect("reopen");
        assert_eq!(reloaded.history(), vec![v1]);
        let v3 = reloaded
            .publish(&emb(4, 8, 3), Precision::new(2), None)
            .expect("v3");
        assert_eq!(v3, Version(3));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn publish_after_rollback_never_clobbers_the_audit_file() {
        let dir = scratch("snap_monotonic");
        let mut store = SnapshotStore::open(&dir).expect("open");
        store
            .publish(&emb(10, 6, 3), Precision::new(4), None)
            .expect("v1");
        let v2 = store
            .publish(&emb(11, 6, 3), Precision::new(4), Some(0.1))
            .expect("v2");
        let v2_path = store.snapshot_path(v2);
        let v2_bytes = fs::read(&v2_path).expect("v2 bytes");
        store.rollback().expect("rollback");
        // The next publish must allocate a fresh version and leave the
        // rolled-back snapshot's bytes untouched on disk.
        let v3 = store
            .publish(&emb(12, 6, 3), Precision::new(4), None)
            .expect("v3");
        assert_eq!(v3, Version(3));
        assert_eq!(
            fs::read(&v2_path).expect("v2 still readable"),
            v2_bytes,
            "rolled-back snapshot clobbered"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn versions_survive_rollback_prune_and_reopen() {
        let dir = scratch("snap_monotonic_reopen");
        let mut store = SnapshotStore::open(&dir).expect("open");
        store
            .publish(&emb(20, 5, 2), Precision::new(2), None)
            .expect("v1");
        let v2 = store
            .publish(&emb(21, 5, 2), Precision::new(2), None)
            .expect("v2");
        store.rollback().expect("rollback");
        // An auditor archives the rolled-back snapshot's file out of the
        // store directory. The version number must still never be reused:
        // before `max_issued` was persisted, a reopen here would have
        // reissued v2 and a restored archive file would be silently
        // overwritten.
        let v2_path = store.snapshot_path(v2);
        fs::remove_file(&v2_path).expect("archive v2");
        let mut reopened = SnapshotStore::open(&dir).expect("reopen");
        assert_eq!(reopened.history(), vec![Version(1)]);
        let v3 = reopened
            .publish(&emb(22, 5, 2), Precision::new(2), None)
            .expect("publish after prune");
        assert_eq!(v3, Version(3), "pruned version number was reissued");
        assert!(!v2_path.exists(), "nothing may recreate the archived file");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_bare_array_live_file_still_opens() {
        let dir = scratch("snap_legacy_live");
        let mut store = SnapshotStore::open(&dir).expect("open");
        store
            .publish(&emb(30, 4, 2), Precision::FULL, None)
            .expect("v1");
        store
            .publish(&emb(31, 4, 2), Precision::FULL, None)
            .expect("v2");
        // Rewrite LIVE in the pre-`max_issued` layout: a bare history
        // array, as older stores persisted it.
        fs::write(dir.join(LIVE_FILE), "[1,2]").expect("legacy LIVE");
        let mut reopened = SnapshotStore::open(&dir).expect("reopen legacy");
        assert_eq!(reopened.history(), vec![Version(1), Version(2)]);
        // The high-water mark is inferred, so allocation stays monotonic.
        let v3 = reopened
            .publish(&emb(32, 4, 2), Precision::FULL, None)
            .expect("v3");
        assert_eq!(v3, Version(3));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_file_is_an_open_error() {
        let dir = scratch("snap_corrupt");
        let mut store = SnapshotStore::open(&dir).expect("open");
        let v = store
            .publish(&emb(5, 7, 3), Precision::new(4), None)
            .expect("publish");
        let path = store.snapshot_path(v);
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(SnapshotStore::open(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_queries_degrade_to_typed_errors() {
        let dir = scratch("snap_query_errors");
        let mut store = SnapshotStore::open(&dir).expect("open");
        store
            .publish(&emb(7, 12, 4), Precision::FULL, None)
            .expect("publish");
        let snap = store.live().expect("live");
        // Out-of-range id: single and batched lookups, first offender named.
        assert_eq!(
            snap.try_lookup(12)
                .expect_err("id == vocab is out of range"),
            QueryError::IdOutOfRange {
                id: 12,
                vocab_size: 12
            }
        );
        assert_eq!(
            snap.try_lookup_batch(&[0, 3, 99, 100])
                .expect_err("out of range"),
            QueryError::IdOutOfRange {
                id: 99,
                vocab_size: 12
            }
        );
        // Wrong query dimension.
        let wrong_dim = Mat::zeros(2, 5);
        assert_eq!(
            snap.try_nearest_batch(&wrong_dim, 3)
                .expect_err("dim mismatch"),
            QueryError::DimMismatch {
                got: 5,
                expected: 4
            }
        );
        // k = 0 and empty batches.
        let ok_queries = snap.lookup_batch(&[1, 2]);
        assert_eq!(
            snap.try_nearest_batch(&ok_queries, 0).expect_err("k = 0"),
            QueryError::ZeroK
        );
        assert_eq!(
            snap.try_nearest_batch(&Mat::zeros(0, 4), 3)
                .expect_err("no query rows"),
            QueryError::EmptyBatch
        );
        assert_eq!(
            snap.try_lookup_batch(&[]).expect_err("no ids"),
            QueryError::EmptyBatch
        );
        // And the happy paths agree bitwise with the panicking variants.
        assert_eq!(snap.try_lookup(5).expect("in range"), snap.lookup(5));
        assert_eq!(
            snap.try_lookup_batch(&[1, 2]).expect("in range"),
            snap.lookup_batch(&[1, 2])
        );
        assert_eq!(
            snap.try_nearest_batch(&ok_queries, 3).expect("well-formed"),
            snap.nearest_batch(&ok_queries, 3)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nearest_batch_matches_naive_scan() {
        let dir = scratch("snap_nearest");
        let mut store = SnapshotStore::open(&dir).expect("open");
        store
            .publish(&emb(6, 30, 5), Precision::FULL, None)
            .expect("publish");
        let snap = store.live().expect("live");
        let queries = snap.lookup_batch(&[3, 17]);
        let results = snap.nearest_batch(&queries, 4);
        assert_eq!(results.len(), 2);
        for (qi, &word) in [3u32, 17].iter().enumerate() {
            // A word's own vector is its top cosine neighbor.
            assert_eq!(results[qi][0].0, word);
            assert!((results[qi][0].1 - 1.0).abs() < 1e-12);
            // Similarities are descending.
            for w in results[qi].windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
        fs::remove_dir_all(&dir).ok();
    }
}
