//! Uniform quantization for embedding compression (paper Section 2.3 and
//! Appendix C.2), following the smallfry implementation of May et al. (2019).
//!
//! Each embedding entry is rounded deterministically to one of `2^b` equally
//! spaced values in `[-clip, clip]`; the clip threshold is chosen to
//! minimize the mean squared quantization error of the input distribution.
//! As in the paper, a pair of embeddings being compared shares the clip
//! threshold computed from the *first* embedding, avoiding a spurious source
//! of instability.
//!
//! # Example
//!
//! ```
//! use embedstab_linalg::Mat;
//! use embedstab_embeddings::Embedding;
//! use embedstab_quant::{quantize, Precision};
//!
//! let emb = Embedding::new(Mat::from_rows(&[&[0.4, -1.0], &[0.9, 0.1]]));
//! let q = quantize(&emb, Precision::new(1), None);
//! // 1-bit: every entry collapses to one of two values.
//! let distinct: std::collections::BTreeSet<u64> =
//!     q.embedding.mat().as_slice().iter().map(|x| x.to_bits()).collect();
//! assert!(distinct.len() <= 2);
//! ```

use embedstab_embeddings::Embedding;
use embedstab_linalg::Mat;

/// Bit width of a quantized embedding entry.
///
/// `Precision::FULL` (32 bits) means "uncompressed": quantization is the
/// identity, matching the paper's convention that `b = 32` denotes
/// full-precision embeddings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Precision(u8);

impl Precision {
    /// Full precision (no compression).
    pub const FULL: Precision = Precision(32);

    /// The paper's precision sweep: 1, 2, 4, 8, 16, 32 bits.
    pub const SWEEP: [Precision; 6] = [
        Precision(1),
        Precision(2),
        Precision(4),
        Precision(8),
        Precision(16),
        Precision(32),
    ];

    /// Creates a precision of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 32`.
    pub fn new(bits: u8) -> Self {
        assert!((1..=32).contains(&bits), "precision must be in 1..=32 bits");
        Precision(bits)
    }

    /// The bit width.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// True if this precision performs no quantization.
    pub fn is_full(self) -> bool {
        self.0 >= 32
    }

    /// Number of representable levels (`2^bits`), saturating for full
    /// precision.
    pub fn levels(self) -> u64 {
        if self.0 >= 63 {
            u64::MAX
        } else {
            1u64 << self.0
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b={}", self.0)
    }
}

// Serialized as the bare bit width so on-disk metadata (e.g. the serving
// layer's snapshot headers) stays a plain JSON number. Hand-written rather
// than derived: the derive would bypass `Precision::new`'s range check,
// and deserializing must reject widths outside `1..=32`.
impl serde::Serialize for Precision {
    fn to_value(&self) -> serde::Value {
        serde::Value::U64(self.0 as u64)
    }
}

impl serde::Deserialize for Precision {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let bits = <u8 as serde::Deserialize>::from_value(v)?;
        if !(1..=32).contains(&bits) {
            return Err(serde::Error::msg(format!(
                "precision must be in 1..=32 bits, got {bits}"
            )));
        }
        Ok(Precision(bits))
    }
}

/// Memory footprint, in bits per word (row), of a `dim`-dimensional
/// embedding stored at `precision` — the x-axis of the paper's
/// stability-memory plots.
pub fn bits_per_word(dim: usize, precision: Precision) -> u64 {
    dim as u64 * precision.bits() as u64
}

/// The result of quantizing an embedding.
#[derive(Clone, Debug)]
pub struct Quantized {
    /// The quantized embedding (same shape as the input).
    pub embedding: Embedding,
    /// The clip threshold that was used.
    pub clip: f64,
    /// Mean squared quantization error actually incurred.
    pub mse: f64,
}

/// Searches for the clip threshold minimizing the mean squared error of
/// uniform quantization at the given precision.
///
/// The search evaluates a geometric grid of candidate thresholds between
/// `max_abs / levels` and `max_abs`; for each candidate the exact MSE over
/// the provided values is computed.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn optimal_clip(values: &[f64], precision: Precision) -> f64 {
    assert!(!values.is_empty(), "cannot choose a clip for no values");
    let max_abs = values.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 || precision.is_full() {
        return max_abs.max(1.0);
    }
    let candidates = 48;
    let lo = max_abs / precision.levels().min(1 << 16) as f64;
    let mut best = (f64::INFINITY, max_abs);
    for k in 0..=candidates {
        let c = lo * (max_abs / lo).powf(k as f64 / candidates as f64);
        let mse: f64 = values
            .iter()
            .map(|&x| sq(quantize_value(x, c, precision) - x))
            .sum();
        if mse < best.0 {
            best = (mse, c);
        }
    }
    best.1
}

#[inline]
fn sq(x: f64) -> f64 {
    x * x
}

/// Quantizes a single value to the `2^bits` uniform levels of
/// `[-clip, clip]` with deterministic round-to-nearest.
#[inline]
pub fn quantize_value(x: f64, clip: f64, precision: Precision) -> f64 {
    if precision.is_full() {
        return x;
    }
    let levels = precision.levels() as f64;
    let delta = 2.0 * clip / (levels - 1.0);
    let clamped = x.clamp(-clip, clip);
    let idx = ((clamped + clip) / delta).round();
    -clip + idx * delta
}

/// Quantizes an embedding with deterministic rounding.
///
/// If `clip` is `None`, the MSE-optimal threshold for this embedding is
/// computed first. To quantize a Wiki'17/Wiki'18 pair the paper's way, call
/// this on the '17 embedding with `None`, then pass the returned
/// [`Quantized::clip`] when quantizing the '18 embedding (see
/// [`quantize_pair`]).
pub fn quantize(emb: &Embedding, precision: Precision, clip: Option<f64>) -> Quantized {
    if precision.is_full() {
        return Quantized {
            embedding: emb.clone(),
            clip: f64::INFINITY,
            mse: 0.0,
        };
    }
    let clip = clip.unwrap_or_else(|| optimal_clip(emb.mat().as_slice(), precision));
    let (n, d) = emb.shape();
    let mut out = Mat::zeros(n, d);
    let mut mse = 0.0;
    for (o, &x) in out.as_mut_slice().iter_mut().zip(emb.mat().as_slice()) {
        let q = quantize_value(x, clip, precision);
        mse += sq(q - x);
        *o = q;
    }
    mse /= (n * d) as f64;
    Quantized {
        embedding: Embedding::new(out),
        clip,
        mse,
    }
}

/// Quantizes an aligned embedding pair the way the paper does
/// (Appendix C.2): the clip threshold is computed from `x17` and shared by
/// both embeddings.
pub fn quantize_pair(
    x17: &Embedding,
    x18: &Embedding,
    precision: Precision,
) -> (Quantized, Quantized) {
    let q17 = quantize(x17, precision, None);
    let clip = if precision.is_full() {
        None
    } else {
        Some(q17.clip)
    };
    let q18 = quantize(x18, precision, clip);
    (q17, q18)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_embedding(seed: u64) -> Embedding {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Embedding::new(Mat::random_normal(50, 10, &mut rng))
    }

    #[test]
    fn full_precision_is_identity() {
        let emb = random_embedding(0);
        let q = quantize(&emb, Precision::FULL, None);
        assert_eq!(q.embedding, emb);
        assert_eq!(q.mse, 0.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let emb = random_embedding(1);
        for &p in &[Precision::new(1), Precision::new(2), Precision::new(4)] {
            let q1 = quantize(&emb, p, None);
            let q2 = quantize(&q1.embedding, p, Some(q1.clip));
            assert_eq!(
                q1.embedding, q2.embedding,
                "requantizing must be a no-op at {p}"
            );
            assert!(q2.mse < 1e-20);
        }
    }

    #[test]
    fn mse_decreases_with_precision() {
        let emb = random_embedding(2);
        let mut last = f64::INFINITY;
        for bits in [1u8, 2, 4, 8, 16] {
            let q = quantize(&emb, Precision::new(bits), None);
            assert!(
                q.mse < last,
                "MSE should fall as precision rises: {bits} bits gave {}",
                q.mse
            );
            last = q.mse;
        }
    }

    #[test]
    fn one_bit_has_two_levels() {
        let emb = random_embedding(3);
        let q = quantize(&emb, Precision::new(1), None);
        let distinct: std::collections::BTreeSet<u64> = q
            .embedding
            .mat()
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn levels_are_symmetric_and_within_clip() {
        let emb = random_embedding(4);
        let q = quantize(&emb, Precision::new(3), None);
        for &v in q.embedding.mat().as_slice() {
            assert!(v.abs() <= q.clip + 1e-12);
        }
    }

    #[test]
    fn optimal_clip_beats_max_abs_at_low_bits() {
        // For heavy-tailed data at 1-2 bits, clipping below max|x| wins.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut values = Mat::random_normal(1, 5000, &mut rng).into_vec();
        values[0] = 25.0; // inject an outlier
        let p = Precision::new(2);
        let c_opt = optimal_clip(&values, p);
        let mse_opt: f64 = values
            .iter()
            .map(|&x| sq(quantize_value(x, c_opt, p) - x))
            .sum();
        let mse_max: f64 = values
            .iter()
            .map(|&x| sq(quantize_value(x, 25.0, p) - x))
            .sum();
        assert!(c_opt < 25.0);
        assert!(mse_opt < mse_max);
    }

    #[test]
    fn pair_shares_clip() {
        let a = random_embedding(6);
        let b = random_embedding(7);
        let (qa, qb) = quantize_pair(&a, &b, Precision::new(4));
        assert_eq!(qa.clip, qb.clip);
    }

    #[test]
    fn bits_per_word_arithmetic() {
        assert_eq!(bits_per_word(100, Precision::new(1)), 100);
        assert_eq!(bits_per_word(25, Precision::FULL), 800);
        // Paper observation: (dim 100, b=8) and (dim 25, b=32) share a budget.
        assert_eq!(
            bits_per_word(100, Precision::new(8)),
            bits_per_word(25, Precision::FULL)
        );
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn zero_bits_rejected() {
        let _ = Precision::new(0);
    }

    #[test]
    fn precision_serde_round_trips_and_validates() {
        use serde::{Deserialize as _, Serialize as _};
        for p in Precision::SWEEP {
            let v = p.to_value();
            assert_eq!(v, serde::Value::U64(p.bits() as u64));
            assert_eq!(Precision::from_value(&v).expect("round-trip"), p);
        }
        // Out-of-range widths are rejected, not constructed.
        assert!(Precision::from_value(&serde::Value::U64(0)).is_err());
        assert!(Precision::from_value(&serde::Value::U64(33)).is_err());
        assert!(Precision::from_value(&serde::Value::Str("8".into())).is_err());
    }

    #[test]
    fn quantize_value_rounds_to_nearest() {
        let p = Precision::new(2); // 4 levels in [-1, 1]: -1, -1/3, 1/3, 1
        let c = 1.0;
        let q0 = quantize_value(0.1, c, p);
        assert!(
            (q0 - 1.0 / 3.0).abs() < 1e-12,
            "0.1 rounds to 1/3, got {q0}"
        );
        assert!((quantize_value(0.9, c, p) - 1.0).abs() < 1e-12);
        assert!((quantize_value(-2.0, c, p) + 1.0).abs() < 1e-12);
    }
}
