//! Contextual word-embedding substrate: a from-scratch mini-BERT.
//!
//! For the paper's Section 6.2 extension, shallow (3-layer) BERT models
//! are pre-trained on sub-sampled Wiki'17/Wiki'18 dumps with varying
//! transformer output dimensionality, then used as *fixed* feature
//! extractors for linear sentiment classifiers; the stability-memory
//! tradeoff is measured over the output dimension and the precision of the
//! extracted features (paper Figure 11).
//!
//! This crate implements the full substrate with no deep-learning
//! framework: token+position embeddings, pre-norm multi-head
//! self-attention blocks with GELU feed-forward networks, a masked
//! language modeling objective, and complete backpropagation (verified
//! against finite differences in the test suite).
//!
//! # Example
//!
//! ```
//! use embedstab_corpus::{CorpusConfig, LatentModel, LatentModelConfig};
//! use embedstab_ctx::{BertConfig, MiniBert, MlmTrainConfig};
//!
//! let model = LatentModel::new(&LatentModelConfig { vocab_size: 50, ..Default::default() });
//! let corpus = model.generate_corpus(&CorpusConfig { n_tokens: 2_000, ..Default::default() });
//! let mut bert = MiniBert::new(&BertConfig {
//!     vocab_size: 50, dim: 8, heads: 2, layers: 1, ..Default::default()
//! });
//! bert.train_mlm(&corpus, &MlmTrainConfig { epochs: 1, ..Default::default() });
//! let features = bert.sentence_embedding(&[3, 1, 4]);
//! assert_eq!(features.len(), 8);
//! ```

mod mlm;
mod model;

pub use mlm::MlmTrainConfig;
pub use model::{BertConfig, MiniBert};
