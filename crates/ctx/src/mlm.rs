//! Masked language modeling pre-training (Devlin et al., 2019 recipe:
//! 15% of tokens selected; 80% become `[MASK]`, 10% a random token, 10%
//! stay unchanged).

use embedstab_corpus::Corpus;
use embedstab_linalg::opt::Adam;
use embedstab_linalg::{vecops, Mat};
use rand::{Rng, RngExt, SeedableRng};

use crate::model::{Grads, MiniBert};

/// MLM pre-training hyperparameters.
#[derive(Clone, Debug)]
pub struct MlmTrainConfig {
    /// Passes over the (chunked) corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Sequences per optimizer step.
    pub batch: usize,
    /// Fraction of tokens selected for prediction.
    pub mask_prob: f64,
    /// Sampling seed (masking, ordering).
    pub seed: u64,
}

impl Default for MlmTrainConfig {
    fn default() -> Self {
        MlmTrainConfig {
            epochs: 2,
            lr: 1e-3,
            batch: 8,
            mask_prob: 0.15,
            seed: 0,
        }
    }
}

impl MiniBert {
    /// Pre-trains the model with masked language modeling over a corpus,
    /// returning per-epoch mean losses (per masked token).
    ///
    /// Deterministic given the model's initialization seed and
    /// `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the corpus yields no usable sequences.
    pub fn train_mlm(&mut self, corpus: &Corpus, config: &MlmTrainConfig) -> Vec<f64> {
        let max_len = self.config().max_len;
        let mut sequences: Vec<Vec<u32>> = Vec::new();
        for doc in corpus.docs() {
            for chunk in doc.chunks(max_len) {
                if chunk.len() >= 4 {
                    sequences.push(chunk.to_vec());
                }
            }
        }
        assert!(
            !sequences.is_empty(),
            "corpus yields no sequences of length >= 4"
        );

        let mut opt = VisitOpt::new(self, config.lr);
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let vocab = self.config().vocab_size;
        let mask_id = self.mask_id();
        let mut order: Vec<usize> = (0..sequences.len()).collect();
        let mut losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            shuffle(&mut order, &mut rng);
            let mut epoch_loss = 0.0;
            let mut masked_total = 0usize;
            for batch in order.chunks(config.batch.max(1)) {
                let mut grads = self.zero_grads();
                let mut batch_masked = 0usize;
                // First pass: count masked tokens for normalization.
                let mut plans = Vec::with_capacity(batch.len());
                for &si in batch {
                    let plan =
                        mask_plan(&sequences[si], config.mask_prob, vocab, mask_id, &mut rng);
                    batch_masked += plan.targets.len();
                    plans.push((si, plan));
                }
                if batch_masked == 0 {
                    continue;
                }
                let inv = 1.0 / batch_masked as f64;
                for (_si, plan) in &plans {
                    let caches = self.forward(&plan.input);
                    let d = caches.out.cols();
                    let mut d_out = Mat::zeros(caches.out.rows(), d);
                    for &(pos, gold) in &plan.targets {
                        let y = caches.out.row(pos);
                        let mut logits: Vec<f64> = (0..vocab)
                            .map(|w| vecops::dot(self.decoder.row(w), y) + self.dec_b[w])
                            .collect();
                        vecops::softmax_inplace(&mut logits);
                        epoch_loss -= logits[gold as usize].max(1e-12).ln();
                        for w in 0..vocab {
                            let dl = (logits[w] - if w == gold as usize { 1.0 } else { 0.0 }) * inv;
                            if dl == 0.0 {
                                continue;
                            }
                            vecops::axpy(dl, self.decoder.row(w), d_out.row_mut(pos));
                            vecops::axpy(dl, y, grads.decoder.row_mut(w));
                            grads.dec_b[w] += dl;
                        }
                    }
                    self.backward(&caches, &d_out, &mut grads);
                }
                masked_total += batch_masked;
                opt.step(self, &mut grads);
            }
            losses.push(epoch_loss / masked_total.max(1) as f64);
        }
        losses
    }
}

/// A masked copy of a sequence plus the positions/targets to predict.
struct MaskPlan {
    input: Vec<u32>,
    targets: Vec<(usize, u32)>,
}

fn mask_plan(
    seq: &[u32],
    mask_prob: f64,
    vocab: usize,
    mask_id: u32,
    rng: &mut impl Rng,
) -> MaskPlan {
    let mut input = seq.to_vec();
    let mut targets = Vec::new();
    for (pos, tok) in input.iter_mut().enumerate() {
        if rng.random::<f64>() >= mask_prob {
            continue;
        }
        targets.push((pos, *tok));
        let roll: f64 = rng.random();
        if roll < 0.8 {
            *tok = mask_id;
        } else if roll < 0.9 {
            *tok = rng.random_range(0..vocab as u32);
        } // else: keep the original token
    }
    if targets.is_empty() {
        // Guarantee at least one prediction per sequence.
        let pos = rng.random_range(0..seq.len());
        targets.push((pos, seq[pos]));
        input[pos] = mask_id;
    }
    MaskPlan { input, targets }
}

/// Adam over every parameter block, paired with gradients by visiting both
/// structures in the same fixed order.
struct VisitOpt {
    adams: Vec<Adam>,
}

impl VisitOpt {
    fn new(model: &mut MiniBert, lr: f64) -> Self {
        let mut sizes = Vec::new();
        model.visit_mut(&mut |s: &mut [f64]| sizes.push(s.len()));
        VisitOpt {
            adams: sizes.into_iter().map(|n| Adam::new(n, lr)).collect(),
        }
    }

    fn step(&mut self, model: &mut MiniBert, grads: &mut Grads) {
        let mut gslices: Vec<Vec<f64>> = Vec::with_capacity(self.adams.len());
        grads.visit_mut(&mut |s: &mut [f64]| gslices.push(s.to_vec()));
        let mut idx = 0usize;
        model.visit_mut(&mut |p: &mut [f64]| {
            self.adams[idx].step(p, &gslices[idx]);
            idx += 1;
        });
    }
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BertConfig;
    use embedstab_corpus::{CorpusConfig, LatentModel, LatentModelConfig};

    fn corpus() -> (LatentModel, Corpus) {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 60,
            n_topics: 4,
            ..Default::default()
        });
        let c = model.generate_corpus(&CorpusConfig {
            n_tokens: 6_000,
            ..Default::default()
        });
        (model, c)
    }

    #[test]
    fn mlm_loss_decreases() {
        let (_m, c) = corpus();
        let mut bert = MiniBert::new(&BertConfig {
            vocab_size: 60,
            dim: 16,
            heads: 2,
            layers: 2,
            max_len: 16,
            ffn_mult: 2,
            seed: 0,
        });
        let losses = bert.train_mlm(
            &c,
            &MlmTrainConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        assert_eq!(losses.len(), 3);
        assert!(
            losses[2] < losses[0] * 0.9,
            "MLM loss should fall: {losses:?}"
        );
        // Better than uniform guessing.
        assert!(
            losses[2] < (60.0f64).ln(),
            "final loss {} vs ln(60)",
            losses[2]
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (_m, c) = corpus();
        let cfg = BertConfig {
            vocab_size: 60,
            dim: 8,
            heads: 2,
            layers: 1,
            max_len: 12,
            ffn_mult: 2,
            seed: 1,
        };
        let mut a = MiniBert::new(&cfg);
        let mut b = MiniBert::new(&cfg);
        let tcfg = MlmTrainConfig {
            epochs: 1,
            ..Default::default()
        };
        let la = a.train_mlm(&c, &tcfg);
        let lb = b.train_mlm(&c, &tcfg);
        assert_eq!(la, lb);
        let ea = a.encode(&[5, 9, 2]);
        let eb = b.encode(&[5, 9, 2]);
        assert_eq!(ea, eb);
    }

    #[test]
    fn mask_plan_respects_rates() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let seq: Vec<u32> = (0..50).map(|i| i % 20).collect();
        let mut masked = 0usize;
        let mut mask_token = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let plan = mask_plan(&seq, 0.15, 20, 20, &mut rng);
            masked += plan.targets.len();
            mask_token += plan.input.iter().filter(|&&t| t == 20).count();
            // Targets record the original tokens.
            for &(pos, gold) in &plan.targets {
                assert_eq!(gold, seq[pos]);
            }
        }
        let rate = masked as f64 / (trials * 50) as f64;
        assert!((rate - 0.15).abs() < 0.02, "mask rate {rate}");
        // ~80% of selections become the [MASK] token.
        let mask_frac = mask_token as f64 / masked as f64;
        assert!(
            (mask_frac - 0.8).abs() < 0.06,
            "mask-token fraction {mask_frac}"
        );
    }
}
