//! The mini-BERT model: parameters, forward pass, and backpropagation.

use embedstab_linalg::{vecops, Mat};
use rand::{Rng, SeedableRng};

/// Architecture of the mini-BERT encoder.
#[derive(Clone, Debug)]
pub struct BertConfig {
    /// Vocabulary size (the `[MASK]` token is appended internally).
    pub vocab_size: usize,
    /// Maximum sequence length (longer documents are chunked).
    pub max_len: usize,
    /// Transformer model dimension — the "output dimensionality" swept in
    /// paper Figure 11a.
    pub dim: usize,
    /// Number of attention heads (`dim` must be divisible by `heads`).
    pub heads: usize,
    /// Number of transformer layers (the paper uses 3).
    pub layers: usize,
    /// Feed-forward width as a multiple of `dim` (BERT uses 4).
    pub ffn_mult: usize,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for BertConfig {
    fn default() -> Self {
        BertConfig {
            vocab_size: 1000,
            max_len: 32,
            dim: 32,
            heads: 4,
            layers: 3,
            ffn_mult: 4,
            seed: 0,
        }
    }
}

/// One transformer layer's parameters.
#[derive(Clone, Debug)]
pub(crate) struct Layer {
    pub ln1_g: Vec<f64>,
    pub ln1_b: Vec<f64>,
    pub wq: Mat,
    pub bq: Vec<f64>,
    pub wk: Mat,
    pub bk: Vec<f64>,
    pub wv: Mat,
    pub bv: Vec<f64>,
    pub wo: Mat,
    pub bo: Vec<f64>,
    pub ln2_g: Vec<f64>,
    pub ln2_b: Vec<f64>,
    pub w1: Mat,
    pub b1: Vec<f64>,
    pub w2: Mat,
    pub b2: Vec<f64>,
}

impl Layer {
    fn new(d: usize, ffn: usize, rng: &mut impl Rng) -> Self {
        let s_attn = (1.0 / d as f64).sqrt();
        let s_ffn = (1.0 / d as f64).sqrt();
        let s_out = (1.0 / ffn as f64).sqrt();
        Layer {
            ln1_g: vec![1.0; d],
            ln1_b: vec![0.0; d],
            wq: Mat::random_normal(d, d, rng).scale(s_attn),
            bq: vec![0.0; d],
            wk: Mat::random_normal(d, d, rng).scale(s_attn),
            bk: vec![0.0; d],
            wv: Mat::random_normal(d, d, rng).scale(s_attn),
            bv: vec![0.0; d],
            wo: Mat::random_normal(d, d, rng).scale(s_attn),
            bo: vec![0.0; d],
            ln2_g: vec![1.0; d],
            ln2_b: vec![0.0; d],
            w1: Mat::random_normal(ffn, d, rng).scale(s_ffn),
            b1: vec![0.0; ffn],
            w2: Mat::random_normal(d, ffn, rng).scale(s_out),
            b2: vec![0.0; d],
        }
    }

    fn visit_mut(&mut self, f: &mut impl FnMut(&mut [f64])) {
        f(&mut self.ln1_g);
        f(&mut self.ln1_b);
        f(self.wq.as_mut_slice());
        f(&mut self.bq);
        f(self.wk.as_mut_slice());
        f(&mut self.bk);
        f(self.wv.as_mut_slice());
        f(&mut self.bv);
        f(self.wo.as_mut_slice());
        f(&mut self.bo);
        f(&mut self.ln2_g);
        f(&mut self.ln2_b);
        f(self.w1.as_mut_slice());
        f(&mut self.b1);
        f(self.w2.as_mut_slice());
        f(&mut self.b2);
    }

    fn zeros_like(&self) -> Layer {
        Layer {
            ln1_g: vec![0.0; self.ln1_g.len()],
            ln1_b: vec![0.0; self.ln1_b.len()],
            wq: Mat::zeros(self.wq.rows(), self.wq.cols()),
            bq: vec![0.0; self.bq.len()],
            wk: Mat::zeros(self.wk.rows(), self.wk.cols()),
            bk: vec![0.0; self.bk.len()],
            wv: Mat::zeros(self.wv.rows(), self.wv.cols()),
            bv: vec![0.0; self.bv.len()],
            wo: Mat::zeros(self.wo.rows(), self.wo.cols()),
            bo: vec![0.0; self.bo.len()],
            ln2_g: vec![0.0; self.ln2_g.len()],
            ln2_b: vec![0.0; self.ln2_b.len()],
            w1: Mat::zeros(self.w1.rows(), self.w1.cols()),
            b1: vec![0.0; self.b1.len()],
            w2: Mat::zeros(self.w2.rows(), self.w2.cols()),
            b2: vec![0.0; self.b2.len()],
        }
    }
}

/// The mini-BERT encoder with a masked-LM decoder head.
#[derive(Clone, Debug)]
pub struct MiniBert {
    pub(crate) config: BertConfig,
    pub(crate) tok_emb: Mat, // (vocab + 1) x d, last row = [MASK]
    pub(crate) pos_emb: Mat, // max_len x d
    pub(crate) layers: Vec<Layer>,
    pub(crate) fin_g: Vec<f64>,
    pub(crate) fin_b: Vec<f64>,
    pub(crate) decoder: Mat, // vocab x d
    pub(crate) dec_b: Vec<f64>,
}

/// Forward-pass caches for one layer.
pub(crate) struct LayerCache {
    x_in: Mat,
    ln1: LnCache,
    q: Mat,
    k: Mat,
    v: Mat,
    /// Attention probabilities, one `T x T` matrix per head.
    probs: Vec<Mat>,
    ctx: Mat,
    ln2: LnCache,
    /// FFN pre-activation (`T x ffn`).
    pre: Mat,
    /// GELU output (`T x ffn`).
    act: Mat,
}

pub(crate) struct LnCache {
    xhat: Mat,
    inv_std: Vec<f64>,
}

/// Everything needed to backprop one sequence.
pub(crate) struct Caches {
    pub ids: Vec<u32>,
    layers: Vec<LayerCache>,
    fin: LnCache,
    /// Final layer-normed output (`T x d`).
    pub out: Mat,
}

/// Gradients mirror the parameter layout.
pub(crate) struct Grads {
    pub tok_emb: Mat,
    pub pos_emb: Mat,
    pub layers: Vec<Layer>,
    pub fin_g: Vec<f64>,
    pub fin_b: Vec<f64>,
    pub decoder: Mat,
    pub dec_b: Vec<f64>,
}

impl Grads {
    /// Mirror of [`MiniBert::visit_mut`] over the gradient blocks.
    pub(crate) fn visit_mut(&mut self, f: &mut impl FnMut(&mut [f64])) {
        f(self.tok_emb.as_mut_slice());
        f(self.pos_emb.as_mut_slice());
        for l in &mut self.layers {
            l.visit_mut(f);
        }
        f(&mut self.fin_g);
        f(&mut self.fin_b);
        f(self.decoder.as_mut_slice());
        f(&mut self.dec_b);
    }
}

impl MiniBert {
    /// Builds a randomly initialized model.
    ///
    /// # Panics
    ///
    /// Panics if `dim % heads != 0` or any size is zero.
    pub fn new(config: &BertConfig) -> Self {
        assert!(
            config.dim > 0 && config.heads > 0 && config.layers > 0,
            "sizes must be positive"
        );
        assert!(
            config.vocab_size > 0 && config.max_len > 0,
            "sizes must be positive"
        );
        assert_eq!(
            config.dim % config.heads,
            0,
            "dim must be divisible by heads"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let d = config.dim;
        let ffn = config.ffn_mult.max(1) * d;
        MiniBert {
            tok_emb: Mat::random_normal(config.vocab_size + 1, d, &mut rng)
                .scale(0.02 * (d as f64).sqrt()),
            pos_emb: Mat::random_normal(config.max_len, d, &mut rng)
                .scale(0.02 * (d as f64).sqrt()),
            layers: (0..config.layers)
                .map(|_| Layer::new(d, ffn, &mut rng))
                .collect(),
            fin_g: vec![1.0; d],
            fin_b: vec![0.0; d],
            decoder: Mat::random_normal(config.vocab_size, d, &mut rng).scale(0.02),
            dec_b: vec![0.0; config.vocab_size],
            config: config.clone(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    /// The `[MASK]` token id.
    pub fn mask_id(&self) -> u32 {
        self.config.vocab_size as u32
    }

    /// Encodes a token sequence, returning the last transformer layer's
    /// output (`T x dim`) — the contextual word representations the paper
    /// feeds to downstream classifiers.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or longer than `max_len`, or a
    /// token id exceeds the vocabulary (the mask id is allowed).
    pub fn encode(&self, tokens: &[u32]) -> Mat {
        self.forward(tokens).out
    }

    /// Mean-pooled sentence embedding from [`MiniBert::encode`].
    pub fn sentence_embedding(&self, tokens: &[u32]) -> Vec<f64> {
        let enc = self.encode(tokens);
        let mut out = vec![0.0; enc.cols()];
        for t in 0..enc.rows() {
            vecops::axpy(1.0 / enc.rows() as f64, enc.row(t), &mut out);
        }
        out
    }

    pub(crate) fn forward(&self, tokens: &[u32]) -> Caches {
        let t_len = tokens.len();
        assert!(t_len > 0, "cannot encode an empty sequence");
        assert!(t_len <= self.config.max_len, "sequence exceeds max_len");
        let d = self.config.dim;
        let mut x = Mat::zeros(t_len, d);
        for (t, &id) in tokens.iter().enumerate() {
            assert!((id as usize) < self.tok_emb.rows(), "token id out of range");
            let row = x.row_mut(t);
            row.copy_from_slice(self.tok_emb.row(id as usize));
            vecops::axpy(1.0, self.pos_emb.row(t), row);
        }
        let mut layer_caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (next, cache) = self.layer_forward(layer, x);
            layer_caches.push(cache);
            x = next;
        }
        let (out, fin) = ln_forward(&x, &self.fin_g, &self.fin_b);
        Caches {
            ids: tokens.to_vec(),
            layers: layer_caches,
            fin,
            out,
        }
    }

    fn layer_forward(&self, l: &Layer, x: Mat) -> (Mat, LayerCache) {
        let (t_len, d) = x.shape();
        let heads = self.config.heads;
        let dh = d / heads;
        let (h1, ln1) = ln_forward(&x, &l.ln1_g, &l.ln1_b);
        let q = linear(&h1, &l.wq, &l.bq);
        let k = linear(&h1, &l.wk, &l.bk);
        let v = linear(&h1, &l.wv, &l.bv);
        let scale = 1.0 / (dh as f64).sqrt();
        let mut probs = Vec::with_capacity(heads);
        let mut ctx = Mat::zeros(t_len, d);
        for h in 0..heads {
            let cols = h * dh..(h + 1) * dh;
            // scores = Q_h K_h^T * scale
            let mut p = Mat::zeros(t_len, t_len);
            for i in 0..t_len {
                for j in 0..t_len {
                    p[(i, j)] =
                        scale * vecops::dot(&q.row(i)[cols.clone()], &k.row(j)[cols.clone()]);
                }
                vecops::softmax_inplace(p.row_mut(i));
            }
            for i in 0..t_len {
                for j in 0..t_len {
                    let w = p[(i, j)];
                    if w == 0.0 {
                        continue;
                    }
                    let vr = &v.row(j)[cols.clone()];
                    let cr = &mut ctx.row_mut(i)[cols.clone()];
                    for (c, &vv) in cr.iter_mut().zip(vr) {
                        *c += w * vv;
                    }
                }
            }
            probs.push(p);
        }
        let attn = linear(&ctx, &l.wo, &l.bo);
        let x_mid = x.add(&attn);
        let (h2, ln2) = ln_forward(&x_mid, &l.ln2_g, &l.ln2_b);
        let pre = linear(&h2, &l.w1, &l.b1);
        let mut act = pre.clone();
        for a in act.as_mut_slice() {
            *a = gelu(*a);
        }
        let ff = linear(&act, &l.w2, &l.b2);
        let x_out = x_mid.add(&ff);
        (
            x_out,
            LayerCache {
                x_in: x,
                ln1,
                q,
                k,
                v,
                probs,
                ctx,
                ln2,
                pre,
                act,
            },
        )
    }

    /// Backpropagates `d_out` (gradient w.r.t. the final normed output)
    /// through the whole model, accumulating into `grads`.
    pub(crate) fn backward(&self, caches: &Caches, d_out: &Mat, grads: &mut Grads) {
        let mut dx = ln_backward(
            d_out,
            &caches.fin,
            &self.fin_g,
            &mut grads.fin_g,
            &mut grads.fin_b,
        );
        for i in (0..self.layers.len()).rev() {
            dx = self.layer_backward(&self.layers[i], &caches.layers[i], dx, grads, i);
        }
        // Embedding gradients.
        for (t, &id) in caches.ids.iter().enumerate() {
            vecops::axpy(1.0, dx.row(t), grads.tok_emb.row_mut(id as usize));
            vecops::axpy(1.0, dx.row(t), grads.pos_emb.row_mut(t));
        }
    }

    fn layer_backward(
        &self,
        l: &Layer,
        c: &LayerCache,
        d_out: Mat,
        grads: &mut Grads,
        layer_idx: usize,
    ) -> Mat {
        let g = &mut grads.layers[layer_idx];
        let (t_len, d) = c.x_in.shape();
        let heads = self.config.heads;
        let dh = d / heads;
        // FFN branch: x_out = x_mid + W2 gelu(W1 ln2(x_mid) + b1) + b2.
        let d_ff = &d_out; // gradient into the ff output
        let (d_act, dw2, db2) = linear_backward(d_ff, &c.act, &l.w2);
        g.w2.axpy(1.0, &dw2);
        vecops::axpy(1.0, &db2, &mut g.b2);
        let mut d_pre = d_act;
        for (dp, &p) in d_pre.as_mut_slice().iter_mut().zip(c.pre.as_slice()) {
            *dp *= gelu_grad(p);
        }
        let h2 = reconstruct_ln_output(&c.ln2, &l.ln2_g, &l.ln2_b);
        let (d_h2, dw1, db1) = linear_backward(&d_pre, &h2, &l.w1);
        g.w1.axpy(1.0, &dw1);
        vecops::axpy(1.0, &db1, &mut g.b1);
        let mut d_xmid = ln_backward(&d_h2, &c.ln2, &l.ln2_g, &mut g.ln2_g, &mut g.ln2_b);
        d_xmid.axpy(1.0, &d_out); // residual

        // Attention branch: x_mid = x_in + Wo ctx + bo.
        let (d_ctx, dwo, dbo) = linear_backward(&d_xmid, &c.ctx, &l.wo);
        g.wo.axpy(1.0, &dwo);
        vecops::axpy(1.0, &dbo, &mut g.bo);
        let scale = 1.0 / (dh as f64).sqrt();
        let mut dq = Mat::zeros(t_len, d);
        let mut dk = Mat::zeros(t_len, d);
        let mut dv = Mat::zeros(t_len, d);
        for h in 0..heads {
            let cols = h * dh..(h + 1) * dh;
            let p = &c.probs[h];
            // dv and dp.
            let mut dp = Mat::zeros(t_len, t_len);
            for i in 0..t_len {
                let dctx_i = &d_ctx.row(i)[cols.clone()];
                for j in 0..t_len {
                    dp[(i, j)] = vecops::dot(dctx_i, &c.v.row(j)[cols.clone()]);
                    let w = p[(i, j)];
                    if w != 0.0 {
                        let dvr = &mut dv.row_mut(j)[cols.clone()];
                        for (dvv, &dc) in dvr.iter_mut().zip(dctx_i) {
                            *dvv += w * dc;
                        }
                    }
                }
            }
            // Softmax backward per row: ds = (dp - <dp, p>) * p.
            for i in 0..t_len {
                let dot = vecops::dot(dp.row(i), p.row(i));
                for j in 0..t_len {
                    let ds = (dp[(i, j)] - dot) * p[(i, j)] * scale;
                    if ds == 0.0 {
                        continue;
                    }
                    // dq_i += ds * k_j; dk_j += ds * q_i.
                    let kj = &c.k.row(j)[cols.clone()];
                    let dqr = &mut dq.row_mut(i)[cols.clone()];
                    for (a, &b) in dqr.iter_mut().zip(kj) {
                        *a += ds * b;
                    }
                    let qi = &c.q.row(i)[cols.clone()];
                    let dkr = &mut dk.row_mut(j)[cols.clone()];
                    for (a, &b) in dkr.iter_mut().zip(qi) {
                        *a += ds * b;
                    }
                }
            }
        }
        let h1 = reconstruct_ln_output(&c.ln1, &l.ln1_g, &l.ln1_b);
        let (d_h1q, dwq, dbq) = linear_backward(&dq, &h1, &l.wq);
        let (d_h1k, dwk, dbk) = linear_backward(&dk, &h1, &l.wk);
        let (d_h1v, dwv, dbv) = linear_backward(&dv, &h1, &l.wv);
        g.wq.axpy(1.0, &dwq);
        g.wk.axpy(1.0, &dwk);
        g.wv.axpy(1.0, &dwv);
        vecops::axpy(1.0, &dbq, &mut g.bq);
        vecops::axpy(1.0, &dbk, &mut g.bk);
        vecops::axpy(1.0, &dbv, &mut g.bv);
        let d_h1 = d_h1q.add(&d_h1k).add(&d_h1v);
        let mut dx = ln_backward(&d_h1, &c.ln1, &l.ln1_g, &mut g.ln1_g, &mut g.ln1_b);
        dx.axpy(1.0, &d_xmid); // residual
        dx
    }

    /// Visits every parameter block as a mutable slice, in a fixed order
    /// shared with [`Grads::visit_mut`]; the MLM optimizer pairs parameter
    /// and gradient blocks through this traversal.
    pub(crate) fn visit_mut(&mut self, f: &mut impl FnMut(&mut [f64])) {
        f(self.tok_emb.as_mut_slice());
        f(self.pos_emb.as_mut_slice());
        for l in &mut self.layers {
            l.visit_mut(f);
        }
        f(&mut self.fin_g);
        f(&mut self.fin_b);
        f(self.decoder.as_mut_slice());
        f(&mut self.dec_b);
    }

    pub(crate) fn zero_grads(&self) -> Grads {
        Grads {
            tok_emb: Mat::zeros(self.tok_emb.rows(), self.tok_emb.cols()),
            pos_emb: Mat::zeros(self.pos_emb.rows(), self.pos_emb.cols()),
            layers: self.layers.iter().map(Layer::zeros_like).collect(),
            fin_g: vec![0.0; self.fin_g.len()],
            fin_b: vec![0.0; self.fin_b.len()],
            decoder: Mat::zeros(self.decoder.rows(), self.decoder.cols()),
            dec_b: vec![0.0; self.dec_b.len()],
        }
    }
}

/// `y = x W^T + b` for `x: T x in`, `W: out x in`.
pub(crate) fn linear(x: &Mat, w: &Mat, b: &[f64]) -> Mat {
    let mut y = x.matmul_nt(w);
    for i in 0..y.rows() {
        vecops::axpy(1.0, b, y.row_mut(i));
    }
    y
}

/// Backward of [`linear`]: returns `(dx, dW, db)`.
pub(crate) fn linear_backward(dy: &Mat, x: &Mat, w: &Mat) -> (Mat, Mat, Vec<f64>) {
    let dx = dy.matmul(w);
    let dw = dy.matmul_tn(x);
    let mut db = vec![0.0; dy.cols()];
    for i in 0..dy.rows() {
        vecops::axpy(1.0, dy.row(i), &mut db);
    }
    (dx, dw, db)
}

const LN_EPS: f64 = 1e-5;

pub(crate) fn ln_forward(x: &Mat, gamma: &[f64], beta: &[f64]) -> (Mat, LnCache) {
    let (t_len, d) = x.shape();
    let mut out = Mat::zeros(t_len, d);
    let mut xhat = Mat::zeros(t_len, d);
    let mut inv_std = Vec::with_capacity(t_len);
    for t in 0..t_len {
        let row = x.row(t);
        let mean = row.iter().sum::<f64>() / d as f64;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / d as f64;
        let istd = 1.0 / (var + LN_EPS).sqrt();
        inv_std.push(istd);
        for j in 0..d {
            let xh = (row[j] - mean) * istd;
            xhat[(t, j)] = xh;
            out[(t, j)] = gamma[j] * xh + beta[j];
        }
    }
    (out, LnCache { xhat, inv_std })
}

pub(crate) fn ln_backward(
    dy: &Mat,
    cache: &LnCache,
    gamma: &[f64],
    dgamma: &mut [f64],
    dbeta: &mut [f64],
) -> Mat {
    let (t_len, d) = dy.shape();
    let mut dx = Mat::zeros(t_len, d);
    for t in 0..t_len {
        let mut sum_dxhat = 0.0;
        let mut sum_dxhat_xhat = 0.0;
        for j in 0..d {
            let dyv = dy[(t, j)];
            let xh = cache.xhat[(t, j)];
            dgamma[j] += dyv * xh;
            dbeta[j] += dyv;
            let dxhat = dyv * gamma[j];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * xh;
        }
        let istd = cache.inv_std[t];
        for j in 0..d {
            let dxhat = dy[(t, j)] * gamma[j];
            dx[(t, j)] = istd / d as f64
                * (d as f64 * dxhat - sum_dxhat - cache.xhat[(t, j)] * sum_dxhat_xhat);
        }
    }
    dx
}

/// Re-materializes the LN output from its cache (cheaper than storing it).
fn reconstruct_ln_output(cache: &LnCache, gamma: &[f64], beta: &[f64]) -> Mat {
    let (t_len, d) = cache.xhat.shape();
    Mat::from_fn(t_len, d, |t, j| gamma[j] * cache.xhat[(t, j)] + beta[j])
}

const GELU_C: f64 = 0.797_884_560_802_865_4; // sqrt(2/pi)
const GELU_A: f64 = 0.044715;

/// GELU activation (tanh approximation, as in BERT).
pub(crate) fn gelu(x: f64) -> f64 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
pub(crate) fn gelu_grad(x: f64) -> f64 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MiniBert {
        MiniBert::new(&BertConfig {
            vocab_size: 12,
            max_len: 8,
            dim: 8,
            heads: 2,
            layers: 2,
            ffn_mult: 2,
            seed: 0,
        })
    }

    #[test]
    fn encode_shapes() {
        let bert = tiny();
        let enc = bert.encode(&[1, 5, 3]);
        assert_eq!(enc.shape(), (3, 8));
        assert!(enc.is_finite());
        assert_eq!(bert.sentence_embedding(&[1, 5, 3]).len(), 8);
    }

    #[test]
    fn encoding_is_contextual() {
        // The same token in different contexts gets different vectors.
        let bert = tiny();
        let a = bert.encode(&[4, 2, 7]);
        let b = bert.encode(&[9, 2, 1]);
        let va = a.row(1);
        let vb = b.row(1);
        assert!(
            vecops::sq_distance(va, vb) > 1e-8,
            "token 2 should encode differently across contexts"
        );
    }

    #[test]
    fn gelu_matches_known_values() {
        assert!((gelu(0.0)).abs() < 1e-12);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Gradient vs finite differences.
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.7] {
            let eps = 1e-6;
            let fd = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!((fd - gelu_grad(x)).abs() < 1e-8, "gelu'({x})");
        }
    }

    #[test]
    fn layernorm_forward_and_backward() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Mat::random_normal(3, 6, &mut rng);
        let gamma: Vec<f64> = (0..6).map(|i| 0.5 + 0.1 * i as f64).collect();
        let beta: Vec<f64> = (0..6).map(|i| -0.2 + 0.05 * i as f64).collect();
        let (y, cache) = ln_forward(&x, &gamma, &beta);
        // Rows of xhat have zero mean and unit variance.
        for t in 0..3 {
            let m: f64 = cache.xhat.row(t).iter().sum::<f64>() / 6.0;
            assert!(m.abs() < 1e-10);
        }
        // Finite-difference check of dx for a random upstream gradient.
        let dy = Mat::random_normal(3, 6, &mut rng);
        let mut dgamma = vec![0.0; 6];
        let mut dbeta = vec![0.0; 6];
        let dx = ln_backward(&dy, &cache, &gamma, &mut dgamma, &mut dbeta);
        let loss = |xx: &Mat| -> f64 {
            let (yy, _) = ln_forward(xx, &gamma, &beta);
            yy.frob_inner(&dy)
        };
        let eps = 1e-6;
        for t in 0..3 {
            for j in 0..6 {
                let mut up = x.clone();
                up[(t, j)] += eps;
                let mut down = x.clone();
                down[(t, j)] -= eps;
                let fd = (loss(&up) - loss(&down)) / (2.0 * eps);
                assert!(
                    (fd - dx[(t, j)]).abs() < 1e-6,
                    "LN dx ({t},{j}): fd {fd} vs {}",
                    dx[(t, j)]
                );
            }
        }
        let _ = y;
    }

    /// Full-model gradient check: backprop through 2 transformer layers
    /// against finite differences, for a sample of parameters in every
    /// block type.
    #[test]
    fn full_backprop_gradient_check() {
        let bert = tiny();
        let tokens = [3u32, 7, 1, 9];
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let d_out_fixed = Mat::random_normal(4, 8, &mut rng);
        // Loss = <encode(tokens), d_out_fixed> so d(loss)/d(out) = d_out_fixed.
        let loss = |m: &MiniBert| -> f64 { m.encode(&tokens).frob_inner(&d_out_fixed) };
        let caches = bert.forward(&tokens);
        let mut grads = bert.zero_grads();
        bert.backward(&caches, &d_out_fixed, &mut grads);
        let eps = 1e-6;
        let tol = 1e-5;

        // Token embedding of a used id.
        let mut m2 = bert.clone();
        for j in [0usize, 3, 7] {
            let orig = m2.tok_emb[(3, j)];
            m2.tok_emb[(3, j)] = orig + eps;
            let up = loss(&m2);
            m2.tok_emb[(3, j)] = orig - eps;
            let down = loss(&m2);
            m2.tok_emb[(3, j)] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.tok_emb[(3, j)]).abs() < tol,
                "tok_emb (3,{j}): fd {fd} vs {}",
                grads.tok_emb[(3, j)]
            );
        }
        // Attention weights in layer 0 and FFN in layer 1.
        for (r, cc) in [(0usize, 1usize), (3, 5), (7, 2)] {
            let orig = m2.layers[0].wq[(r, cc)];
            m2.layers[0].wq[(r, cc)] = orig + eps;
            let up = loss(&m2);
            m2.layers[0].wq[(r, cc)] = orig - eps;
            let down = loss(&m2);
            m2.layers[0].wq[(r, cc)] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.layers[0].wq[(r, cc)]).abs() < tol,
                "wq ({r},{cc}): fd {fd} vs {}",
                grads.layers[0].wq[(r, cc)]
            );
        }
        for (r, cc) in [(0usize, 0usize), (5, 3), (12, 7)] {
            let orig = m2.layers[1].w1[(r, cc)];
            m2.layers[1].w1[(r, cc)] = orig + eps;
            let up = loss(&m2);
            m2.layers[1].w1[(r, cc)] = orig - eps;
            let down = loss(&m2);
            m2.layers[1].w1[(r, cc)] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.layers[1].w1[(r, cc)]).abs() < tol,
                "w1 ({r},{cc}): fd {fd} vs {}",
                grads.layers[1].w1[(r, cc)]
            );
        }
        // Wo, Wv, LN gains, and final LN.
        for j in 0..4 {
            let orig = m2.layers[0].ln1_g[j];
            m2.layers[0].ln1_g[j] = orig + eps;
            let up = loss(&m2);
            m2.layers[0].ln1_g[j] = orig - eps;
            let down = loss(&m2);
            m2.layers[0].ln1_g[j] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.layers[0].ln1_g[j]).abs() < tol,
                "ln1_g {j}: fd {fd} vs {}",
                grads.layers[0].ln1_g[j]
            );
        }
        type Access = (
            &'static str,
            fn(&mut MiniBert) -> &mut Mat,
            fn(&Grads) -> &Mat,
        );
        let blocks: [Access; 3] = [
            ("wo", |m| &mut m.layers[0].wo, |g| &g.layers[0].wo),
            ("wv", |m| &mut m.layers[0].wv, |g| &g.layers[0].wv),
            ("wk", |m| &mut m.layers[0].wk, |g| &g.layers[0].wk),
        ];
        for (r, cc) in [(2usize, 2usize), (6, 1)] {
            for (name, param, grad) in &blocks {
                let gval = grad(&grads)[(r, cc)];
                let orig = param(&mut m2)[(r, cc)];
                param(&mut m2)[(r, cc)] = orig + eps;
                let up = loss(&m2);
                param(&mut m2)[(r, cc)] = orig - eps;
                let down = loss(&m2);
                param(&mut m2)[(r, cc)] = orig;
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - gval).abs() < tol,
                    "{name} ({r},{cc}): fd {fd} vs {gval}"
                );
            }
        }
        for j in 0..8 {
            let orig = m2.fin_g[j];
            m2.fin_g[j] = orig + eps;
            let up = loss(&m2);
            m2.fin_g[j] = orig - eps;
            let down = loss(&m2);
            m2.fin_g[j] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.fin_g[j]).abs() < tol,
                "fin_g {j}: fd {fd} vs {}",
                grads.fin_g[j]
            );
        }
    }
}
