//! Property-based tests for the linear-algebra substrate.

use embedstab_linalg::{align, cholesky, lstsq, orthogonal_procrustes, Mat};
use proptest::prelude::*;

/// Strategy: a matrix with bounded entries and shape in the given ranges.
fn mat_strategy(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Mat> {
    (rows, cols).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Mat::from_vec(m, n, data))
    })
}

/// Strategy: a tall matrix (rows >= cols).
fn tall_mat_strategy() -> impl Strategy<Value = Mat> {
    (1usize..8, 0usize..12).prop_flat_map(|(n, extra)| {
        let m = n + extra;
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Mat::from_vec(m, n, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn svd_reconstructs(a in mat_strategy(1..20, 1..10)) {
        let svd = a.svd();
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(svd.reconstruct().sub(&a).frobenius_norm() / scale < 1e-8);
    }

    #[test]
    fn svd_values_sorted_and_nonnegative(a in mat_strategy(1..20, 1..10)) {
        let svd = a.svd();
        for w in svd.s.windows(2) {
            prop_assert!(w[0] + 1e-12 >= w[1]);
        }
        prop_assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn svd_frobenius_identity(a in mat_strategy(1..20, 1..10)) {
        // sum of squared singular values equals squared Frobenius norm.
        let svd = a.svd();
        let sum_sq: f64 = svd.s.iter().map(|x| x * x).sum();
        let f = a.frobenius_norm_sq();
        prop_assert!((sum_sq - f).abs() <= 1e-8 * f.max(1.0));
    }

    #[test]
    fn qr_q_orthonormal_and_reconstructs(a in tall_mat_strategy()) {
        let (q, r) = a.qr();
        let eye = Mat::identity(a.cols());
        prop_assert!(q.gram().sub(&eye).frobenius_norm() < 1e-8);
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(q.matmul(&r).sub(&a).frobenius_norm() / scale < 1e-8);
    }

    #[test]
    fn matmul_associates_with_vectors(
        a in mat_strategy(1..8, 1..8),
        xs in proptest::collection::vec(-5.0f64..5.0, 1..8)
    ) {
        // (A x) computed two ways: matvec vs 1-column matmul.
        prop_assume!(xs.len() == a.cols());
        let x_mat = Mat::from_vec(xs.len(), 1, xs.clone());
        let via_mm = a.matmul(&x_mat);
        let via_mv = a.matvec(&xs);
        for i in 0..a.rows() {
            prop_assert!((via_mm[(i, 0)] - via_mv[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn procrustes_is_orthogonal_and_never_hurts(
        x in mat_strategy(4..15, 2..5),
        seed in 0u64..1000
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        prop_assume!(x.cols() <= x.rows());
        let y = Mat::random_normal(x.rows(), x.cols(), &mut rng);
        let omega = orthogonal_procrustes(&x, &y);
        let eye = Mat::identity(x.cols());
        prop_assert!(omega.gram().sub(&eye).frobenius_norm() < 1e-7);
        let aligned = align(&x, &y);
        prop_assert!(
            x.sub(&aligned).frobenius_norm() <= x.sub(&y).frobenius_norm() + 1e-7
        );
    }

    #[test]
    fn cholesky_roundtrip_on_gram(a in tall_mat_strategy()) {
        // A^T A + eps I is SPD; L L^T must reconstruct it.
        let mut g = a.gram();
        for i in 0..g.rows() {
            g[(i, i)] += 1e-6;
        }
        let l = cholesky(&g).expect("SPD by construction");
        let recon = l.matmul_nt(&l);
        let scale = g.frobenius_norm().max(1.0);
        prop_assert!(recon.sub(&g).frobenius_norm() / scale < 1e-9);
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns(a in tall_mat_strategy()) {
        prop_assume!(a.rows() > a.cols());
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let y = Mat::random_normal(a.rows(), 1, &mut rng);
        if let Some(w) = lstsq(&a, &y, 1e-9) {
            let resid = y.sub(&a.matmul(&w));
            let at_r = a.matmul_tn(&resid);
            // Normal equations: A^T r ~ 0 (up to the tiny ridge).
            prop_assert!(at_r.frobenius_norm() < 1e-4 * y.frobenius_norm().max(1.0));
        }
    }

    #[test]
    fn transpose_involution(a in mat_strategy(1..12, 1..12)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }
}
