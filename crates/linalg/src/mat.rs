//! The dense row-major matrix type used throughout the workspace.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::{Rng, RngExt};

/// A dense, row-major `f64` matrix.
///
/// `Mat` is the single numeric container shared by every crate in the
/// workspace: embedding matrices, Gram products, classifier weights, and
/// LSTM parameter blocks are all `Mat`s.
///
/// # Example
///
/// ```
/// use embedstab_linalg::Mat;
///
/// let m = Mat::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.transpose()[(2, 1)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Mat {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from an explicit row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Mat { rows, cols, data }
    }

    /// Fallible [`Mat::from_vec`]: `None` when `data.len() != rows * cols`
    /// (or the product overflows). Decoders and serve paths must use this
    /// — the shape there comes from wire bytes or batched user input, and
    /// a malformed shape is a protocol error, not a programmer error.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Option<Self> {
        if rows.checked_mul(cols) != Some(data.len()) {
            return None;
        }
        Some(Mat { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix with i.i.d. entries sampled uniformly from `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Self {
        Mat::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
    }

    /// Creates a matrix with i.i.d. standard-normal entries (Box-Muller).
    pub fn random_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let len = rows * cols;
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let t = 2.0 * std::f64::consts::PI * u2;
            data.push(r * t.cos());
            if data.len() < len {
                data.push(r * t.sin());
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Two disjoint mutable rows `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of bounds.
    pub fn two_rows_mut(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert!(i != j, "rows must be distinct");
        assert!(i < self.rows && j < self.rows, "row index out of bounds");
        let c = self.cols;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (head, tail) = self.data.split_at_mut(hi * c);
        let lo_row = &mut head[lo * c..(lo + 1) * c];
        let hi_row = &mut tail[..c];
        if i < j {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// Column `j` as an owned vector (strided copy).
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major data, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The transpose of the matrix.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let r = self.row(i);
            for (j, &x) in r.iter().enumerate() {
                out.data[j * self.rows + i] = x;
            }
        }
        out
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// The matrix scaled by `s`.
    pub fn scale(&self, s: f64) -> Mat {
        let data = self.data.iter().map(|a| a * s).collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds `s * other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: f64, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        (0..self.rows)
            .map(|i| crate::vecops::dot(self.row(i), x))
            .collect()
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vector length must equal rows");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        out
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.frobenius_norm_sq().sqrt()
    }

    /// Frobenius inner product `sum_ij self_ij * other_ij`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn frob_inner(&self, other: &Mat) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in frob_inner");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Returns the submatrix consisting of the given rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Mat {
        let mut out = Mat::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Returns the first `k` columns as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k > cols`.
    pub fn truncate_cols(&self, k: usize) -> Mat {
        assert!(k <= self.cols, "cannot keep more columns than exist");
        let mut out = Mat::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        out
    }

    /// True if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            let r = self.row(i);
            let shown: Vec<String> = r.iter().take(8).map(|x| format!("{x:9.4}")).collect();
            let ell = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ell)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn try_from_vec_validates_shape() {
        let m = Mat::try_from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m, Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        assert!(Mat::try_from_vec(2, 2, vec![1.0]).is_none());
        assert!(Mat::try_from_vec(usize::MAX, 2, vec![1.0]).is_none());
        assert!(Mat::try_from_vec(0, 0, Vec::new()).is_some());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn add_sub_scale_axpy() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.add(&b)[(1, 1)], 12.0);
        assert_eq!(b.sub(&a)[(0, 0)], 4.0);
        assert_eq!(a.scale(2.0)[(1, 0)], 6.0);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c[(0, 1)], 5.0);
    }

    #[test]
    fn matvec_agrees_with_manual() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn two_rows_mut_disjoint() {
        let mut m = Mat::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let (a, b) = m.two_rows_mut(3, 1);
        a[0] = -1.0;
        b[1] = -2.0;
        assert_eq!(m[(3, 0)], -1.0);
        assert_eq!(m[(1, 1)], -2.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn two_rows_mut_same_row_panics() {
        let mut m = Mat::zeros(2, 2);
        let _ = m.two_rows_mut(1, 1);
    }

    #[test]
    fn select_and_truncate() {
        let m = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), m.row(2));
        assert_eq!(s.row(1), m.row(0));
        let t = m.truncate_cols(2);
        assert_eq!(t.shape(), (4, 2));
        assert_eq!(t[(3, 1)], m[(3, 1)]);
    }

    #[test]
    fn norms_and_trace() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.trace(), 7.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn random_normal_moments() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = Mat::random_normal(200, 50, &mut rng);
        let n = (200 * 50) as f64;
        let mean: f64 = m.as_slice().iter().sum::<f64>() / n;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
