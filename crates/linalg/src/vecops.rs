//! Vector kernels shared by trainers and measures.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        s += x * y;
    }
    s
}

/// `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Normalizes `x` to unit Euclidean norm; leaves zero vectors untouched.
pub fn normalize(x: &mut [f64]) {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
}

/// Cosine similarity in `[-1, 1]`; `0` when either vector is zero.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine distance `1 - cosine_similarity`.
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    1.0 - cosine_similarity(a, b)
}

/// `sum_i |a_i - b_i|` (L1 distance).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn sq_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_distance requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Log-sum-exp of a slice; `-inf` for an empty slice.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// In-place softmax; stable for any finite input.
pub fn softmax_inplace(xs: &mut [f64]) {
    let lse = logsumexp(xs);
    for x in xs.iter_mut() {
        *x = (*x - lse).exp();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_norm() {
        let a = [1.0, 2.0, 3.0];
        let mut b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        axpy(2.0, &a, &mut b);
        assert_eq!(b, [6.0, 9.0, 12.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_bounds_and_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_and_softmax() {
        let xs = [1000.0, 1000.0];
        assert!((logsumexp(&xs) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        let mut p = [0.0, (2.0f64).ln()];
        softmax_inplace(&mut p);
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn distances() {
        assert_eq!(l1_distance(&[1.0, -1.0], &[0.0, 1.0]), 3.0);
        assert_eq!(sq_distance(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
    }
}
