//! Matrix products, with optional thread parallelism for large operands.

use crate::Mat;

/// Above this many multiply-adds, [`Mat::matmul`] splits row blocks across
/// threads with `crossbeam::scope`.
const PAR_THRESHOLD: usize = 4_000_000;

fn n_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Mat {
    /// Matrix product `self * other`.
    ///
    /// Uses an i-k-j loop order (cache friendly for row-major data) and
    /// splits row blocks across threads when the operand sizes justify it.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimensions must agree ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Mat::zeros(m, n);
        let work = m * k * n;
        let threads = n_threads();
        if work >= PAR_THRESHOLD && threads > 1 && m >= 2 * threads {
            let chunk = m.div_ceil(threads);
            let out_rows: Vec<&mut [f64]> = out.as_mut_slice().chunks_mut(chunk * n).collect();
            crossbeam::scope(|scope| {
                for (t, block) in out_rows.into_iter().enumerate() {
                    let start = t * chunk;
                    scope.spawn(move |_| {
                        mul_block(self, other, block, start, n);
                    });
                }
            })
            .expect("matmul worker thread panicked");
        } else {
            mul_block(self, other, out.as_mut_slice(), 0, n);
        }
        out
    }

    /// Transposed product `self^T * other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn: row counts must agree ({}x{} ^T * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Mat::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o = out.row_mut(i);
                for (oj, &b) in o.iter_mut().zip(b_row) {
                    *oj += a * b;
                }
            }
        }
        let _ = m;
        out
    }

    /// Product with a transposed right operand, `self * other^T`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt: column counts must agree ({}x{} * {}x{} ^T)",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, n) = (self.rows(), other.rows());
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let o = out.row_mut(i);
            for (j, oj) in o.iter_mut().enumerate() {
                *oj = crate::vecops::dot(a_row, other.row(j));
            }
        }
        out
    }

    /// The Gram matrix `self^T * self` (`cols x cols`).
    pub fn gram(&self) -> Mat {
        self.matmul_tn(self)
    }
}

fn mul_block(a: &Mat, b: &Mat, out_block: &mut [f64], row_start: usize, n: usize) {
    let rows_in_block = out_block.len() / n;
    for bi in 0..rows_in_block {
        let i = row_start + bi;
        let a_row = a.row(i);
        let o = &mut out_block[bi * n..(bi + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (oj, &bv) in o.iter_mut().zip(b_row) {
                *oj += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn naive(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Mat::random_normal(17, 9, &mut rng);
        let b = Mat::random_normal(9, 13, &mut rng);
        let c = a.matmul(&b);
        let d = naive(&a, &b);
        assert!(c.sub(&d).frobenius_norm() < 1e-10);
    }

    #[test]
    fn matmul_parallel_path_matches_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // 200*200*200 = 8M multiply-adds > threshold, exercising the parallel path.
        let a = Mat::random_normal(200, 200, &mut rng);
        let b = Mat::random_normal(200, 200, &mut rng);
        let c = a.matmul(&b);
        let d = naive(&a, &b);
        assert!(c.sub(&d).frobenius_norm() / d.frobenius_norm() < 1e-12);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Mat::random_normal(11, 5, &mut rng);
        let b = Mat::random_normal(11, 7, &mut rng);
        let tn = a.matmul_tn(&b);
        assert!(tn.sub(&a.transpose().matmul(&b)).frobenius_norm() < 1e-10);
        let c = Mat::random_normal(4, 5, &mut rng);
        let nt = a.matmul_nt(&c);
        assert!(nt.sub(&a.matmul(&c.transpose())).frobenius_norm() < 1e-10);
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = Mat::random_normal(20, 6, &mut rng);
        let g = a.gram();
        assert_eq!(g.shape(), (6, 6));
        for i in 0..6 {
            assert!(g[(i, i)] >= 0.0);
            for j in 0..6 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
