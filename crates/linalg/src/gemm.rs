//! Matrix products via a single packed, cache-blocked GEMM kernel.
//!
//! All four product entry points ([`Mat::matmul`], [`Mat::matmul_tn`],
//! [`Mat::matmul_nt`], [`Mat::gram`]) lower to one blocked kernel that
//! follows the classic BLIS/GotoBLAS decomposition:
//!
//! - the output is computed in `MC x NC` tiles, with the inner (`k`)
//!   dimension split into `KC`-deep slabs;
//! - for each slab, a `KC x NC` panel of `B` is packed into contiguous
//!   `NR`-wide column strips and an `MC x KC` panel of `A` into `MR`-tall
//!   row strips, so the inner loops only touch unit-stride memory
//!   regardless of whether the logical operand is transposed;
//! - a register-tiled `MR x NR` micro-kernel accumulates into a local
//!   array the compiler keeps in vector registers.
//!
//! Transposition is handled entirely in the packing step through strided
//! [`View`]s, which is what lets `matmul_tn`/`matmul_nt`/`gram` share the
//! kernel (and the crossbeam row-block parallelism) with `matmul`.
//! Products too small to amortize packing fall back to a simple i-k-j
//! loop, and [`Mat::matmul_naive`] exposes the textbook triple loop as the
//! reference implementation for the kernel-conformance tests.

use crate::Mat;

/// Above this many multiply-adds, the kernel splits output row blocks
/// across threads with `crossbeam::scope`.
const PAR_THRESHOLD: usize = 4_000_000;

/// Below this many multiply-adds, packing costs more than it saves and the
/// kernel falls back to a simple i-k-j loop.
const PACK_THRESHOLD: usize = 32 * 32 * 32;

/// Micro-kernel height: rows of `C` per register tile.
const MR: usize = 6;
/// Micro-kernel width: columns of `C` per register tile.
const NR: usize = 8;
/// Rows of `A` packed per cache block (multiple of `MR`).
const MC: usize = 120;
/// Depth (`k`) of one packed slab; bounds the packed-panel working set.
const KC: usize = 256;
/// Columns of `B` packed per cache block (multiple of `NR`).
const NC: usize = 512;

fn n_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A strided read-only view of one GEMM operand with logical shape
/// `rows x cols`; transposed operands are expressed by swapping strides,
/// so the packing routines never branch on orientation.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    /// Stride between logically consecutive rows.
    rs: usize,
    /// Stride between logically consecutive columns.
    cs: usize,
}

impl<'a> View<'a> {
    fn normal(m: &'a Mat) -> Self {
        View {
            data: m.as_slice(),
            rows: m.rows(),
            cols: m.cols(),
            rs: m.cols(),
            cs: 1,
        }
    }

    fn transposed(m: &'a Mat) -> Self {
        View {
            data: m.as_slice(),
            rows: m.cols(),
            cols: m.rows(),
            rs: 1,
            cs: m.cols(),
        }
    }

    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.rs + j * self.cs]
    }

    /// The sub-view of rows `start..start + len`.
    fn row_range(&self, start: usize, len: usize) -> View<'a> {
        View {
            data: &self.data[start * self.rs..],
            rows: len,
            ..*self
        }
    }
}

impl Mat {
    /// Matrix product `self * other`.
    ///
    /// Runs the packed cache-blocked kernel (see the module docs), with
    /// output row blocks split across threads when the operand sizes
    /// justify it.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimensions must agree ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let mut out = Mat::zeros(self.rows(), other.cols());
        gemm(View::normal(self), View::normal(other), &mut out);
        out
    }

    /// Transposed product `self^T * other` without materializing the
    /// transpose (the packing step reads `self` column-wise instead).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn: row counts must agree ({}x{} ^T * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let mut out = Mat::zeros(self.cols(), other.cols());
        gemm(View::transposed(self), View::normal(other), &mut out);
        out
    }

    /// Product with a transposed right operand, `self * other^T`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt: column counts must agree ({}x{} * {}x{} ^T)",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let mut out = Mat::zeros(self.rows(), other.rows());
        gemm(View::normal(self), View::transposed(other), &mut out);
        out
    }

    /// The Gram matrix `self^T * self` (`cols x cols`).
    pub fn gram(&self) -> Mat {
        self.matmul_tn(self)
    }

    /// Reference matrix product: the textbook i-j-k triple loop with no
    /// blocking, packing, or threading.
    ///
    /// This is the ground truth the kernel-conformance test suite compares
    /// the blocked kernel against, and the "before" case in the GEMM
    /// benchmarks. Use [`Mat::matmul`] everywhere else.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_naive(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul_naive: inner dimensions must agree ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += self[(i, p)] * other[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }
}

/// `out = a * b` for logical views `a` (`m x k`) and `b` (`k x n`):
/// dispatches between the small-product fallback, the serial blocked
/// kernel, and the row-block-parallel blocked kernel.
fn gemm(a: View<'_>, b: View<'_>, out: &mut Mat) {
    debug_assert_eq!(a.cols, b.rows);
    debug_assert_eq!(out.shape(), (a.rows, b.cols));
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let work = m * k * n;
    if work < PACK_THRESHOLD {
        gemm_small(a, b, out.as_mut_slice(), n);
        return;
    }
    let threads = n_threads();
    if work >= PAR_THRESHOLD && threads > 1 && m >= 2 * threads {
        let chunk = m.div_ceil(threads);
        let blocks: Vec<&mut [f64]> = out.as_mut_slice().chunks_mut(chunk * n).collect();
        crossbeam::scope(|scope| {
            for (t, block) in blocks.into_iter().enumerate() {
                let a_sub = a.row_range(t * chunk, block.len() / n);
                scope.spawn(move |_| gemm_blocked(a_sub, b, block, n));
            }
        })
        .expect("gemm worker thread panicked");
    } else {
        gemm_blocked(a, b, out.as_mut_slice(), n);
    }
}

/// Unpacked i-k-j product for operands too small to amortize packing.
fn gemm_small(a: View<'_>, b: View<'_>, c: &mut [f64], n: usize) {
    for i in 0..a.rows {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..a.cols {
            let av = a.at(i, p);
            if av == 0.0 {
                continue;
            }
            if b.cs == 1 {
                let brow = &b.data[p * b.rs..p * b.rs + n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            } else {
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv += av * b.at(p, j);
                }
            }
        }
    }
}

/// The packed blocked kernel for one row slab of the output: `c` holds
/// rows `0..a.rows` of the product as a dense `a.rows x n` block.
fn gemm_blocked(a: View<'_>, b: View<'_>, c: &mut [f64], n: usize) {
    let (m, k) = (a.rows, a.cols);
    let mut bp = vec![0.0; KC * NC];
    let mut ap = vec![0.0; MC * KC];
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut bp, b, pc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&mut ap, a, ic, mc, pc, kc);
                macro_kernel(&ap, &bp, c, n, ic, mc, jc, nc, kc);
            }
        }
    }
}

/// Packs `b[pc..pc+kc][jc..jc+nc]` into `NR`-wide column strips, each laid
/// out depth-major so the micro-kernel reads `NR` contiguous values per
/// `k` step. Ragged right edges are zero-padded to a full strip.
fn pack_b(bp: &mut [f64], b: View<'_>, pc: usize, kc: usize, jc: usize, nc: usize) {
    let mut idx = 0;
    for jp in (0..nc).step_by(NR) {
        let w = NR.min(nc - jp);
        for p in 0..kc {
            let base = (pc + p) * b.rs + (jc + jp) * b.cs;
            let strip = &mut bp[idx..idx + NR];
            for (c, v) in strip[..w].iter_mut().enumerate() {
                *v = b.data[base + c * b.cs];
            }
            strip[w..].fill(0.0);
            idx += NR;
        }
    }
}

/// Packs `a[ic..ic+mc][pc..pc+kc]` into `MR`-tall row strips, depth-major,
/// zero-padding ragged bottom edges to a full strip.
fn pack_a(ap: &mut [f64], a: View<'_>, ic: usize, mc: usize, pc: usize, kc: usize) {
    let mut idx = 0;
    for ip in (0..mc).step_by(MR) {
        let h = MR.min(mc - ip);
        for p in 0..kc {
            let base = (ic + ip) * a.rs + (pc + p) * a.cs;
            let strip = &mut ap[idx..idx + MR];
            for (r, v) in strip[..h].iter_mut().enumerate() {
                *v = a.data[base + r * a.rs];
            }
            strip[h..].fill(0.0);
            idx += MR;
        }
    }
}

/// Runs the register-tiled micro-kernel over one packed `mc x kc` A panel
/// and `kc x nc` B panel, accumulating into the `c` block.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    n: usize,
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
) {
    for (pi, ip) in (0..mc).step_by(MR).enumerate() {
        let a_panel = &ap[pi * kc * MR..(pi + 1) * kc * MR];
        let h = MR.min(mc - ip);
        for (pj, jp) in (0..nc).step_by(NR).enumerate() {
            let b_panel = &bp[pj * kc * NR..(pj + 1) * kc * NR];
            let w = NR.min(nc - jp);
            let mut acc = [[0.0f64; NR]; MR];
            micro_kernel(kc, a_panel, b_panel, &mut acc);
            for (r, acc_row) in acc.iter().enumerate().take(h) {
                let crow = &mut c[(ic + ip + r) * n + jc + jp..][..w];
                for (cv, &av) in crow.iter_mut().zip(&acc_row[..w]) {
                    *cv += av;
                }
            }
        }
    }
}

/// The `MR x NR` register tile: for each depth step, broadcasts `MR`
/// packed A values against `NR` packed B values. The fixed-size `acc`
/// array stays in vector registers across the `kc` loop.
///
/// The body is monomorphic safe Rust; [`micro_kernel`] dispatches it
/// either directly (baseline codegen) or through a `#[target_feature]`
/// wrapper so LLVM can emit AVX2+FMA for the same source when the CPU
/// supports it.
#[inline(always)]
fn micro_kernel_body(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    debug_assert_eq!(a_panel.len(), kc * MR);
    debug_assert_eq!(b_panel.len(), kc * NR);
    // Two depth steps per iteration: enough independent FMA chains to hide
    // the instruction latency without spilling the 6x8 accumulator tile.
    let pairs = kc / 2;
    for p in 0..pairs {
        let a: &[f64; 2 * MR] = a_panel[p * 2 * MR..(p + 1) * 2 * MR]
            .try_into()
            .expect("MR strip pair");
        let b: &[f64; 2 * NR] = b_panel[p * 2 * NR..(p + 1) * 2 * NR]
            .try_into()
            .expect("NR strip pair");
        for r in 0..MR {
            let (a0, a1) = (a[r], a[MR + r]);
            for (c, av) in acc[r].iter_mut().enumerate() {
                *av += a0 * b[c] + a1 * b[NR + c];
            }
        }
    }
    if kc % 2 == 1 {
        let p = kc - 1;
        let a: &[f64; MR] = a_panel[p * MR..p * MR + MR].try_into().expect("MR strip");
        let b: &[f64; NR] = b_panel[p * NR..p * NR + NR].try_into().expect("NR strip");
        for r in 0..MR {
            let ar = a[r];
            for (av, &bv) in acc[r].iter_mut().zip(b) {
                *av += ar * bv;
            }
        }
    }
}

/// AVX2+FMA instantiation of the micro-kernel body. The default x86-64
/// target only guarantees SSE2; re-compiling the same safe body under
/// `target_feature` roughly doubles the vector width and fuses the
/// multiply-adds.
///
/// # Safety
///
/// The *only* unsafety is instruction-set availability: the body is plain
/// safe Rust (slice-indexed, bounds-checked), but compiling it under
/// `target_feature(avx2, fma)` lets rustc emit AVX2/FMA instructions that
/// fault with SIGILL on CPUs lacking them. Callers must therefore have
/// verified **both** `avx2` and `fma` via `is_x86_feature_detected!` on the
/// running CPU before calling — a compile-time `cfg(target_feature)` check
/// is not enough, since this crate builds for generic x86-64. Panel-layout
/// expectations (`a_panel.len() >= kc * MR`, `b_panel.len() >= kc * NR`,
/// packed by `pack_a`/`pack_b`) are enforced by the safe body's slice
/// indexing, not by this contract.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_kernel_avx2(
    kc: usize,
    a_panel: &[f64],
    b_panel: &[f64],
    acc: &mut [[f64; NR]; MR],
) {
    micro_kernel_body(kc, a_panel, b_panel, acc);
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn micro_kernel(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    // Feature detection is cached by std; this is a load + branch per tile.
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: `micro_kernel_avx2`'s sole precondition is that the
        // running CPU supports avx2 and fma; both were verified on the
        // lines above via runtime feature detection, so the specialized
        // instructions cannot fault. No pointer or aliasing invariants are
        // involved — the kernel body itself is safe, bounds-checked code.
        unsafe { micro_kernel_avx2(kc, a_panel, b_panel, acc) }
    } else {
        micro_kernel_body(kc, a_panel, b_panel, acc);
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn micro_kernel(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    micro_kernel_body(kc, a_panel, b_panel, acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_small_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Mat::random_normal(17, 9, &mut rng);
        let b = Mat::random_normal(9, 13, &mut rng);
        let c = a.matmul(&b);
        let d = a.matmul_naive(&b);
        assert!(c.sub(&d).frobenius_norm() < 1e-10);
    }

    #[test]
    fn blocked_path_matches_naive_across_block_edges() {
        // Sizes straddling MR/NR/MC/KC boundaries, all above PACK_THRESHOLD.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for &(m, k, n) in &[(33, 37, 41), (128, 256, 8), (129, 257, 9), (40, 300, 40)] {
            let a = Mat::random_normal(m, k, &mut rng);
            let b = Mat::random_normal(k, n, &mut rng);
            let c = a.matmul(&b);
            let d = a.matmul_naive(&b);
            let rel = c.sub(&d).frobenius_norm() / d.frobenius_norm().max(1.0);
            assert!(rel < 1e-12, "{m}x{k}x{n}: rel err {rel}");
        }
    }

    #[test]
    fn matmul_parallel_path_matches_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // 200*200*200 = 8M multiply-adds > threshold, exercising the parallel path.
        let a = Mat::random_normal(200, 200, &mut rng);
        let b = Mat::random_normal(200, 200, &mut rng);
        let c = a.matmul(&b);
        let d = a.matmul_naive(&b);
        assert!(c.sub(&d).frobenius_norm() / d.frobenius_norm() < 1e-12);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Mat::random_normal(11, 5, &mut rng);
        let b = Mat::random_normal(11, 7, &mut rng);
        let tn = a.matmul_tn(&b);
        assert!(tn.sub(&a.transpose().matmul(&b)).frobenius_norm() < 1e-10);
        let c = Mat::random_normal(4, 5, &mut rng);
        let nt = a.matmul_nt(&c);
        assert!(nt.sub(&a.matmul(&c.transpose())).frobenius_norm() < 1e-10);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose_blocked() {
        // Above PACK_THRESHOLD so the packed kernel (strided packing) runs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = Mat::random_normal(90, 70, &mut rng);
        let b = Mat::random_normal(90, 50, &mut rng);
        let tn = a.matmul_tn(&b);
        assert!(tn.sub(&a.transpose().matmul_naive(&b)).frobenius_norm() < 1e-10);
        let c = Mat::random_normal(60, 70, &mut rng);
        let nt = a.matmul_nt(&c);
        assert!(nt.sub(&a.matmul_naive(&c.transpose())).frobenius_norm() < 1e-10);
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = Mat::random_normal(20, 6, &mut rng);
        let g = a.gram();
        assert_eq!(g.shape(), (6, 6));
        for i in 0..6 {
            assert!(g[(i, i)] >= 0.0);
            for j in 0..6 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_tn: row counts must agree")]
    fn matmul_tn_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(3, 2);
        let _ = a.matmul_tn(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_nt: column counts must agree")]
    fn matmul_nt_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 4);
        let _ = a.matmul_nt(&b);
    }
}
