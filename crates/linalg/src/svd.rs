//! Singular value decomposition via the one-sided Jacobi method.
//!
//! One-sided Jacobi orthogonalizes the columns of the input by plane
//! rotations. It is simple, numerically robust, and well suited to the tall
//! skinny matrices that arise as embedding matrices (`vocab x dim`), which is
//! exactly where the paper's eigenspace measures need singular vectors.

use crate::Mat;

/// Maximum number of Jacobi sweeps before giving up (in practice well under
/// 30 sweeps are needed for convergence at `f64` precision).
const MAX_SWEEPS: usize = 64;

/// Relative off-diagonal tolerance for convergence.
const TOL: f64 = 1e-12;

/// The result of a singular value decomposition `A = U S V^T`.
///
/// For an `m x n` input with `r = min(m, n)`, `u` is `m x r`, `s` holds the
/// `r` singular values in non-increasing order, and `v` is `n x r`.
/// Columns of `u` corresponding to zero singular values are zero vectors;
/// use [`Svd::rank`] / [`Svd::u_rank`] to work with the non-degenerate part.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (`m x r`).
    pub u: Mat,
    /// Singular values, non-increasing.
    pub s: Vec<f64>,
    /// Right singular vectors (`n x r`).
    pub v: Mat,
}

impl Svd {
    /// Reconstructs the original matrix `U * diag(S) * V^T`.
    pub fn reconstruct(&self) -> Mat {
        let r = self.s.len();
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            let row = us.row_mut(i);
            for j in 0..r {
                row[j] *= self.s[j];
            }
        }
        us.matmul_nt(&self.v)
    }

    /// Numerical rank: the number of singular values greater than
    /// `tol * max_singular_value`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.s.iter().take_while(|&&x| x > tol * smax).count()
    }

    /// Left singular vectors restricted to the numerical rank (`m x rank`).
    ///
    /// This is the orthonormal basis of the column space that the eigenspace
    /// instability measure projects onto.
    pub fn u_rank(&self, tol: f64) -> Mat {
        self.u.truncate_cols(self.rank(tol))
    }

    /// Right singular vectors restricted to the numerical rank (`n x rank`).
    pub fn v_rank(&self, tol: f64) -> Mat {
        self.v.truncate_cols(self.rank(tol))
    }
}

impl Mat {
    /// Computes the thin singular value decomposition of the matrix.
    ///
    /// Works for any shape; internally operates on the transpose when the
    /// matrix is wide. Singular values are returned in non-increasing order.
    ///
    /// # Example
    ///
    /// ```
    /// use embedstab_linalg::Mat;
    /// let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
    /// let svd = a.svd();
    /// assert!((svd.s[0] - 2.0).abs() < 1e-12);
    /// assert!((svd.s[1] - 1.0).abs() < 1e-12);
    /// ```
    pub fn svd(&self) -> Svd {
        if self.rows() >= self.cols() {
            svd_tall(self)
        } else {
            let t = svd_tall(&self.transpose());
            Svd {
                u: t.v,
                s: t.s,
                v: t.u,
            }
        }
    }
}

/// One-sided Jacobi SVD of a tall (`m >= n`) matrix.
fn svd_tall(a: &Mat) -> Svd {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    // `w` holds the columns of `a` as contiguous rows (n x m).
    let mut w = a.transpose();
    // `vt` accumulates the right singular vectors as rows (n x n).
    let mut vt = Mat::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n.saturating_sub(1) {
            for q in (p + 1)..n {
                let (alpha, beta, gamma) = {
                    let wp = w.row(p);
                    let wq = w.row(q);
                    (
                        crate::vecops::dot(wp, wp),
                        crate::vecops::dot(wq, wq),
                        crate::vecops::dot(wp, wq),
                    )
                };
                if gamma.abs() <= TOL * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                rotated = true;
                // Jacobi rotation zeroing the (p, q) entry of W W^T.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_rows(&mut w, p, q, c, s);
                rotate_rows(&mut vt, p, q, c, s);
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values are the column norms; normalize to get U.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n).map(|j| crate::vecops::norm2(w.row(j))).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("finite norms"));

    let mut u = Mat::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut v = Mat::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let sigma = norms[old_j];
        s.push(sigma);
        if sigma > 0.0 {
            let wrow = w.row(old_j);
            for i in 0..m {
                u[(i, new_j)] = wrow[i] / sigma;
            }
        }
        let vrow = vt.row(old_j);
        for i in 0..n {
            v[(i, new_j)] = vrow[i];
        }
    }
    Svd { u, s, v }
}

/// Applies the rotation `[c -s; s c]` to rows `p`, `q` of `m` in place.
fn rotate_rows(m: &mut Mat, p: usize, q: usize, c: f64, s: f64) {
    let (rp, rq) = m.two_rows_mut(p, q);
    for (a, b) in rp.iter_mut().zip(rq.iter_mut()) {
        let (x, y) = (*a, *b);
        *a = c * x - s * y;
        *b = s * x + c * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn check_svd(a: &Mat, tol: f64) {
        let svd = a.svd();
        let scale = a.frobenius_norm().max(1.0);
        assert!(
            svd.reconstruct().sub(a).frobenius_norm() / scale < tol,
            "reconstruction failed"
        );
        // Descending singular values, non-negative.
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values not sorted");
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
        // Orthonormality of U (on the numerical rank) and V.
        let r = svd.rank(1e-10);
        let ur = svd.u_rank(1e-10);
        assert!(ur.gram().sub(&Mat::identity(r)).frobenius_norm() < 1e-8);
        let vtv = svd.v.gram();
        assert!(vtv.sub(&Mat::identity(svd.v.cols())).frobenius_norm() < 1e-8);
    }

    #[test]
    fn svd_diagonal_known() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, -4.0], &[0.0, 0.0]]);
        let svd = a.svd();
        assert!((svd.s[0] - 4.0).abs() < 1e-12);
        assert!((svd.s[1] - 3.0).abs() < 1e-12);
        check_svd(&a, 1e-10);
    }

    #[test]
    fn svd_random_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for &(m, n) in &[(1, 1), (6, 6), (40, 8), (8, 40), (100, 3), (17, 5)] {
            let a = Mat::random_normal(m, n, &mut rng);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-1: outer product.
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [5.0, 6.0];
        let a = Mat::from_fn(4, 2, |i, j| u[i] * v[j]);
        let svd = a.svd();
        assert_eq!(svd.rank(1e-9), 1);
        let expected =
            (u.iter().map(|x| x * x).sum::<f64>() * v.iter().map(|x| x * x).sum::<f64>()).sqrt();
        assert!((svd.s[0] - expected).abs() < 1e-9);
        check_svd(&a, 1e-9);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Mat::zeros(5, 3);
        let svd = a.svd();
        assert_eq!(svd.rank(1e-9), 0);
        assert!(svd.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn svd_singular_values_match_gram_eigs() {
        // For A^T A, the eigenvalues are squared singular values; verify via
        // trace identities: sum s_i^2 = ||A||_F^2.
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let a = Mat::random_normal(30, 7, &mut rng);
        let svd = a.svd();
        let sum_sq: f64 = svd.s.iter().map(|x| x * x).sum();
        assert!((sum_sq - a.frobenius_norm_sq()).abs() / sum_sq < 1e-10);
    }
}
