//! Singular value decomposition: one-sided Jacobi plus a randomized
//! range-finder fast path.
//!
//! Two backends live here, selected by [`SvdMethod`]:
//!
//! - **Exact one-sided Jacobi** ([`Mat::svd_exact`]): orthogonalizes the
//!   columns of the input by plane rotations. Simple and numerically
//!   robust, but every rotation sweeps full-length columns, so tall
//!   embedding matrices (`vocab x dim`) pay `O(sweeps * dim^2 * vocab)`
//!   in memory-bound rotations.
//! - **Randomized range finder** ([`Mat::svd_randomized`], Halko,
//!   Martinsson & Tropp, 2011): sketches the column space with a seeded
//!   Gaussian test matrix, orthonormalizes via QR, optionally refines with
//!   subspace (power) iterations, and runs Jacobi only on the small
//!   projected problem `B = Q^T A`. All the heavy lifting becomes blocked
//!   GEMM calls. With a full-width sketch (`l = min(m, n)`) the projection
//!   is exact up to roundoff, so the default [`SvdMethod::Auto`] dispatch
//!   can use it for tall matrices without an accuracy cliff; the
//!   kernel-conformance test suite pins this.
//!
//! [`Mat::svd`] is `svd_with(SvdMethod::Auto)`: randomized for tall
//! operands (long side at least [`RANDOMIZED_MIN_DIM`] and at least
//! [`RANDOMIZED_ASPECT`]`x` the short side), exact Jacobi for everything
//! small, square-ish, or degenerate. Pass [`SvdMethod::Exact`] to force
//! the Jacobi path (Procrustes rotations and the conformance tests do).

use crate::Mat;
use rand::SeedableRng;

/// Maximum number of Jacobi sweeps before giving up (in practice well under
/// 30 sweeps are needed for convergence at `f64` precision).
const MAX_SWEEPS: usize = 64;

/// Relative off-diagonal tolerance for convergence.
const TOL: f64 = 1e-12;

/// [`SvdMethod::Auto`] uses the randomized path only when the long
/// dimension is at least this large...
pub const RANDOMIZED_MIN_DIM: usize = 256;

/// ...and at least this many times the short dimension (tall/wide enough
/// that the projected problem is genuinely small).
pub const RANDOMIZED_ASPECT: usize = 4;

/// Default sketch seed shared by [`SvdMethod::Auto`] and the
/// [`RandomizedSvd`] constructors, so results are deterministic without a
/// caller-provided RNG.
const DEFAULT_SKETCH_SEED: u64 = 0x5eed_cafe;

/// Which SVD backend to run. See the module docs for the trade-off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SvdMethod {
    /// Randomized for tall operands, exact Jacobi otherwise (the
    /// [`Mat::svd`] default).
    Auto,
    /// Always one-sided Jacobi on the full matrix.
    Exact,
    /// Always the randomized range finder with the given configuration.
    Randomized(RandomizedSvd),
}

/// Configuration for the randomized range-finder SVD.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomizedSvd {
    /// Number of singular triplets to return (clamped to `min(m, n)`).
    pub rank: usize,
    /// Extra sketch columns beyond `rank` for range-capture headroom
    /// (only matters when truncating; clamped so `rank + oversample`
    /// never exceeds `min(m, n)`).
    pub oversample: usize,
    /// Subspace (power) iterations `Q <- orth(A * orth(A^T Q))` that
    /// sharpen the sketch toward the dominant singular directions; only
    /// needed for truncated decompositions of slowly decaying spectra.
    pub power_iters: usize,
    /// Seed of the Gaussian test matrix (fixed default for determinism).
    pub seed: u64,
}

impl RandomizedSvd {
    /// Full-width sketch: `l = min(m, n)`, no oversampling, no power
    /// iterations. The range capture is exact up to roundoff, so this is
    /// a drop-in replacement for [`Mat::svd_exact`] on tall matrices.
    pub fn full() -> Self {
        RandomizedSvd {
            rank: usize::MAX,
            oversample: 0,
            power_iters: 0,
            seed: DEFAULT_SKETCH_SEED,
        }
    }

    /// Rank-`k` truncated sketch at the standard defaults (oversample 8,
    /// two power iterations).
    pub fn truncated(rank: usize) -> Self {
        RandomizedSvd {
            rank,
            oversample: 8,
            power_iters: 2,
            seed: DEFAULT_SKETCH_SEED,
        }
    }

    /// Replaces the sketch seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the power-iteration count.
    #[must_use]
    pub fn with_power_iters(mut self, iters: usize) -> Self {
        self.power_iters = iters;
        self
    }
}

/// The result of a singular value decomposition `A = U S V^T`.
///
/// For an `m x n` input with `r = min(m, n)`, `u` is `m x r`, `s` holds the
/// `r` singular values in non-increasing order, and `v` is `n x r`.
/// Exception: a truncated randomized decomposition
/// ([`RandomizedSvd::truncated`]) returns only the leading `r = rank`
/// triplets, so `u` is `m x rank`, `s` has `rank` entries, and `v` is
/// `n x rank`.
/// Columns of `u` corresponding to zero singular values are zero vectors;
/// use [`Svd::rank`] / [`Svd::u_rank`] to work with the non-degenerate part.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (`m x r`).
    pub u: Mat,
    /// Singular values, non-increasing.
    pub s: Vec<f64>,
    /// Right singular vectors (`n x r`).
    pub v: Mat,
}

impl Svd {
    /// Reconstructs the original matrix `U * diag(S) * V^T`.
    pub fn reconstruct(&self) -> Mat {
        let r = self.s.len();
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            let row = us.row_mut(i);
            for j in 0..r {
                row[j] *= self.s[j];
            }
        }
        us.matmul_nt(&self.v)
    }

    /// Numerical rank: the number of singular values greater than
    /// `tol * max_singular_value`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.s.iter().take_while(|&&x| x > tol * smax).count()
    }

    /// Left singular vectors restricted to the numerical rank (`m x rank`).
    ///
    /// This is the orthonormal basis of the column space that the eigenspace
    /// instability measure projects onto.
    pub fn u_rank(&self, tol: f64) -> Mat {
        self.u.truncate_cols(self.rank(tol))
    }

    /// Right singular vectors restricted to the numerical rank (`n x rank`).
    pub fn v_rank(&self, tol: f64) -> Mat {
        self.v.truncate_cols(self.rank(tol))
    }
}

impl Mat {
    /// Computes the thin singular value decomposition of the matrix with
    /// the [`SvdMethod::Auto`] backend choice: the randomized range finder
    /// for tall operands, exact one-sided Jacobi otherwise.
    ///
    /// Works for any shape; internally operates on the transpose when the
    /// matrix is wide. Singular values are returned in non-increasing order.
    ///
    /// # Example
    ///
    /// ```
    /// use embedstab_linalg::Mat;
    /// let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
    /// let svd = a.svd();
    /// assert!((svd.s[0] - 2.0).abs() < 1e-12);
    /// assert!((svd.s[1] - 1.0).abs() < 1e-12);
    /// ```
    pub fn svd(&self) -> Svd {
        self.svd_with(SvdMethod::Auto)
    }

    /// Computes the thin SVD with an explicit backend choice.
    pub fn svd_with(&self, method: SvdMethod) -> Svd {
        match method {
            SvdMethod::Exact => self.svd_exact(),
            SvdMethod::Randomized(cfg) => self.svd_randomized(cfg),
            SvdMethod::Auto => {
                let (m, n) = self.shape();
                let (big, small) = (m.max(n), m.min(n));
                if small > 0 && big >= RANDOMIZED_MIN_DIM && big >= RANDOMIZED_ASPECT * small {
                    self.svd_randomized(RandomizedSvd::full())
                } else {
                    self.svd_exact()
                }
            }
        }
    }

    /// Computes the thin SVD by one-sided Jacobi on the full matrix.
    ///
    /// This is the accuracy reference the kernel-conformance tests compare
    /// the randomized backend against, and the fallback [`SvdMethod::Auto`]
    /// uses for small, square-ish, or empty inputs.
    pub fn svd_exact(&self) -> Svd {
        if self.rows() >= self.cols() {
            svd_tall(self)
        } else {
            let t = svd_tall(&self.transpose());
            Svd {
                u: t.v,
                s: t.s,
                v: t.u,
            }
        }
    }

    /// Computes the thin SVD with the randomized range finder (Halko,
    /// Martinsson & Tropp, 2011): sketch, QR, optional subspace
    /// iterations, then exact Jacobi on the small projected matrix
    /// `B = Q^T A`.
    ///
    /// With [`RandomizedSvd::full`] the sketch spans the whole short
    /// dimension and the factorization is exact up to roundoff; with
    /// [`RandomizedSvd::truncated`] only the leading `rank` triplets are
    /// returned. Deterministic given `cfg.seed`.
    pub fn svd_randomized(&self, cfg: RandomizedSvd) -> Svd {
        if self.rows() >= self.cols() {
            svd_randomized_tall(self, cfg)
        } else {
            let t = svd_randomized_tall(&self.transpose(), cfg);
            Svd {
                u: t.v,
                s: t.s,
                v: t.u,
            }
        }
    }

    /// Randomized SVD with a **warm-started** range finder: instead of
    /// sketching the column space with a fresh Gaussian test matrix, the
    /// initial basis is `orth(warm)` — typically the left singular basis
    /// from the previous step of an incrementally updated matrix — and at
    /// least one subspace iteration refreshes it against the current
    /// matrix.
    ///
    /// When the matrix has drifted only a little since `warm` was
    /// computed (the streaming-retrain case), the stale basis already
    /// nearly spans the dominant left subspace, so the expensive sketch
    /// GEMM `A * Omega` is skipped and fewer subspace iterations are
    /// needed than a cold truncated run: with `cfg.power_iters = 1` this
    /// costs 2 large GEMMs against the cold default's 6 (the final
    /// refresh doubles as the projection — see below). The mandatory
    /// iteration is not an optimization knob: projecting onto the stale
    /// basis *without* refreshing it through the current matrix would
    /// bias every factor toward the previous step's subspace.
    ///
    /// If `warm` is narrower than the sketch width
    /// (`rank + oversample`), the remaining columns are filled with a
    /// seeded Gaussian sketch of the current matrix, so lost or brand-new
    /// directions can still enter the basis. Deterministic given
    /// `cfg.seed` and `warm`.
    ///
    /// Falls back to the cold [`Mat::svd_randomized`] when the warm basis
    /// is unusable: wrong row count, no columns, or a wide (`m < n`)
    /// input (whose range finder runs on the transpose, where a *left*
    /// warm basis is the wrong side).
    pub fn svd_randomized_warm(&self, cfg: RandomizedSvd, warm: &Mat) -> Svd {
        svd_randomized_warm_op(self, cfg, warm).unwrap_or_else(|| self.svd_randomized(cfg))
    }
}

/// What the randomized range finder actually needs from the matrix being
/// factorized: its shape and products `A * X` / `A^T * X` against skinny
/// dense blocks. `Mat` is the dense instance; sparse matrix types (e.g.
/// the PPMI statistics in `embedstab_corpus`) implement it so the
/// sketched SVD runs in `O(nnz * l)` per product without densification.
pub trait SketchOp {
    /// `(rows, cols)` of the operator.
    fn op_shape(&self) -> (usize, usize);
    /// `A * x`, where `x` is `cols x k`.
    fn apply(&self, x: &Mat) -> Mat;
    /// `A^T * x`, where `x` is `rows x k`.
    fn apply_t(&self, x: &Mat) -> Mat;
}

impl SketchOp for Mat {
    fn op_shape(&self) -> (usize, usize) {
        self.shape()
    }

    fn apply(&self, x: &Mat) -> Mat {
        self.matmul(x)
    }

    fn apply_t(&self, x: &Mat) -> Mat {
        self.matmul_tn(x)
    }
}

/// The warm-started range finder behind [`Mat::svd_randomized_warm`],
/// generic over [`SketchOp`] so implicit operators skip densification.
///
/// Returns `None` when the warm basis is unusable for this operator —
/// wide (`m < n`) shape, wrong row count, no columns, or an empty
/// operator — in which case the caller falls back to its cold path
/// (dense callers: [`Mat::svd_randomized`]).
pub fn svd_randomized_warm_op<A: SketchOp>(a: &A, cfg: RandomizedSvd, warm: &Mat) -> Option<Svd> {
    let (m, n) = a.op_shape();
    if m < n || warm.rows() != m || warm.cols() == 0 || n == 0 {
        return None;
    }
    let l = cfg.rank.saturating_add(cfg.oversample).min(n).max(1);
    let seeded = if warm.cols() > l {
        warm.truncate_cols(l)
    } else if warm.cols() < l {
        let extra = l - warm.cols();
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let omega = Mat::random_normal(n, extra, &mut rng);
        let fresh = a.apply(&omega);
        Mat::from_fn(m, l, |i, j| {
            if j < warm.cols() {
                warm[(i, j)]
            } else {
                fresh[(i, j - warm.cols())]
            }
        })
    } else {
        warm.clone()
    };
    let mut q = seeded.orthonormalize();
    for _ in 1..cfg.power_iters.max(1) {
        let z = a.apply_t(&q).orthonormalize();
        q = a.apply(&z).orthonormalize();
    }
    // The mandatory final iteration refreshes the stale basis into the
    // *row* space (`Z = orth(A^T Q)`) and projects there: with
    // `Y = A Z = U S W^T` exactly, `A ~ (A Z) Z^T = U S (Z W)^T`.
    // This reuses the refresh product as the projection, so the step
    // costs two full-size products where the cold tail's
    // project-and-lift would need a third (`Q^T A`).
    let z = a.apply_t(&q).orthonormalize();
    let y = a.apply(&z);
    let ys = y.svd_exact();
    let keep = cfg.rank.min(ys.s.len());
    Some(Svd {
        u: ys.u.truncate_cols(keep),
        s: ys.s[..keep].to_vec(),
        v: z.matmul(&ys.v).truncate_cols(keep),
    })
}

/// Randomized range-finder SVD of a tall (`m >= n`) matrix.
fn svd_randomized_tall(a: &Mat, cfg: RandomizedSvd) -> Svd {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    if n == 0 {
        return Svd {
            u: Mat::zeros(m, 0),
            s: Vec::new(),
            v: Mat::zeros(0, 0),
        };
    }
    // Sketch width: requested rank plus oversampling, never wider than the
    // short dimension (a wider sketch would be rank-deficient anyway).
    let l = cfg.rank.saturating_add(cfg.oversample).min(n).max(1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let omega = Mat::random_normal(n, l, &mut rng);
    // Range finder: Q spans col(A * Omega) which, for l = n, equals col(A)
    // almost surely, making Q Q^T A = A up to roundoff.
    let mut q = a.matmul(&omega).orthonormalize();
    for _ in 0..cfg.power_iters {
        let z = a.matmul_tn(&q).orthonormalize();
        q = a.matmul(&z).orthonormalize();
    }
    project_and_lift(a, &q, cfg.rank)
}

/// Shared tail of the randomized paths: solve the projected problem
/// `B = Q^T A` exactly, lift the left factors back through `Q`, truncate
/// to `rank`.
fn project_and_lift(a: &Mat, q: &Mat, rank: usize) -> Svd {
    let b = q.matmul_tn(a);
    let bs = b.svd_exact();
    let u = q.matmul(&bs.u);
    let keep = rank.min(bs.s.len());
    if keep < bs.s.len() {
        Svd {
            u: u.truncate_cols(keep),
            s: bs.s[..keep].to_vec(),
            v: bs.v.truncate_cols(keep),
        }
    } else {
        Svd {
            u,
            s: bs.s,
            v: bs.v,
        }
    }
}

/// One-sided Jacobi SVD of a tall (`m >= n`) matrix.
fn svd_tall(a: &Mat) -> Svd {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    // `w` holds the columns of `a` as contiguous rows (n x m).
    let mut w = a.transpose();
    // `vt` accumulates the right singular vectors as rows (n x n).
    let mut vt = Mat::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n.saturating_sub(1) {
            for q in (p + 1)..n {
                let (alpha, beta, gamma) = {
                    let wp = w.row(p);
                    let wq = w.row(q);
                    (
                        crate::vecops::dot(wp, wp),
                        crate::vecops::dot(wq, wq),
                        crate::vecops::dot(wp, wq),
                    )
                };
                if gamma.abs() <= TOL * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                rotated = true;
                // Jacobi rotation zeroing the (p, q) entry of W W^T.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_rows(&mut w, p, q, c, s);
                rotate_rows(&mut vt, p, q, c, s);
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values are the column norms; normalize to get U.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n).map(|j| crate::vecops::norm2(w.row(j))).collect();
    // total_cmp: a NaN norm (non-finite input) must not panic mid-factorization.
    order.sort_by(|&i, &j| norms[j].total_cmp(&norms[i]));

    let mut u = Mat::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut v = Mat::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let sigma = norms[old_j];
        s.push(sigma);
        if sigma > 0.0 {
            let wrow = w.row(old_j);
            for i in 0..m {
                u[(i, new_j)] = wrow[i] / sigma;
            }
        }
        let vrow = vt.row(old_j);
        for i in 0..n {
            v[(i, new_j)] = vrow[i];
        }
    }
    Svd { u, s, v }
}

/// Applies the rotation `[c -s; s c]` to rows `p`, `q` of `m` in place.
fn rotate_rows(m: &mut Mat, p: usize, q: usize, c: f64, s: f64) {
    let (rp, rq) = m.two_rows_mut(p, q);
    for (a, b) in rp.iter_mut().zip(rq.iter_mut()) {
        let (x, y) = (*a, *b);
        *a = c * x - s * y;
        *b = s * x + c * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn check_svd(a: &Mat, tol: f64) {
        let svd = a.svd();
        let scale = a.frobenius_norm().max(1.0);
        assert!(
            svd.reconstruct().sub(a).frobenius_norm() / scale < tol,
            "reconstruction failed"
        );
        // Descending singular values, non-negative.
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values not sorted");
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
        // Orthonormality of U (on the numerical rank) and V.
        let r = svd.rank(1e-10);
        let ur = svd.u_rank(1e-10);
        assert!(ur.gram().sub(&Mat::identity(r)).frobenius_norm() < 1e-8);
        let vtv = svd.v.gram();
        assert!(vtv.sub(&Mat::identity(svd.v.cols())).frobenius_norm() < 1e-8);
    }

    #[test]
    fn svd_diagonal_known() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, -4.0], &[0.0, 0.0]]);
        let svd = a.svd();
        assert!((svd.s[0] - 4.0).abs() < 1e-12);
        assert!((svd.s[1] - 3.0).abs() < 1e-12);
        check_svd(&a, 1e-10);
    }

    #[test]
    fn svd_random_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for &(m, n) in &[(1, 1), (6, 6), (40, 8), (8, 40), (100, 3), (17, 5)] {
            let a = Mat::random_normal(m, n, &mut rng);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-1: outer product.
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [5.0, 6.0];
        let a = Mat::from_fn(4, 2, |i, j| u[i] * v[j]);
        let svd = a.svd();
        assert_eq!(svd.rank(1e-9), 1);
        let expected =
            (u.iter().map(|x| x * x).sum::<f64>() * v.iter().map(|x| x * x).sum::<f64>()).sqrt();
        assert!((svd.s[0] - expected).abs() < 1e-9);
        check_svd(&a, 1e-9);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Mat::zeros(5, 3);
        let svd = a.svd();
        assert_eq!(svd.rank(1e-9), 0);
        assert!(svd.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn randomized_full_matches_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(40);
        for &(m, n) in &[(60, 6), (300, 17), (12, 80)] {
            let a = Mat::random_normal(m, n, &mut rng);
            let exact = a.svd_exact();
            let rand_svd = a.svd_randomized(RandomizedSvd::full());
            let scale = exact.s[0].max(1.0);
            for (se, sr) in exact.s.iter().zip(&rand_svd.s) {
                assert!(
                    (se - sr).abs() < 1e-9 * scale,
                    "{m}x{n}: exact {se} vs randomized {sr}"
                );
            }
            let recon = rand_svd.reconstruct();
            assert!(recon.sub(&a).frobenius_norm() / a.frobenius_norm() < 1e-10);
            let r = rand_svd.s.len();
            assert!(rand_svd.u.gram().sub(&Mat::identity(r)).frobenius_norm() < 1e-8);
            assert!(rand_svd.v.gram().sub(&Mat::identity(r)).frobenius_norm() < 1e-8);
        }
    }

    #[test]
    fn randomized_truncated_captures_leading_spectrum() {
        // Geometric spectrum: sigma_j = 2^-j; rank-4 sketch with power
        // iterations must nail the first four values.
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let u = Mat::random_normal(200, 12, &mut rng).orthonormalize();
        let v = Mat::random_normal(12, 12, &mut rng).orthonormalize();
        let mut us = u.clone();
        for j in 0..12 {
            let sigma = 0.5f64.powi(j as i32);
            for i in 0..us.rows() {
                us[(i, j as usize)] *= sigma;
            }
        }
        let a = us.matmul_nt(&v);
        let exact = a.svd_exact();
        let trunc = a.svd_randomized(RandomizedSvd::truncated(4));
        assert_eq!(trunc.s.len(), 4);
        assert_eq!(trunc.u.shape(), (200, 4));
        assert_eq!(trunc.v.shape(), (12, 4));
        for j in 0..4 {
            assert!(
                (trunc.s[j] - exact.s[j]).abs() < 1e-8,
                "sigma_{j}: {} vs {}",
                trunc.s[j],
                exact.s[j]
            );
        }
    }

    #[test]
    fn randomized_deterministic_given_seed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = Mat::random_normal(300, 10, &mut rng);
        let s1 = a.svd_randomized(RandomizedSvd::full());
        let s2 = a.svd_randomized(RandomizedSvd::full());
        assert_eq!(s1.u, s2.u);
        assert_eq!(s1.s, s2.s);
        assert_eq!(s1.v, s2.v);
    }

    #[test]
    fn auto_dispatches_randomized_for_tall_and_exact_for_small() {
        // Tall enough for the randomized path: results must still satisfy
        // every SVD contract to the same tolerances.
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let tall = Mat::random_normal(512, 16, &mut rng);
        check_svd(&tall, 1e-9);
        let auto = tall.svd();
        let exact = tall.svd_exact();
        for (sa, se) in auto.s.iter().zip(&exact.s) {
            assert!((sa - se).abs() < 1e-9 * exact.s[0]);
        }
        // Not tall enough (aspect < RANDOMIZED_ASPECT): stays on the exact
        // path bit-for-bit.
        let squarish = Mat::random_normal(300, 80, &mut rng);
        let a = squarish.svd();
        let e = squarish.svd_exact();
        assert_eq!(a.s, e.s);
        assert_eq!(a.u, e.u);
    }

    #[test]
    fn randomized_rank_deficient_and_zero() {
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [5.0, 6.0];
        let a = Mat::from_fn(4, 2, |i, j| u[i] * v[j]);
        let svd = a.svd_randomized(RandomizedSvd::full());
        assert_eq!(svd.rank(1e-9), 1);
        assert!(svd.reconstruct().sub(&a).frobenius_norm() < 1e-9 * a.frobenius_norm());
        let z = Mat::zeros(5, 3);
        let zs = z.svd_randomized(RandomizedSvd::full());
        assert!(zs.s.iter().all(|&x| x == 0.0));
        assert!(zs.reconstruct().frobenius_norm() == 0.0);
    }

    /// A tall matrix with a geometric spectrum plus a small seeded
    /// perturbation of it — the "drifted retrain" pair the warm start is
    /// designed for.
    fn drifted_pair() -> (Mat, Mat) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let u = Mat::random_normal(200, 12, &mut rng).orthonormalize();
        let v = Mat::random_normal(12, 12, &mut rng).orthonormalize();
        let mut us = u.clone();
        for j in 0..12 {
            let sigma = 2.0 * 0.7f64.powi(j as i32);
            for i in 0..us.rows() {
                us[(i, j)] *= sigma;
            }
        }
        let a = us.matmul_nt(&v);
        let noise = Mat::random_normal(200, 12, &mut rng);
        let drifted = Mat::from_fn(200, 12, |i, j| a[(i, j)] + 0.01 * noise[(i, j)]);
        (a, drifted)
    }

    #[test]
    fn warm_start_recovers_leading_spectrum_of_drifted_matrix() {
        let (a, drifted) = drifted_pair();
        let prev = a.svd_randomized(RandomizedSvd::truncated(4));
        let cfg = RandomizedSvd::truncated(4).with_power_iters(1);
        let warm = drifted.svd_randomized_warm(cfg, &prev.u);
        let exact = drifted.svd_exact();
        assert_eq!(warm.s.len(), 4);
        assert_eq!(warm.u.shape(), (200, 4));
        for j in 0..4 {
            assert!(
                (warm.s[j] - exact.s[j]).abs() < 1e-6 * exact.s[0],
                "sigma_{j}: warm {} vs exact {}",
                warm.s[j],
                exact.s[j]
            );
        }
        // Orthonormal factors, like any other backend.
        assert!(warm.u.gram().sub(&Mat::identity(4)).frobenius_norm() < 1e-8);
        assert!(warm.v.gram().sub(&Mat::identity(4)).frobenius_norm() < 1e-8);
    }

    #[test]
    fn warm_start_is_deterministic_and_pads_narrow_bases() {
        let (a, drifted) = drifted_pair();
        // A warm basis narrower than rank + oversample: the pad columns
        // come from a seeded sketch, so the result is still deterministic
        // and still captures the leading spectrum.
        let prev = a.svd_randomized(RandomizedSvd::truncated(2));
        let cfg = RandomizedSvd::truncated(6);
        let w1 = drifted.svd_randomized_warm(cfg, &prev.u);
        let w2 = drifted.svd_randomized_warm(cfg, &prev.u);
        assert_eq!(w1.u, w2.u);
        assert_eq!(w1.s, w2.s);
        assert_eq!(w1.v, w2.v);
        let exact = drifted.svd_exact();
        for j in 0..6 {
            assert!((w1.s[j] - exact.s[j]).abs() < 1e-6 * exact.s[0]);
        }
    }

    #[test]
    fn warm_start_falls_back_cold_on_unusable_basis() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let a = Mat::random_normal(120, 9, &mut rng);
        let cfg = RandomizedSvd::truncated(4);
        let cold = a.svd_randomized(cfg);
        // Wrong row count, zero columns, and a wide input all take the
        // cold path bit-for-bit.
        let bad_rows = Mat::random_normal(60, 4, &mut rng);
        let got = a.svd_randomized_warm(cfg, &bad_rows);
        assert_eq!(got.u, cold.u);
        assert_eq!(got.s, cold.s);
        let empty = Mat::zeros(120, 0);
        let got = a.svd_randomized_warm(cfg, &empty);
        assert_eq!(got.s, cold.s);
        let wide = a.transpose();
        let wide_cold = wide.svd_randomized(cfg);
        let wide_warm = wide.svd_randomized_warm(cfg, &Mat::random_normal(9, 4, &mut rng));
        assert_eq!(wide_warm.s, wide_cold.s);
    }

    #[test]
    fn svd_singular_values_match_gram_eigs() {
        // For A^T A, the eigenvalues are squared singular values; verify via
        // trace identities: sum s_i^2 = ||A||_F^2.
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let a = Mat::random_normal(30, 7, &mut rng);
        let svd = a.svd();
        let sum_sq: f64 = svd.s.iter().map(|x| x * x).sum();
        assert!((sum_sq - a.frobenius_norm_sq()).abs() / sum_sq < 1e-10);
    }
}
