//! Cholesky factorization, SPD solves, and ridge least squares.

use crate::Mat;

/// Computes the lower-triangular Cholesky factor `L` of a symmetric
/// positive-definite matrix `a` (`a = L L^T`).
///
/// Returns `None` if the matrix is not (numerically) positive definite.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky(a: &Mat) -> Option<Mat> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky requires a square matrix");
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `A X = B` for symmetric positive-definite `A` via Cholesky.
///
/// Returns `None` if `A` is not numerically positive definite.
///
/// # Panics
///
/// Panics if shapes are incompatible.
pub fn solve_spd(a: &Mat, b: &Mat) -> Option<Mat> {
    assert_eq!(a.rows(), b.rows(), "solve_spd: row counts must agree");
    let l = cholesky(a)?;
    let n = a.rows();
    let k = b.cols();
    // Forward substitution: L Y = B.
    let mut y = b.clone();
    for i in 0..n {
        for j in 0..i {
            let lij = l[(i, j)];
            if lij == 0.0 {
                continue;
            }
            let (yi, yj) = (i, j);
            for c in 0..k {
                let v = y[(yj, c)];
                y[(yi, c)] -= lij * v;
            }
        }
        let d = l[(i, i)];
        for c in 0..k {
            y[(i, c)] /= d;
        }
    }
    // Back substitution: L^T X = Y.
    let mut x = y;
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let lji = l[(j, i)];
            if lji == 0.0 {
                continue;
            }
            for c in 0..k {
                let v = x[(j, c)];
                x[(i, c)] -= lji * v;
            }
        }
        let d = l[(i, i)];
        for c in 0..k {
            x[(i, c)] /= d;
        }
    }
    Some(x)
}

/// Ridge-regularized least squares: solves
/// `(A^T A + ridge * I) X = A^T B`.
///
/// With `ridge = 0` this is the ordinary least-squares solution when `A` has
/// full column rank. A tiny positive `ridge` keeps the normal equations
/// solvable for ill-conditioned inputs.
///
/// Returns `None` if the regularized normal matrix is still not positive
/// definite (only possible for pathological inputs with `ridge = 0`).
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn lstsq(a: &Mat, b: &Mat, ridge: f64) -> Option<Mat> {
    assert_eq!(a.rows(), b.rows(), "lstsq: row counts must agree");
    let mut g = a.gram();
    for i in 0..g.rows() {
        g[(i, i)] += ridge;
    }
    let atb = a.matmul_tn(b);
    solve_spd(&g, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cholesky_known() {
        let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = cholesky(&a).expect("SPD");
        let recon = l.matmul_nt(&l);
        assert!(recon.sub(&a).frobenius_norm() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn solve_spd_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let m = Mat::random_normal(12, 6, &mut rng);
        let a = m.gram(); // SPD with probability 1
        let x_true = Mat::random_normal(6, 3, &mut rng);
        let b = a.matmul(&x_true);
        let x = solve_spd(&a, &b).expect("solvable");
        assert!(x.sub(&x_true).frobenius_norm() < 1e-8);
    }

    #[test]
    fn lstsq_recovers_planted_solution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = Mat::random_normal(40, 5, &mut rng);
        let w = Mat::random_normal(5, 1, &mut rng);
        let y = a.matmul(&w);
        let w_hat = lstsq(&a, &y, 0.0).expect("full rank");
        assert!(w_hat.sub(&w).frobenius_norm() < 1e-8);
    }

    #[test]
    fn lstsq_ridge_shrinks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Mat::random_normal(30, 4, &mut rng);
        let y = Mat::random_normal(30, 1, &mut rng);
        let w0 = lstsq(&a, &y, 0.0).expect("ok");
        let w1 = lstsq(&a, &y, 100.0).expect("ok");
        assert!(w1.frobenius_norm() < w0.frobenius_norm());
    }
}
