//! Thin Householder QR decomposition.

use crate::Mat;

impl Mat {
    /// Thin QR decomposition `self = Q * R` for an `m x n` matrix with
    /// `m >= n`: `Q` is `m x n` with orthonormal columns, `R` is `n x n`
    /// upper triangular.
    ///
    /// # Panics
    ///
    /// Panics if `rows < cols`.
    pub fn qr(&self) -> (Mat, Mat) {
        let (m, n) = self.shape();
        assert!(m >= n, "thin QR requires rows >= cols ({m} < {n})");
        // Work on the transpose so Householder vectors are contiguous rows.
        let mut rt = self.transpose(); // n x m; row k = column k of the work matrix
        let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
        for k in 0..n {
            // Build the Householder vector from entries k.. of column k.
            let col = &rt.row(k)[k..];
            let alpha = crate::vecops::norm2(col);
            let mut v = col.to_vec();
            if alpha > 0.0 {
                let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
                v[0] += sign * alpha;
                crate::vecops::normalize(&mut v);
            }
            // Apply I - 2vv^T to columns k.. of every remaining work column.
            for j in k..n {
                let row = &mut rt.row_mut(j)[k..];
                let proj = 2.0 * crate::vecops::dot(&v, row);
                crate::vecops::axpy(-proj, &v, row);
            }
            vs.push(v);
        }
        // R = upper triangle of the reduced matrix.
        let mut r = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..=j {
                r[(i, j)] = rt.row(j)[i];
            }
        }
        // Q = H_0 H_1 ... H_{n-1} * [I_n; 0], built column by column.
        let mut qt = Mat::zeros(n, m); // row j = column j of Q
        for j in 0..n {
            qt.row_mut(j)[j] = 1.0;
            for k in (0..n).rev() {
                let v = &vs[k];
                let row = &mut qt.row_mut(j)[k..];
                let proj = 2.0 * crate::vecops::dot(v, row);
                crate::vecops::axpy(-proj, v, row);
            }
        }
        (qt.transpose(), r)
    }

    /// Projects the columns of the matrix onto an orthonormal basis of its
    /// column space via QR, returning the `Q` factor.
    ///
    /// # Panics
    ///
    /// Panics if `rows < cols`.
    pub fn orthonormalize(&self) -> Mat {
        self.qr().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn check_qr(a: &Mat) {
        let (q, r) = a.qr();
        // Reconstruction.
        let qr = q.matmul(&r);
        let scale = a.frobenius_norm().max(1.0);
        assert!(
            qr.sub(a).frobenius_norm() / scale < 1e-10,
            "QR reconstruction failed"
        );
        // Orthonormal columns.
        let qtq = q.gram();
        let eye = Mat::identity(a.cols());
        assert!(qtq.sub(&eye).frobenius_norm() < 1e-10, "Q not orthonormal");
        // R upper triangular.
        for i in 0..r.rows() {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0, "R not upper triangular");
            }
        }
    }

    #[test]
    fn qr_random_tall() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for &(m, n) in &[(5, 5), (20, 7), (50, 3), (9, 1)] {
            let a = Mat::random_normal(m, n, &mut rng);
            check_qr(&a);
        }
    }

    #[test]
    fn qr_rank_deficient_still_orthonormal_q() {
        // Two identical columns: rank 1.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let (q, r) = a.qr();
        let qtq = q.gram();
        assert!(qtq.sub(&Mat::identity(2)).frobenius_norm() < 1e-10);
        assert!(q.matmul(&r).sub(&a).frobenius_norm() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn qr_wide_panics() {
        let a = Mat::zeros(2, 5);
        let _ = a.qr();
    }
}
