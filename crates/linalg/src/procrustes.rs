//! The orthogonal Procrustes problem (Schönemann, 1966).
//!
//! The paper aligns every Wiki'18 embedding to its Wiki'17 counterpart with
//! orthogonal Procrustes before compressing and training downstream models
//! (Section 3, Appendix C.2), and the semantic displacement measure is
//! defined through the same rotation (Section 2.4).

use crate::Mat;

/// Solves `argmin_Omega || x - y * Omega ||_F` subject to
/// `Omega^T Omega = I`, returning the optimal orthogonal `Omega`.
///
/// The classical solution: with `M = y^T x = U S V^T`, the minimizer is
/// `Omega = U V^T`.
///
/// # Panics
///
/// Panics if `x` and `y` have different shapes.
pub fn orthogonal_procrustes(x: &Mat, y: &Mat) -> Mat {
    assert_eq!(x.shape(), y.shape(), "procrustes requires equal shapes");
    let m = y.matmul_tn(x); // d x d
                            // The cross-product is small and square, and the rotation's
                            // orthogonality is load-bearing for every alignment downstream, so pin
                            // the exact Jacobi backend rather than relying on the auto dispatch.
    let svd = m.svd_with(crate::SvdMethod::Exact);
    svd.u.matmul_nt(&svd.v)
}

/// Aligns `y` to `x`: returns `y * Omega` with the optimal orthogonal
/// `Omega` from [`orthogonal_procrustes`].
///
/// # Panics
///
/// Panics if `x` and `y` have different shapes.
pub fn align(x: &Mat, y: &Mat) -> Mat {
    let omega = orthogonal_procrustes(x, y);
    y.matmul(&omega)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_rotation(n: usize, rng: &mut impl rand::Rng) -> Mat {
        let g = Mat::random_normal(n, n, rng);
        let (q, r) = g.qr();
        // Fix signs so the distribution is Haar-like; also ensures determinism.
        let mut q = q;
        for j in 0..n {
            if r[(j, j)] < 0.0 {
                for i in 0..n {
                    q[(i, j)] = -q[(i, j)];
                }
            }
        }
        q
    }

    #[test]
    fn recovers_planted_rotation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let x = Mat::random_normal(50, 6, &mut rng);
        let rot = random_rotation(6, &mut rng);
        let y = x.matmul(&rot.transpose()); // y * rot == x
        let omega = orthogonal_procrustes(&x, &y);
        let aligned = y.matmul(&omega);
        assert!(aligned.sub(&x).frobenius_norm() < 1e-8);
        assert!(omega.sub(&rot).frobenius_norm() < 1e-8);
    }

    #[test]
    fn omega_is_orthogonal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let x = Mat::random_normal(30, 4, &mut rng);
        let y = Mat::random_normal(30, 4, &mut rng);
        let omega = orthogonal_procrustes(&x, &y);
        let eye = Mat::identity(4);
        assert!(omega.gram().sub(&eye).frobenius_norm() < 1e-9);
    }

    #[test]
    fn alignment_never_hurts() {
        // ||x - align(x, y)||_F <= ||x - y||_F because identity is feasible.
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        for seed in 0..5u64 {
            let mut r2 = rand::rngs::StdRng::seed_from_u64(seed);
            let x = Mat::random_normal(25, 5, &mut r2);
            let y = Mat::random_normal(25, 5, &mut rng);
            let aligned = align(&x, &y);
            assert!(x.sub(&aligned).frobenius_norm() <= x.sub(&y).frobenius_norm() + 1e-9);
        }
    }
}
