//! The Adam optimizer (Kingma & Ba, 2015) over flat parameter vectors.

/// Adam state for one flat parameter vector.
///
/// Downstream models keep their parameters as flat `Vec<f64>` blocks (or
/// matrices whose storage is exposed as a slice) and call [`Adam::step`]
/// once per mini-batch.
///
/// # Example
///
/// ```
/// use embedstab_linalg::opt::Adam;
///
/// // Minimize (x - 3)^2 from x = 0.
/// let mut x = vec![0.0f64];
/// let mut opt = Adam::new(1, 0.1);
/// for _ in 0..400 {
///     let grad = vec![2.0 * (x[0] - 3.0)];
///     opt.step(&mut x, &grad);
/// }
/// assert!((x[0] - 3.0).abs() < 1e-3);
/// ```
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimizer for `n` parameters with the standard
    /// `beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`.
    pub fn new(n: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// The current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Replaces the learning rate (for decay schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Applies one Adam update to `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the optimizer's size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let mut x = vec![5.0, -4.0, 2.5];
        let target = [1.0, 2.0, 3.0];
        let mut opt = Adam::new(3, 0.05);
        for _ in 0..2000 {
            let grads: Vec<f64> = x
                .iter()
                .zip(&target)
                .map(|(xi, ti)| 2.0 * (xi - ti))
                .collect();
            opt.step(&mut x, &grads);
        }
        for (xi, ti) in x.iter().zip(&target) {
            assert!((xi - ti).abs() < 1e-3, "{xi} != {ti}");
        }
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // Adam's bias correction makes the first step ~lr * sign(grad).
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        opt.step(&mut x, &[123.0]);
        assert!((x[0] + 0.1).abs() < 1e-6, "step was {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "parameter count")]
    fn size_mismatch_panics() {
        let mut opt = Adam::new(2, 0.1);
        let mut x = vec![0.0];
        opt.step(&mut x, &[1.0]);
    }
}
