//! Dense linear-algebra substrate for the `embedstab` workspace.
//!
//! Everything the embedding-instability measures and trainers need is built
//! from scratch here on top of a row-major [`Mat`] type:
//!
//! - blocked (and optionally multi-threaded) matrix products ([`Mat::matmul`],
//!   [`Mat::matmul_tn`], [`Mat::matmul_nt`]),
//! - thin Householder QR ([`Mat::qr`]),
//! - one-sided Jacobi singular value decomposition ([`Mat::svd`]),
//! - Cholesky factorization and SPD solves ([`chol`]),
//! - the orthogonal Procrustes problem ([`procrustes::orthogonal_procrustes`]),
//!   used by the paper to align Wiki'17/Wiki'18 embeddings before compression.
//!
//! # Example
//!
//! ```
//! use embedstab_linalg::Mat;
//!
//! let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
//! let svd = a.svd();
//! let recon = svd.reconstruct();
//! assert!(a.sub(&recon).frobenius_norm() < 1e-9);
//! ```

pub mod chol;
pub mod gemm;
pub mod mat;
pub mod opt;
pub mod procrustes;
pub mod qr;
pub mod svd;
pub mod vecops;

pub use chol::{cholesky, lstsq, solve_spd};
pub use mat::Mat;
pub use procrustes::{align, orthogonal_procrustes};
pub use svd::Svd;
