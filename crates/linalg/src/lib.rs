//! Dense linear-algebra substrate for the `embedstab` workspace.
//!
//! Everything the embedding-instability measures and trainers need is built
//! from scratch here on top of a row-major [`Mat`] type:
//!
//! - packed, cache-blocked, register-tiled matrix products
//!   ([`Mat::matmul`], [`Mat::matmul_tn`], [`Mat::matmul_nt`],
//!   [`Mat::gram`]) with crossbeam row-block parallelism for large
//!   operands,
//! - thin Householder QR ([`Mat::qr`]),
//! - singular value decomposition ([`Mat::svd`]) with two backends:
//!   one-sided Jacobi ([`Mat::svd_exact`]) and a randomized range finder
//!   ([`Mat::svd_randomized`]),
//! - Cholesky factorization and SPD solves ([`chol`]),
//! - the orthogonal Procrustes problem ([`procrustes::orthogonal_procrustes`]),
//!   used by the paper to align Wiki'17/Wiki'18 embeddings before compression.
//!
//! # Kernel architecture
//!
//! **GEMM.** Every product variant lowers to one packed blocked kernel
//! (BLIS-style decomposition) in [`gemm`]: `MC x KC` panels of `A` and
//! `KC x NC` panels of `B` are packed into contiguous `MR`-tall /
//! `NR`-wide strips, and an `MR x NR = 6 x 8` register-tiled micro-kernel
//! (recompiled under `target_feature(avx2,fma)` and runtime-dispatched)
//! accumulates each output tile. The block parameters are
//! `MC = 120, KC = 256, NC = 512` (an A panel is 240 KiB, a B panel
//! 1 MiB). Transposed operands (`matmul_tn`, `matmul_nt`, `gram`) are
//! handled by strided packing, so they share the kernel and its
//! parallelism. Products under `32^3` multiply-adds skip packing and run
//! a plain i-k-j loop; the textbook triple loop itself stays available as
//! [`Mat::matmul_naive`] for conformance testing.
//!
//! **SVD.** [`Mat::svd`] auto-dispatches ([`svd::SvdMethod::Auto`]):
//! matrices whose long side is at least `256` and at least `4x` the short
//! side take the randomized range-finder path (sketch, QR, Jacobi on the
//! small projected problem — all blocked-GEMM work), everything else runs
//! exact one-sided Jacobi. Force a backend with
//! [`Mat::svd_with`]`(SvdMethod::Exact)` / `svd_with(SvdMethod::
//! Randomized(cfg))`; truncated sketches with subspace iteration are
//! available through [`RandomizedSvd::truncated`].
//!
//! # Example
//!
//! ```
//! use embedstab_linalg::Mat;
//!
//! let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
//! let svd = a.svd();
//! let recon = svd.reconstruct();
//! assert!(a.sub(&recon).frobenius_norm() < 1e-9);
//! ```

pub mod chol;
pub mod gemm;
pub mod mat;
pub mod opt;
pub mod procrustes;
pub mod qr;
pub mod svd;
pub mod vecops;

pub use chol::{cholesky, lstsq, solve_spd};
pub use mat::Mat;
pub use procrustes::{align, orthogonal_procrustes};
pub use svd::{svd_randomized_warm_op, RandomizedSvd, SketchOp, Svd, SvdMethod};
