//! Evaluation for TransE embeddings: link prediction (mean rank,
//! unstable-rank@10) and triplet classification with per-relation
//! thresholds (paper Section 6.1, Figures 3 and 10).

use std::collections::HashSet;

use rand::{RngExt, SeedableRng};

use crate::graph::{KnowledgeGraph, Triplet};
use crate::transe::TranseEmbeddings;

/// Head and tail ranks of one test triplet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankPair {
    /// Rank of the true head among all corrupted heads (1-based).
    pub head: usize,
    /// Rank of the true tail among all corrupted tails (1-based).
    pub tail: usize,
}

/// Computes raw link-prediction ranks for each triplet: the position of the
/// true entity when all entities are sorted by the TransE score.
pub fn link_prediction_ranks(
    emb: &TranseEmbeddings,
    n_entities: usize,
    triplets: &[Triplet],
) -> Vec<RankPair> {
    let dim = emb.entities.cols();
    triplets
        .iter()
        .map(|t| {
            let h = emb.entities.row(t.head as usize);
            let r = emb.relations.row(t.rel as usize);
            let tl = emb.entities.row(t.tail as usize);
            // target for tail ranking: h + r; for head ranking: t - r.
            let mut tail_target = vec![0.0; dim];
            let mut head_target = vec![0.0; dim];
            for j in 0..dim {
                tail_target[j] = h[j] + r[j];
                head_target[j] = tl[j] - r[j];
            }
            let d_tail_true = l1_dist(&tail_target, tl);
            let d_head_true = l1_dist(&head_target, h);
            let mut tail_rank = 1usize;
            let mut head_rank = 1usize;
            for e in 0..n_entities {
                let row = emb.entities.row(e);
                if l1_dist(&tail_target, row) < d_tail_true {
                    tail_rank += 1;
                }
                if l1_dist(&head_target, row) < d_head_true {
                    head_rank += 1;
                }
            }
            RankPair {
                head: head_rank,
                tail: tail_rank,
            }
        })
        .collect()
}

fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        s += (x - y).abs();
    }
    s
}

/// Mean of all head and tail ranks (the paper's link-prediction quality
/// metric).
///
/// Returns 0 for an empty input.
pub fn mean_rank(ranks: &[RankPair]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    let total: usize = ranks.iter().map(|r| r.head + r.tail).sum();
    total as f64 / (2 * ranks.len()) as f64
}

/// `unstable-rank@10` (paper Section 6.1): the fraction of rank changes
/// greater than 10 between two embeddings' rankings of the same triplets.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn unstable_rank_at_10(a: &[RankPair], b: &[RankPair]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank lists must align");
    assert!(!a.is_empty(), "no ranks to compare");
    let mut unstable = 0usize;
    for (x, y) in a.iter().zip(b) {
        if x.head.abs_diff(y.head) > 10 {
            unstable += 1;
        }
        if x.tail.abs_diff(y.tail) > 10 {
            unstable += 1;
        }
    }
    unstable as f64 / (2 * a.len()) as f64
}

/// Generates one negative per triplet by corrupting the tail with a random
/// entity such that the corrupted triplet is not in the graph (Socher et
/// al., 2013 protocol).
pub fn make_negatives(kg: &KnowledgeGraph, split: &[Triplet], seed: u64) -> Vec<Triplet> {
    let known: HashSet<Triplet> = kg.all_triplets();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    split
        .iter()
        .map(|t| {
            for _ in 0..256 {
                let tail = rng.random_range(0..kg.n_entities as u32);
                let cand = Triplet { tail, ..*t };
                if tail != t.tail && !known.contains(&cand) {
                    return cand;
                }
            }
            // Degenerate graphs (tests): give up on the known-filter.
            Triplet {
                tail: (t.tail + 1) % kg.n_entities as u32,
                ..*t
            }
        })
        .collect()
}

/// Triplet classification (paper Section 6.1): predict "fact" when the
/// TransE score is below a per-relation threshold tuned on validation
/// data.
#[derive(Clone, Debug)]
pub struct TripletClassifier {
    thresholds: Vec<f64>,
}

impl TripletClassifier {
    /// Fits per-relation thresholds maximizing validation accuracy over
    /// the given positive and negative triplets.
    ///
    /// Relations unseen in the validation data fall back to the global
    /// median threshold.
    ///
    /// # Panics
    ///
    /// Panics if `n_relations` is zero.
    pub fn fit(
        emb: &TranseEmbeddings,
        positives: &[Triplet],
        negatives: &[Triplet],
        n_relations: usize,
    ) -> Self {
        assert!(n_relations > 0, "need at least one relation");
        let mut per_rel: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); n_relations];
        for t in positives {
            per_rel[t.rel as usize]
                .0
                .push(emb.score(t.head, t.rel, t.tail));
        }
        for t in negatives {
            per_rel[t.rel as usize]
                .1
                .push(emb.score(t.head, t.rel, t.tail));
        }
        let mut thresholds = vec![f64::NAN; n_relations];
        let mut known = Vec::new();
        for (r, (pos, neg)) in per_rel.iter().enumerate() {
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            thresholds[r] = best_threshold(pos, neg);
            known.push(thresholds[r]);
        }
        // Fallback for unseen relations: median of known thresholds.
        known.sort_by(|a, b| a.total_cmp(b));
        let fallback = if known.is_empty() {
            0.0
        } else {
            known[known.len() / 2]
        };
        for t in thresholds.iter_mut() {
            if t.is_nan() {
                *t = fallback;
            }
        }
        TripletClassifier { thresholds }
    }

    /// Predicts whether each triplet is a fact (`score <= threshold`).
    pub fn predict(&self, emb: &TranseEmbeddings, triplets: &[Triplet]) -> Vec<bool> {
        triplets
            .iter()
            .map(|t| emb.score(t.head, t.rel, t.tail) <= self.thresholds[t.rel as usize])
            .collect()
    }

    /// Classification accuracy over interleaved positives and negatives.
    pub fn accuracy(
        &self,
        emb: &TranseEmbeddings,
        positives: &[Triplet],
        negatives: &[Triplet],
    ) -> f64 {
        let p = self.predict(emb, positives);
        let n = self.predict(emb, negatives);
        let correct = p.iter().filter(|&&x| x).count() + n.iter().filter(|&&x| !x).count();
        correct as f64 / (p.len() + n.len()).max(1) as f64
    }

    /// The fitted thresholds (one per relation).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

/// The threshold minimizing classification error: scanned over midpoints
/// of adjacent sorted scores (positives should score *below* it).
fn best_threshold(pos: &[f64], neg: &[f64]) -> f64 {
    let mut scored: Vec<(f64, bool)> = pos
        .iter()
        .map(|&s| (s, true))
        .chain(neg.iter().map(|&s| (s, false)))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Sweeping the threshold upward, positives below count as correct.
    let mut best_acc = -1.0;
    let mut best_thr = 0.0;
    let total = scored.len() as f64;
    let n_neg = neg.len() as f64;
    // Threshold below everything: all predicted negative.
    let mut correct = n_neg;
    if correct / total > best_acc {
        best_acc = correct / total;
        best_thr = scored.first().map(|s| s.0 - 1.0).unwrap_or(0.0);
    }
    for (i, &(s, is_pos)) in scored.iter().enumerate() {
        correct += if is_pos { 1.0 } else { -1.0 };
        let thr = if i + 1 < scored.len() {
            (s + scored[i + 1].0) / 2.0
        } else {
            s + 1.0
        };
        if correct / total > best_acc {
            best_acc = correct / total;
            best_thr = thr;
        }
    }
    best_thr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KgSpec;
    use crate::transe::{train_transe, TranseConfig};
    use embedstab_linalg::Mat;

    fn trained() -> (KnowledgeGraph, TranseEmbeddings) {
        let kg = KgSpec {
            n_entities: 100,
            n_types: 5,
            n_relations: 6,
            triplets_per_relation: 120,
            ..Default::default()
        }
        .generate();
        let emb = train_transe(&kg, 12, &TranseConfig::default(), 0);
        (kg, emb)
    }

    #[test]
    fn ranks_are_one_based_and_bounded() {
        let (kg, emb) = trained();
        let ranks = link_prediction_ranks(&emb, kg.n_entities, &kg.test[..20.min(kg.test.len())]);
        for r in &ranks {
            assert!(r.head >= 1 && r.head <= kg.n_entities);
            assert!(r.tail >= 1 && r.tail <= kg.n_entities);
        }
    }

    #[test]
    fn identical_embeddings_are_fully_stable() {
        let (kg, emb) = trained();
        let ranks = link_prediction_ranks(&emb, kg.n_entities, &kg.test);
        assert_eq!(unstable_rank_at_10(&ranks, &ranks), 0.0);
    }

    #[test]
    fn negatives_are_not_known_facts() {
        let (kg, _) = trained();
        let negs = make_negatives(&kg, &kg.valid, 0);
        let known = kg.all_triplets();
        assert_eq!(negs.len(), kg.valid.len());
        for n in &negs {
            assert!(!known.contains(n), "negative collides with a known fact");
        }
    }

    #[test]
    fn classifier_beats_chance() {
        let (kg, emb) = trained();
        let valid_neg = make_negatives(&kg, &kg.valid, 0);
        let clf = TripletClassifier::fit(&emb, &kg.valid, &valid_neg, kg.n_relations);
        let test_neg = make_negatives(&kg, &kg.test, 1);
        let acc = clf.accuracy(&emb, &kg.test, &test_neg);
        assert!(acc > 0.65, "triplet classification accuracy {acc}");
    }

    #[test]
    fn best_threshold_separates_cleanly() {
        let thr = best_threshold(&[1.0, 2.0], &[5.0, 6.0]);
        assert!(thr > 2.0 && thr < 5.0, "threshold {thr}");
    }

    #[test]
    fn threshold_handles_overlap() {
        // One positive scores high; best threshold keeps 3 of 4 correct.
        let thr = best_threshold(&[1.0, 9.0], &[5.0, 6.0]);
        assert!(thr > 1.0 && thr < 5.0, "threshold {thr}");
    }

    #[test]
    fn mean_rank_arithmetic() {
        let ranks = vec![RankPair { head: 1, tail: 3 }, RankPair { head: 5, tail: 7 }];
        assert_eq!(mean_rank(&ranks), 4.0);
        assert_eq!(mean_rank(&[]), 0.0);
    }

    #[test]
    fn unstable_rank_counts_large_changes() {
        let a = vec![
            RankPair { head: 1, tail: 1 },
            RankPair { head: 100, tail: 5 },
        ];
        let b = vec![
            RankPair { head: 1, tail: 20 },
            RankPair { head: 80, tail: 5 },
        ];
        // Changes: tail 1->20 (>10, unstable), head 100->80 (>10, unstable),
        // others stable: 2 of 4 comparisons.
        assert_eq!(unstable_rank_at_10(&a, &b), 0.5);
    }

    #[test]
    fn quantization_increases_instability_between_pair() {
        use crate::transe::quantize_transe_pair;
        use embedstab_quant::Precision;
        let kg = KgSpec {
            n_entities: 80,
            n_types: 4,
            n_relations: 5,
            triplets_per_relation: 100,
            ..Default::default()
        }
        .generate();
        let kg95 = kg.subsample_train(0.95, 11);
        let cfg = TranseConfig {
            epochs: 60,
            patience: 0,
            ..Default::default()
        };
        let a = train_transe(&kg, 16, &cfg, 0);
        let b = train_transe(&kg95, 16, &cfg, 0);
        let full_a = link_prediction_ranks(&a, kg.n_entities, &kg.test);
        let full_b = link_prediction_ranks(&b, kg.n_entities, &kg.test);
        let u_full = unstable_rank_at_10(&full_a, &full_b);
        let (qa, qb) = quantize_transe_pair(&a, &b, Precision::new(1));
        let q_a = link_prediction_ranks(&qa, kg.n_entities, &kg.test);
        let q_b = link_prediction_ranks(&qb, kg.n_entities, &kg.test);
        let u_q = unstable_rank_at_10(&q_a, &q_b);
        assert!(
            u_q >= u_full,
            "1-bit quantization should not stabilize ranks (full {u_full}, 1-bit {u_q})"
        );
        let _ = Mat::zeros(1, 1);
    }
}
