//! TransE (Bordes et al., 2013) with the paper's training protocol
//! (Table 7): margin ranking loss, L1 distance, uniform corruption, SGD,
//! entity renormalization, and early stopping on validation mean rank.

use embedstab_linalg::{vecops, Mat};
use embedstab_quant::{optimal_clip, quantize_value, Precision};
use rand::{Rng, RngExt, SeedableRng};

use crate::eval::{link_prediction_ranks, mean_rank};
use crate::graph::KnowledgeGraph;

/// TransE training hyperparameters (paper Table 7, scaled to the synthetic
/// graphs).
#[derive(Clone, Debug)]
pub struct TranseConfig {
    /// Maximum training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Ranking margin `gamma`.
    pub margin: f64,
    /// Early-stopping patience, in evaluation rounds (an evaluation runs
    /// every `eval_every` epochs on validation mean rank); 0 disables.
    pub patience: usize,
    /// Epochs between early-stopping evaluations.
    pub eval_every: usize,
}

impl Default for TranseConfig {
    fn default() -> Self {
        TranseConfig {
            epochs: 120,
            lr: 0.02,
            margin: 1.0,
            patience: 5,
            eval_every: 10,
        }
    }
}

/// Trained TransE embeddings: one vector per entity and per relation.
#[derive(Clone, Debug, PartialEq)]
pub struct TranseEmbeddings {
    /// `n_entities x dim`.
    pub entities: Mat,
    /// `n_relations x dim`.
    pub relations: Mat,
}

impl TranseEmbeddings {
    /// The L1 score `||e_h + r - e_t||_1` (lower = more plausible).
    pub fn score(&self, head: u32, rel: u32, tail: u32) -> f64 {
        let h = self.entities.row(head as usize);
        let r = self.relations.row(rel as usize);
        let t = self.entities.row(tail as usize);
        let mut s = 0.0;
        for j in 0..h.len() {
            s += (h[j] + r[j] - t[j]).abs();
        }
        s
    }

    /// Memory per vector in bits at a given precision (the x-axis of
    /// paper Figure 3).
    pub fn bits_per_vector(&self, precision: Precision) -> u64 {
        self.entities.cols() as u64 * precision.bits() as u64
    }
}

/// Trains TransE on a knowledge graph, deterministic given `seed`.
///
/// # Panics
///
/// Panics if `dim` is zero or the graph has no training triplets.
pub fn train_transe(
    kg: &KnowledgeGraph,
    dim: usize,
    config: &TranseConfig,
    seed: u64,
) -> TranseEmbeddings {
    assert!(dim > 0, "dim must be positive");
    assert!(!kg.train.is_empty(), "graph has no training triplets");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let bound = 6.0 / (dim as f64).sqrt();
    let mut ent = Mat::random_uniform(kg.n_entities, dim, -bound, bound, &mut rng);
    let mut rel = Mat::random_uniform(kg.n_relations, dim, -bound, bound, &mut rng);
    // Relations normalized once after init (Bordes et al.).
    for r in 0..kg.n_relations {
        vecops::normalize(rel.row_mut(r));
    }

    let mut order: Vec<usize> = (0..kg.train.len()).collect();
    let mut best: Option<(f64, TranseEmbeddings)> = None;
    let mut strikes = 0usize;
    for epoch in 0..config.epochs {
        // Entity renormalization at the start of every epoch.
        for e in 0..kg.n_entities {
            vecops::normalize(ent.row_mut(e));
        }
        shuffle(&mut order, &mut rng);
        for &i in &order {
            let pos = kg.train[i];
            // Uniform corruption of head or tail.
            let corrupt_head = rng.random::<f64>() < 0.5;
            let candidate = rng.random_range(0..kg.n_entities as u32);
            let neg = if corrupt_head {
                crate::graph::Triplet {
                    head: candidate,
                    ..pos
                }
            } else {
                crate::graph::Triplet {
                    tail: candidate,
                    ..pos
                }
            };
            sgd_step(&mut ent, &mut rel, pos, neg, config.margin, config.lr);
        }
        // Early stopping on validation mean rank.
        if config.patience > 0
            && !kg.valid.is_empty()
            && (epoch + 1) % config.eval_every.max(1) == 0
        {
            let current = TranseEmbeddings {
                entities: ent.clone(),
                relations: rel.clone(),
            };
            let ranks = link_prediction_ranks(&current, kg.n_entities, &kg.valid);
            let mr = mean_rank(&ranks);
            match &best {
                Some((best_mr, _)) if mr >= *best_mr => {
                    strikes += 1;
                    if strikes >= config.patience {
                        break;
                    }
                }
                _ => {
                    best = Some((mr, current));
                    strikes = 0;
                }
            }
        }
    }
    match best {
        Some((_, model)) => model,
        None => TranseEmbeddings {
            entities: ent,
            relations: rel,
        },
    }
}

/// One margin-ranking SGD step on a (positive, negative) triplet pair with
/// the L1 distance: if `margin + d(pos) - d(neg) > 0`, move the positive
/// triple together and the negative apart along the sign gradients.
fn sgd_step(
    ent: &mut Mat,
    rel: &mut Mat,
    pos: crate::graph::Triplet,
    neg: crate::graph::Triplet,
    margin: f64,
    lr: f64,
) {
    let dim = ent.cols();
    let d_pos = l1(ent, rel, pos);
    let d_neg = l1(ent, rel, neg);
    if margin + d_pos - d_neg <= 0.0 {
        return;
    }
    // d|x|/dx = sign(x); positive triplet pulled together.
    for j in 0..dim {
        let sp = (ent[(pos.head as usize, j)] + rel[(pos.rel as usize, j)]
            - ent[(pos.tail as usize, j)])
            .signum();
        ent[(pos.head as usize, j)] -= lr * sp;
        rel[(pos.rel as usize, j)] -= lr * sp;
        ent[(pos.tail as usize, j)] += lr * sp;
        let sn = (ent[(neg.head as usize, j)] + rel[(neg.rel as usize, j)]
            - ent[(neg.tail as usize, j)])
            .signum();
        ent[(neg.head as usize, j)] += lr * sn;
        rel[(neg.rel as usize, j)] += lr * sn;
        ent[(neg.tail as usize, j)] -= lr * sn;
    }
}

fn l1(ent: &Mat, rel: &Mat, t: crate::graph::Triplet) -> f64 {
    let mut s = 0.0;
    for j in 0..ent.cols() {
        s += (ent[(t.head as usize, j)] + rel[(t.rel as usize, j)] - ent[(t.tail as usize, j)])
            .abs();
    }
    s
}

/// Uniformly quantizes a pair of TransE embeddings, sharing the clip
/// thresholds computed from the first one (entity and relation tables get
/// separate thresholds), mirroring the word-embedding protocol.
///
/// Note: the paper does *not* Procrustes-align knowledge-graph embedding
/// pairs (alignment hurt quality; Appendix C.5), and neither does this.
pub fn quantize_transe_pair(
    a: &TranseEmbeddings,
    b: &TranseEmbeddings,
    precision: Precision,
) -> (TranseEmbeddings, TranseEmbeddings) {
    if precision.is_full() {
        return (a.clone(), b.clone());
    }
    let clip_e = optimal_clip(a.entities.as_slice(), precision);
    let clip_r = optimal_clip(a.relations.as_slice(), precision);
    let q = |m: &Mat, clip: f64| -> Mat {
        let mut out = m.clone();
        for v in out.as_mut_slice() {
            *v = quantize_value(*v, clip, precision);
        }
        out
    };
    (
        TranseEmbeddings {
            entities: q(&a.entities, clip_e),
            relations: q(&a.relations, clip_r),
        },
        TranseEmbeddings {
            entities: q(&b.entities, clip_e),
            relations: q(&b.relations, clip_r),
        },
    )
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KgSpec;

    fn small_kg() -> KnowledgeGraph {
        KgSpec {
            n_entities: 120,
            n_types: 6,
            n_relations: 8,
            triplets_per_relation: 120,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn training_beats_random_ranks() {
        let kg = small_kg();
        let trained = train_transe(&kg, 16, &TranseConfig::default(), 0);
        let ranks = link_prediction_ranks(&trained, kg.n_entities, &kg.test);
        let mr = mean_rank(&ranks);
        // Random embeddings rank the true entity around n/2 = 60.
        assert!(mr < 30.0, "mean rank {mr} should beat random (~60)");
    }

    #[test]
    fn deterministic_given_seed() {
        let kg = small_kg();
        let cfg = TranseConfig {
            epochs: 10,
            patience: 0,
            ..Default::default()
        };
        let a = train_transe(&kg, 8, &cfg, 3);
        let b = train_transe(&kg, 8, &cfg, 3);
        assert_eq!(a, b);
        let c = train_transe(&kg, 8, &cfg, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn score_is_l1_translation_distance() {
        let emb = TranseEmbeddings {
            entities: Mat::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]),
            relations: Mat::from_rows(&[&[1.0, 0.0]]),
        };
        // ||(0,0) + (1,0) - (1,1)||_1 = |0| + |-1| = 1.
        assert!((emb.score(0, 0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_shares_clip_and_degrades_gracefully() {
        let kg = small_kg();
        let cfg = TranseConfig {
            epochs: 30,
            patience: 0,
            ..Default::default()
        };
        let a = train_transe(&kg, 16, &cfg, 0);
        let b = train_transe(&kg, 16, &cfg, 1);
        let (qa1, _qb1) = quantize_transe_pair(&a, &b, Precision::new(1));
        let (qa8, _qb8) = quantize_transe_pair(&a, &b, Precision::new(8));
        let err1 = qa1.entities.sub(&a.entities).frobenius_norm();
        let err8 = qa8.entities.sub(&a.entities).frobenius_norm();
        assert!(
            err8 < err1,
            "higher precision must quantize more faithfully"
        );
        let (qf, _) = quantize_transe_pair(&a, &b, Precision::FULL);
        assert_eq!(qf, a);
    }
}
