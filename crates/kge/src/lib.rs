//! Knowledge-graph embedding substrate for the paper's Section 6.1
//! extension: the stability-memory tradeoff on TransE embeddings.
//!
//! The paper trains TransE (Bordes et al., 2013) on FB15K and on FB15K-95
//! (95% of the training triplets) and measures, across dimension-precision
//! combinations, the instability of **link prediction**
//! (`unstable-rank@10`) and **triplet classification** (prediction
//! disagreement) between the two embeddings. Freebase is not available
//! here, so [`KgSpec`] generates a typed synthetic knowledge graph whose
//! triplets follow a noisy translation model — exactly the structure
//! TransE can fit — and [`KnowledgeGraph::subsample_train`] produces the
//! FB15K-95 analogue.
//!
//! # Example
//!
//! ```
//! use embedstab_kge::{KgSpec, TranseConfig, train_transe};
//!
//! let kg = KgSpec { n_entities: 60, triplets_per_relation: 30, ..Default::default() }.generate();
//! let emb = train_transe(&kg, 8, &TranseConfig { epochs: 5, ..Default::default() }, 0);
//! assert_eq!(emb.entities.rows(), 60);
//! ```

pub mod eval;
pub mod graph;
pub mod transe;

pub use eval::{
    link_prediction_ranks, make_negatives, mean_rank, unstable_rank_at_10, TripletClassifier,
};
pub use graph::{KgSpec, KnowledgeGraph, Triplet};
pub use transe::{quantize_transe_pair, train_transe, TranseConfig, TranseEmbeddings};
