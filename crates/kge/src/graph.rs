//! Synthetic typed knowledge graphs standing in for FB15K / FB15K-95.

use std::collections::HashSet;

use embedstab_linalg::{vecops, Mat};
use rand::{Rng, RngExt, SeedableRng};

/// A `(head, relation, tail)` fact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triplet {
    /// Head entity id.
    pub head: u32,
    /// Relation id.
    pub rel: u32,
    /// Tail entity id.
    pub tail: u32,
}

/// A knowledge graph with train/validation/test triplet splits.
#[derive(Clone, Debug)]
pub struct KnowledgeGraph {
    /// Number of entities.
    pub n_entities: usize,
    /// Number of relations.
    pub n_relations: usize,
    /// Training triplets.
    pub train: Vec<Triplet>,
    /// Validation triplets.
    pub valid: Vec<Triplet>,
    /// Test triplets.
    pub test: Vec<Triplet>,
}

impl KnowledgeGraph {
    /// All triplets of every split, as a set (used to filter corrupted
    /// negatives).
    pub fn all_triplets(&self) -> HashSet<Triplet> {
        self.train
            .iter()
            .chain(&self.valid)
            .chain(&self.test)
            .copied()
            .collect()
    }

    /// The FB15K-95 analogue: a copy keeping a random `keep_frac` of the
    /// training triplets; validation and test stay identical, as in the
    /// paper.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep_frac <= 1`.
    pub fn subsample_train(&self, keep_frac: f64, seed: u64) -> KnowledgeGraph {
        assert!(
            keep_frac > 0.0 && keep_frac <= 1.0,
            "keep_frac must be in (0, 1]"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.train.len()).collect();
        let keep = ((self.train.len() as f64) * keep_frac).round() as usize;
        for i in 0..keep.min(idx.len().saturating_sub(1)) {
            let j = rng.random_range(i..idx.len());
            idx.swap(i, j);
        }
        let mut kept: Vec<Triplet> = idx[..keep].iter().map(|&i| self.train[i]).collect();
        kept.sort_unstable();
        KnowledgeGraph {
            n_entities: self.n_entities,
            n_relations: self.n_relations,
            train: kept,
            valid: self.valid.clone(),
            test: self.test.clone(),
        }
    }
}

/// Generator for a synthetic typed knowledge graph whose facts follow a
/// noisy translation model: entities cluster by type in a latent space,
/// each relation connects a source type to a destination type, and
/// `z_head + v_rel ≈ z_tail` for true triplets — the structural assumption
/// TransE encodes.
#[derive(Clone, Debug)]
pub struct KgSpec {
    /// Number of entities.
    pub n_entities: usize,
    /// Number of entity types.
    pub n_types: usize,
    /// Number of relations.
    pub n_relations: usize,
    /// Latent space dimension.
    pub latent_dim: usize,
    /// Facts generated per relation (before dedup).
    pub triplets_per_relation: usize,
    /// Latent noise scale for entities and the tail-selection softmax.
    pub noise: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for KgSpec {
    fn default() -> Self {
        KgSpec {
            n_entities: 400,
            n_types: 8,
            n_relations: 16,
            latent_dim: 10,
            triplets_per_relation: 300,
            noise: 0.3,
            seed: 0,
        }
    }
}

impl KgSpec {
    /// Generates the graph (deterministic given the spec), splitting
    /// triplets 70/10/20 into train/valid/test.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or there are fewer entities than types.
    pub fn generate(&self) -> KnowledgeGraph {
        assert!(
            self.n_entities >= self.n_types,
            "need at least one entity per type"
        );
        assert!(self.n_types >= 2, "need at least two types");
        assert!(
            self.n_relations > 0 && self.latent_dim > 0,
            "counts must be positive"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let d = self.latent_dim;

        // Type centers on a sphere of radius 2.
        let mut centers = Mat::random_normal(self.n_types, d, &mut rng);
        for t in 0..self.n_types {
            let row = centers.row_mut(t);
            vecops::normalize(row);
            vecops::scale(2.0, row);
        }
        // Entities: round-robin types + noise.
        let types: Vec<usize> = (0..self.n_entities).map(|e| e % self.n_types).collect();
        let noise_mat = Mat::random_normal(self.n_entities, d, &mut rng);
        let z = Mat::from_fn(self.n_entities, d, |e, j| {
            centers[(types[e], j)] + self.noise * noise_mat[(e, j)]
        });
        let by_type: Vec<Vec<u32>> = (0..self.n_types)
            .map(|t| {
                (0..self.n_entities as u32)
                    .filter(|&e| types[e as usize] == t)
                    .collect()
            })
            .collect();

        // Relations: (source type, destination type, translation vector).
        let mut rels = Vec::with_capacity(self.n_relations);
        for _ in 0..self.n_relations {
            let src = rng.random_range(0..self.n_types);
            let mut dst = rng.random_range(0..self.n_types);
            if dst == src {
                dst = (dst + 1) % self.n_types;
            }
            let v: Vec<f64> = (0..d)
                .map(|j| centers[(dst, j)] - centers[(src, j)])
                .collect();
            rels.push((src, dst, v));
        }

        // Facts: head of src type; tail sampled by a distance softmax
        // around z_head + v_rel among dst-type entities.
        let mut seen = HashSet::new();
        let mut triplets = Vec::new();
        for (r, (src, dst, v)) in rels.iter().enumerate() {
            let heads = &by_type[*src];
            let tails = &by_type[*dst];
            for _ in 0..self.triplets_per_relation {
                let h = heads[rng.random_range(0..heads.len())];
                let target: Vec<f64> = (0..d).map(|j| z[(h as usize, j)] + v[j]).collect();
                let tail = softmin_choice(&z, tails, &target, self.noise.max(0.05), &mut rng);
                let t = Triplet {
                    head: h,
                    rel: r as u32,
                    tail,
                };
                if seen.insert(t) {
                    triplets.push(t);
                }
            }
        }
        // Shuffle and split.
        for i in (1..triplets.len()).rev() {
            let j = rng.random_range(0..=i);
            triplets.swap(i, j);
        }
        let n = triplets.len();
        let n_train = n * 7 / 10;
        let n_valid = n / 10;
        let valid = triplets.split_off(n_train);
        let mut valid = valid;
        let test = valid.split_off(n_valid);
        KnowledgeGraph {
            n_entities: self.n_entities,
            n_relations: self.n_relations,
            train: triplets,
            valid,
            test,
        }
    }
}

/// Samples an entity from `candidates` with probability
/// `∝ exp(-||z_e - target||^2 / (2 sigma^2))`.
fn softmin_choice(
    z: &Mat,
    candidates: &[u32],
    target: &[f64],
    sigma: f64,
    rng: &mut impl Rng,
) -> u32 {
    let mut weights: Vec<f64> = Vec::with_capacity(candidates.len());
    let mut min_d = f64::INFINITY;
    let mut dists = Vec::with_capacity(candidates.len());
    for &e in candidates {
        let d2 = vecops::sq_distance(z.row(e as usize), target);
        min_d = min_d.min(d2);
        dists.push(d2);
    }
    let mut total = 0.0;
    for d2 in dists {
        let w = (-(d2 - min_d) / (2.0 * sigma * sigma)).exp();
        total += w;
        weights.push(total);
    }
    let u: f64 = rng.random_range(0.0..total);
    let idx = weights
        .partition_point(|&c| c <= u)
        .min(candidates.len() - 1);
    candidates[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_splits() {
        let kg = KgSpec::default().generate();
        assert!(!kg.train.is_empty());
        assert!(!kg.valid.is_empty());
        assert!(!kg.test.is_empty());
        for t in kg.train.iter().chain(&kg.valid).chain(&kg.test) {
            assert!((t.head as usize) < kg.n_entities);
            assert!((t.tail as usize) < kg.n_entities);
            assert!((t.rel as usize) < kg.n_relations);
        }
    }

    #[test]
    fn no_duplicate_triplets() {
        let kg = KgSpec::default().generate();
        let total = kg.train.len() + kg.valid.len() + kg.test.len();
        assert_eq!(kg.all_triplets().len(), total);
    }

    #[test]
    fn deterministic() {
        let a = KgSpec::default().generate();
        let b = KgSpec::default().generate();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn subsample_keeps_fraction_and_splits() {
        let kg = KgSpec::default().generate();
        let sub = kg.subsample_train(0.95, 7);
        let expected = ((kg.train.len() as f64) * 0.95).round() as usize;
        assert_eq!(sub.train.len(), expected);
        assert_eq!(sub.valid, kg.valid);
        assert_eq!(sub.test, kg.test);
        // Every kept triplet came from the original training set.
        let orig: HashSet<Triplet> = kg.train.iter().copied().collect();
        assert!(sub.train.iter().all(|t| orig.contains(t)));
    }

    #[test]
    #[should_panic(expected = "keep_frac")]
    fn bad_fraction_panics() {
        let kg = KgSpec::default().generate();
        let _ = kg.subsample_train(0.0, 0);
    }
}
