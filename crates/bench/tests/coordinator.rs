//! End-to-end contract of the shard coordinator, with the real binaries:
//! a coordinator-driven 2-way sharded Tiny run must (a) build the world
//! exactly once — every shard subprocess loads it from the world cache,
//! never rebuilds — and (b) produce merged JSONL rows bitwise identical
//! to an unsharded run of the same binary against the same world cache.

use std::fs;
use std::path::Path;
use std::process::Command;

use embedstab_bench::{row_merge_key, rows_to_jsonl};
use embedstab_pipeline::cache::scratch_dir;
use embedstab_pipeline::Row;

const TASKS: [&str; 5] = ["sst2", "mr", "subj", "mpqa", "ner"];

#[test]
fn coordinated_shard_fleet_matches_unsharded_run_bitwise() {
    let root = scratch_dir("coordinator_e2e");
    fs::remove_dir_all(&root).ok();
    let sharded_cwd = root.join("sharded");
    let unsharded_cwd = root.join("unsharded");
    let world_cache = root.join("world-cache"); // shared by both runs
    fs::create_dir_all(&sharded_cwd).expect("sharded cwd");
    fs::create_dir_all(&unsharded_cwd).expect("unsharded cwd");

    // Coordinator-driven fleet: 2 shards of fig2 at Tiny scale.
    let coordinator = env!("CARGO_BIN_EXE_coordinator");
    let fig2 = env!("CARGO_BIN_EXE_fig2_memory_tradeoff");
    let output = Command::new(coordinator)
        .current_dir(&sharded_cwd)
        .args(["--shards", "2", "--bin", fig2, "--scale", "tiny"])
        .arg("--cache-dir")
        .arg(root.join("pair-cache"))
        .arg("--world-cache")
        .arg(&world_cache)
        .output()
        .expect("coordinator spawns");
    let coord_log = String::from_utf8_lossy(&output.stderr).to_string();
    assert!(
        output.status.success(),
        "coordinator failed:\n{coord_log}\n{}",
        dump_shard_logs(&sharded_cwd)
    );

    // The coordinator itself built the world (cold cache)...
    assert!(
        coord_log.contains("[world] built and stored"),
        "coordinator must build the cold world:\n{coord_log}"
    );
    assert_eq!(
        coord_log.matches("[world]").count(),
        1,
        "world must be built exactly once by the coordinator:\n{coord_log}"
    );
    // ...and every shard loaded it instead of rebuilding.
    for index in 0..2 {
        let log_path = sharded_cwd
            .join("results")
            .join(format!("coordinator_shard{index}of2.log"));
        let log = fs::read_to_string(&log_path).expect("shard log exists");
        assert!(
            log.contains("[world] loaded"),
            "shard {index} did not load the cached world:\n{log}"
        );
        assert!(
            !log.contains("[world] built"),
            "shard {index} rebuilt the world:\n{log}"
        );
    }

    // Unsharded reference run of the same binary, against the same (now
    // warm) world cache, in its own working directory with no shared pair
    // cache — freshly trained pairs must reproduce the shard rows exactly.
    let output = Command::new(fig2)
        .current_dir(&unsharded_cwd)
        .args(["--scale", "tiny", "--fresh"])
        .arg("--world-cache")
        .arg(&world_cache)
        .output()
        .expect("fig2 spawns");
    assert!(
        output.status.success(),
        "unsharded fig2 failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("[world] loaded"),
        "reference run must load the coordinator's world"
    );

    // Merged shard rows == unsharded rows, bitwise, for every task.
    for task in TASKS {
        let merged_path = sharded_cwd
            .join("results")
            .join(format!("rows_{task}_tiny.merged.jsonl"));
        let merged = fs::read_to_string(&merged_path)
            .unwrap_or_else(|e| panic!("missing merged rows for {task}: {e}"));
        let reference_path = unsharded_cwd
            .join("results")
            .join(format!("rows_{task}_tiny.json"));
        let body = fs::read_to_string(&reference_path)
            .unwrap_or_else(|e| panic!("missing reference rows for {task}: {e}"));
        let mut reference: Vec<Row> = serde_json::from_str(&body).expect("reference rows parse");
        assert!(!reference.is_empty());
        reference.sort_by_cached_key(row_merge_key);
        assert_eq!(
            merged,
            rows_to_jsonl(&reference),
            "merged {task} rows differ from the unsharded run"
        );
    }

    fs::remove_dir_all(&root).ok();
}

fn dump_shard_logs(cwd: &Path) -> String {
    let mut out = String::new();
    for index in 0..2 {
        let path = cwd
            .join("results")
            .join(format!("coordinator_shard{index}of2.log"));
        if let Ok(log) = fs::read_to_string(&path) {
            out.push_str(&format!("--- {}:\n{log}\n", path.display()));
        }
    }
    out
}
